"""Chaos tests: the full query path under an actively faulty wire.

The invariant under test is the hardening contract: whatever the fault
rates, a query either returns the **exact** answer (matching plaintext
XPath evaluation) or raises a **typed** error — never a silently wrong
or partial answer.  Corruption is detected by the integrity envelope,
drops are absorbed by retry/backoff, persistent failure degrades to the
naive path, and everything is deterministic in the fault seed.
"""

import os

import pytest

from repro.core.client import canonical_node
from repro.core.integrity import TamperedResponseError
from repro.core.system import (
    QueryFailedError,
    RetryPolicy,
    SecureXMLSystem,
)
from repro.netsim import FaultPolicy, FaultyChannel
from repro.perf import counters
from repro.xpath.evaluator import evaluate

QUERIES = (
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
    "//SSN",
)

#: Fault seeds for the sweep; CI widens this via REPRO_CHAOS_SEEDS.
SEEDS = [
    int(token)
    for token in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2").split(",")
]

#: ≥20% fault probability per transfer, per the acceptance criterion.
SWEEP_RATES = (
    {"corrupt": 0.25},
    {"drop": 0.25},
    {"truncate": 0.25},
    {"drop": 0.2, "corrupt": 0.2, "truncate": 0.1, "duplicate": 0.2,
     "delay": 0.2},
)


def expected_answer(document, query):
    return sorted(canonical_node(n) for n in evaluate(document, query))


def host_with_faults(document, constraints, policy, **kwargs):
    return SecureXMLSystem.host(
        document,
        constraints,
        scheme="opt",
        channel=FaultyChannel(policy=policy),
        **kwargs,
    )


class TestFaultSweep:
    @pytest.mark.parametrize("rates", SWEEP_RATES,
                             ids=lambda r: "+".join(sorted(r)))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_answer_or_typed_error(
        self, seed, rates, healthcare_doc, healthcare_scs
    ):
        policy = FaultPolicy.symmetric(seed=seed, **rates)
        system = host_with_faults(healthcare_doc, healthcare_scs, policy)
        answered = 0
        for query in QUERIES:
            try:
                answer = system.query(query)
            except QueryFailedError:
                continue  # typed failure is an allowed outcome
            answered += 1
            assert answer.canonical() == expected_answer(
                healthcare_doc, query
            ), (seed, rates, query)
        # The retry layer must be doing real work: across the sweep the
        # rates are high enough that a no-retry pipeline could not answer
        # everything cleanly, yet most queries should still succeed.
        assert answered >= 1

    def test_faultless_faulty_channel_is_transparent(
        self, healthcare_doc, healthcare_scs
    ):
        system = host_with_faults(
            healthcare_doc, healthcare_scs, FaultPolicy()
        )
        for query in QUERIES:
            assert system.query(query).canonical() == expected_answer(
                healthcare_doc, query
            )
            assert system.last_trace.retries == 0
            assert not system.last_trace.fell_back

    def test_drop_heavy_wire_still_answers_with_retries(
        self, healthcare_doc, healthcare_scs
    ):
        policy = FaultPolicy.symmetric(seed=8, drop=0.3)
        system = host_with_faults(healthcare_doc, healthcare_scs, policy)
        before = counters.snapshot()
        results = {}
        for query in QUERIES:
            try:
                results[query] = system.query(query).canonical()
            except QueryFailedError:
                results[query] = None
        delta = counters.delta_since(before)
        assert delta["faults_dropped"] > 0
        assert delta["query_retries"] > 0
        for query, result in results.items():
            if result is not None:
                assert result == expected_answer(healthcare_doc, query)

    def test_batch_api_under_faults(self, healthcare_doc, healthcare_scs):
        policy = FaultPolicy.symmetric(seed=3, corrupt=0.2, drop=0.1)
        system = host_with_faults(healthcare_doc, healthcare_scs, policy)
        try:
            answers = system.execute_many(list(QUERIES))
        except QueryFailedError:
            return  # allowed; per-query behaviour covered above
        for query, answer in zip(QUERIES, answers):
            assert answer.canonical() == expected_answer(
                healthcare_doc, query
            )
        assert len(system.last_batch_traces) == len(QUERIES)


class TestDeterminism:
    def run_once(self, document, constraints, seed, **host_kwargs):
        policy = FaultPolicy.symmetric(
            seed=seed, drop=0.2, corrupt=0.2, truncate=0.1
        )
        system = host_with_faults(
            document, constraints, policy, **host_kwargs
        )
        outcomes = []
        for query in QUERIES:
            try:
                system.query(query)
                trace = system.last_trace
                outcomes.append(
                    (query, trace.attempts, trace.retries,
                     trace.integrity_failures, trace.drops, trace.fell_back)
                )
            except QueryFailedError as exc:
                outcomes.append((query, "failed", str(exc)))
        return policy.schedule_signature(), outcomes

    def test_same_seed_identical_schedule_and_traces(
        self, healthcare_doc, healthcare_scs
    ):
        first = self.run_once(healthcare_doc, healthcare_scs, seed=11)
        second = self.run_once(healthcare_doc, healthcare_scs, seed=11)
        assert first == second

    def test_different_seed_differs(self, healthcare_doc, healthcare_scs):
        first = self.run_once(healthcare_doc, healthcare_scs, seed=11)
        second = self.run_once(healthcare_doc, healthcare_scs, seed=12)
        assert first[0] != second[0]

    def test_fault_schedule_unchanged_by_fetch_countermeasures(
        self, healthcare_doc, healthcare_scs
    ):
        """Padding/decoy fetches stay below the wire.

        Cover traffic reads ciphertext the server already stores — it
        must consume nothing from the fault schedule's stream, so the
        same seed replays the exact same faults and outcomes with the
        countermeasures on.  Scatter *shuffle* is deliberately off here:
        it legitimately reorders cluster transfers, which a transfer-
        order-keyed schedule is allowed to see; its determinism is
        covered in test_leakage.py.
        """
        from repro.core.leakage import LeakagePolicy

        plain = self.run_once(healthcare_doc, healthcare_scs, seed=11)
        padded = self.run_once(
            healthcare_doc,
            healthcare_scs,
            seed=11,
            leakage=LeakagePolicy(pad_to=8, decoys=8),
        )
        assert plain == padded


class TestWireTampering:
    @pytest.fixture
    def system(self, healthcare_doc, healthcare_scs):
        return SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )

    def test_every_byte_of_a_real_response_is_protected(self, system):
        """Byte-level sweep over an actual sealed server response."""
        translated = system.client.translate(QUERIES[0])
        request = system.client.seal_request(translated, cache_key=QUERIES[0])
        sealed = system.server.answer_wire(request)
        for offset in range(len(sealed)):
            mutated = bytearray(sealed)
            mutated[offset] ^= 0x01
            with pytest.raises(TamperedResponseError):
                system.client.open_response(bytes(mutated))

    def test_tampering_server_triggers_fallback(self, system):
        """A server that always mangles the fast path forces naive mode."""
        real_answer_wire = system.server.answer_wire
        real_answer_wire_stream = system.server.answer_wire_stream

        def mangled(request_blob):
            blob = bytearray(real_answer_wire(request_blob))
            blob[-1] ^= 0xFF
            return bytes(blob)

        def mangled_stream(request_blob, **kwargs):
            # The streaming entry point (parallel engine) is covered too,
            # so the test holds under any REPRO_WORKERS setting.
            for chunk in real_answer_wire_stream(request_blob, **kwargs):
                blob = bytearray(chunk)
                blob[-1] ^= 0xFF
                yield bytes(blob)

        system.server.answer_wire = mangled
        system.server.answer_wire_stream = mangled_stream
        answer = system.query(QUERIES[1])
        trace = system.last_trace
        assert answer.values() == ["Brown"]
        assert trace.fell_back
        assert trace.naive
        assert trace.integrity_failures == system.retry_policy.max_attempts
        assert trace.retries == system.retry_policy.max_attempts

    def test_no_fallback_policy_raises_typed_error(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            retry_policy=RetryPolicy(naive_fallback=False),
        )
        real_answer_wire = system.server.answer_wire
        real_answer_wire_stream = system.server.answer_wire_stream

        def mangled(request_blob):
            blob = bytearray(real_answer_wire(request_blob))
            blob[40] ^= 0x10
            return bytes(blob)

        def mangled_stream(request_blob, **kwargs):
            for chunk in real_answer_wire_stream(request_blob, **kwargs):
                blob = bytearray(chunk)
                blob[40 % len(blob)] ^= 0x10
                yield bytes(blob)

        system.server.answer_wire = mangled
        system.server.answer_wire_stream = mangled_stream
        before = counters.snapshot()
        with pytest.raises(QueryFailedError):
            system.query(QUERIES[0])
        delta = counters.delta_since(before)
        assert delta["queries_failed"] == 1
        assert delta["integrity_failures"] == (
            system.retry_policy.max_attempts
        )

    def test_deadline_exceeded_raises_typed_error(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            retry_policy=RetryPolicy(deadline_s=0.0),
        )
        with pytest.raises(QueryFailedError, match="deadline"):
            system.query(QUERIES[0])
