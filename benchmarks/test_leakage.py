"""E-leak — access-pattern leakage gate.

Plays the known-query recovery game of :mod:`repro.security.leakage`
twice over the healthcare workload: once against a record-only hosting
(the attacker baseline) and once with the full countermeasure set
(padded fetches + decoys + scatter shuffle).  The gate holds three
numbers:

* the *baseline* attacker must genuinely win (max advantage at or above
  ``REPRO_LEAKAGE_MIN_BASELINE``) — otherwise the game is measuring a
  toothless attacker and the countermeasure numbers mean nothing;
* the *residual* advantage under the full policy stays at or below
  ``REPRO_LEAKAGE_MAX_ADVANTAGE``;
* the bandwidth price of the cover traffic stays within
  ``REPRO_LEAKAGE_OVERHEAD_LIMIT`` (extra ciphertext bytes fetched per
  real byte).

A cluster (4 shards × 2 replicas) run against the ``shard0`` observer is
measured and recorded alongside — the compromised-shard threat model —
and byte-identity of the protected answers is asserted on the way.
Results land in ``BENCH_leakage.json`` (read-modify-write) and a table
under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os

from repro.bench.harness import format_table
from repro.cluster.placement import ClusterConfig
from repro.core.leakage import LeakagePolicy
from repro.core.system import SecureXMLSystem
from repro.security.leakage import run_leakage_game
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)

from conftest import write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_leakage.json")

#: the profiled query set — six distinct access patterns over Figure 2.
QUERIES = (
    "//patient",
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
    "//SSN",
)

REPEATS = max(2, int(os.environ.get("REPRO_LEAKAGE_REPEATS", "4")))
SEED = int(os.environ.get("REPRO_LEAKAGE_SEED", "0"))

#: the unprotected attacker must beat guessing by at least this much.
MIN_BASELINE = float(os.environ.get("REPRO_LEAKAGE_MIN_BASELINE", "0.4"))
#: residual advantage allowed once the full policy is on.
MAX_ADVANTAGE = float(os.environ.get("REPRO_LEAKAGE_MAX_ADVANTAGE", "0.25"))
#: cover-traffic bytes allowed per real byte shipped.
OVERHEAD_LIMIT = float(
    os.environ.get("REPRO_LEAKAGE_OVERHEAD_LIMIT", "16.0")
)


def _append_series(key: str, payload: object) -> None:
    """Read-modify-write ``BENCH_leakage.json`` (other series survive)."""
    report: dict[str, object] = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report[key] = payload
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _host(leakage, **kwargs):
    return SecureXMLSystem.host(
        build_healthcare_database(),
        healthcare_constraints(),
        scheme="opt",
        leakage=leakage,
        **kwargs,
    )


def _series(game):
    return {
        "observer": game.observer,
        "query_count": game.query_count,
        "repeats": game.repeats,
        "max_advantage": game.max_advantage,
        "bandwidth_overhead": game.bandwidth_overhead,
        "per_method": {
            report.method: {
                "accuracy": report.accuracy,
                "advantage": report.advantage,
            }
            for report in game.reports
        },
    }


def test_countermeasures_gate_residual_advantage():
    """Full policy crushes the attacker within the bandwidth budget."""
    queries = list(QUERIES)
    reference = _host(leakage=False)
    baseline_system = _host(leakage=LeakagePolicy(seed=SEED))
    protected_system = _host(leakage=LeakagePolicy.full(seed=SEED))

    # Byte-identity first: the countermeasures must not move one answer
    # byte, or the leakage numbers describe a different system.
    for query in queries:
        expected = reference.query(query).canonical()
        assert baseline_system.query(query).canonical() == expected, query
        assert protected_system.query(query).canonical() == expected, query

    baseline = run_leakage_game(
        baseline_system, queries, repeats=REPEATS, seed=SEED
    )
    protected = run_leakage_game(
        protected_system, queries, repeats=REPEATS, seed=SEED
    )

    # The compromised-shard view: shard0 of a (4, 2) cluster under the
    # same policy — recorded for the docs, gated on overhead only (a
    # single shard's slice can be too small for a meaningful attack).
    cluster_system = _host(
        leakage=LeakagePolicy.full(seed=SEED),
        cluster=ClusterConfig(shards=4, replicas=2),
    )
    for query in queries:
        assert (
            cluster_system.query(query).canonical()
            == reference.query(query).canonical()
        ), query
    shard = run_leakage_game(
        cluster_system, queries, repeats=REPEATS, seed=SEED,
        observer="shard0",
    )

    rows = [
        ["unprotected", baseline.max_advantage,
         baseline.bandwidth_overhead],
        ["full policy", protected.max_advantage,
         protected.bandwidth_overhead],
        ["full policy @ shard0 (4x2)", shard.max_advantage,
         shard.bandwidth_overhead],
    ]
    write_result(
        "leakage_game",
        format_table(
            ["configuration", "max_advantage", "bw_overhead_x"],
            rows,
            f"Leakage — known-query recovery over {len(queries)} queries "
            f"x {REPEATS} repeats (seed {SEED}); gate: baseline >= "
            f"{MIN_BASELINE}, residual <= {MAX_ADVANTAGE}, "
            f"overhead <= {OVERHEAD_LIMIT}x",
        ),
    )
    _append_series(
        "leakage_game",
        {
            "seed": SEED,
            "queries": len(queries),
            "repeats": REPEATS,
            "gates": {
                "min_baseline_advantage": MIN_BASELINE,
                "max_residual_advantage": MAX_ADVANTAGE,
                "overhead_limit": OVERHEAD_LIMIT,
            },
            "unprotected": _series(baseline),
            "protected": _series(protected),
            "protected_shard0_4x2": _series(shard),
        },
    )

    assert baseline.max_advantage >= MIN_BASELINE, (
        f"baseline attacker advantage {baseline.max_advantage:.3f} below "
        f"{MIN_BASELINE} — the game is not measuring a real attack"
    )
    assert baseline.bandwidth_overhead == 0.0
    assert protected.max_advantage <= MAX_ADVANTAGE, (
        f"residual advantage {protected.max_advantage:.3f} exceeds the "
        f"{MAX_ADVANTAGE} gate"
    )
    assert 0.0 < protected.bandwidth_overhead <= OVERHEAD_LIMIT, (
        f"cover traffic costs {protected.bandwidth_overhead:.2f}x real "
        f"bytes (limit {OVERHEAD_LIMIT}x)"
    )
    assert 0.0 < shard.bandwidth_overhead
