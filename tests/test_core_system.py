"""End-to-end tests for the SecureXMLSystem pipeline (Figure 1).

The central contract is the paper's correctness equation
``Q(δ(Qs(η(D)))) = Q(D)``: the secure pipeline must return exactly the
answer the plaintext database gives.
"""

import pytest

from repro.core.client import canonical_node
from repro.core.system import SecureXMLSystem
from repro.workloads.healthcare import EXAMPLE_QUERY
from repro.xpath.evaluator import evaluate

QUERIES = [
    EXAMPLE_QUERY,
    "//patient[pname='Betty']//disease",
    "//patient[pname='Betty'][SSN='763895']",
    "//treat[disease='leukemia']/doctor",
    "//treat[disease='diarrhea']/doctor",
    "/hospital/patient/age",
    "//SSN",
    "//insurance/policy#",
    "//insurance//@coverage",
    "//patient[age>36]/pname",
    "//patient[age<36]/pname",
    "//patient[treat]/pname",
    "/hospital/patient/treat/disease",
    "//patient/*",
    "//nothing",
    "/wrongroot/patient",
]


def truth(document, query):
    return sorted(canonical_node(n) for n in evaluate(document, query))


@pytest.fixture(params=["opt", "app", "sub", "top"])
def system(request, healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(
        healthcare_doc, healthcare_scs, scheme=request.param
    )


class TestCorrectness:
    @pytest.mark.parametrize("query", QUERIES)
    def test_exactness_equation(self, system, healthcare_doc, query):
        answer = system.query(query)
        assert answer.canonical() == truth(healthcare_doc, query)

    def test_naive_query_also_exact(self, system, healthcare_doc):
        answer = system.naive_query(EXAMPLE_QUERY)
        assert answer.canonical() == truth(healthcare_doc, EXAMPLE_QUERY)
        assert system.last_trace.naive

    def test_positional_query_served_by_axis_engine(
        self, system, healthcare_doc
    ):
        # Positional steps used to force the naive fallback; the axis
        # engine now ships the complete candidate list server-side and
        # the client indexes into it.
        query = "/hospital/patient[1]/pname"
        answer = system.query(query)
        assert not system.last_trace.naive
        assert answer.canonical() == truth(healthcare_doc, query)

    def test_sibling_axis_served_by_axis_engine(self, system, healthcare_doc):
        query = "//disease/following-sibling::doctor"
        answer = system.query(query)
        assert not system.last_trace.naive
        assert answer.canonical() == truth(healthcare_doc, query)

    def test_answer_values_helper(self, system):
        answer = system.query("//SSN")
        assert sorted(answer.values()) == ["276543", "763895"]


class TestTraces:
    def test_trace_stages_populated(self, system):
        system.query(EXAMPLE_QUERY)
        trace = system.last_trace
        assert trace.server_s >= 0
        assert trace.decrypt_client_s >= 0
        assert trace.transfer_bytes > 0
        assert trace.total_s > 0
        assert trace.answer_count == 2

    def test_trace_as_row_keys(self, system):
        system.query("//SSN")
        row = system.last_trace.as_row()
        assert {"t_server", "t_decrypt", "t_post", "bytes"} <= set(row)

    def test_channel_accounts_both_directions(self, system):
        system.channel.reset()
        system.query("//SSN")
        assert system.channel.total_bytes("client->server") > 0
        assert system.channel.total_bytes("server->client") > 0

    def test_hosting_trace(self, system):
        trace = system.hosting_trace
        assert trace.block_count >= 1
        assert trace.hosted_bytes > 0
        assert trace.encrypt_s > 0
        assert trace.index_entries > 0


class TestSchemeBehaviour:
    def test_top_ships_whole_database(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="top"
        )
        system.query("//SSN")
        assert system.last_trace.blocks_returned == 1
        naive_bytes = system.last_trace.transfer_bytes
        # top == naive: the single block is the whole database.
        system.naive_query("//SSN")
        assert system.last_trace.transfer_bytes >= naive_bytes

    def test_opt_ships_less_than_naive(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        system.query("//SSN")
        targeted = system.last_trace.transfer_bytes
        system.naive_query("//SSN")
        assert targeted < system.last_trace.transfer_bytes

    def test_prebuilt_scheme_accepted(self, healthcare_doc, healthcare_scs):
        from repro.core.scheme import opt_scheme

        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme=scheme
        )
        assert system.scheme is scheme

    def test_custom_master_key(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            master_key=b"another-master-key-here!",
        )
        answer = system.query("//SSN")
        assert sorted(answer.values()) == ["276543", "763895"]

    def test_repeated_queries_stable(self, system, healthcare_doc):
        for _ in range(3):
            answer = system.query(EXAMPLE_QUERY)
            assert answer.canonical() == truth(healthcare_doc, EXAMPLE_QUERY)
