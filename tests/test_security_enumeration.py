"""Exhaustive cross-checks of the counting theorems on small instances.

The closed forms behind Theorems 4.1, 5.1 and 5.2 are certified here by
brute-force enumeration of the candidate sets they count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.counting import (
    database_candidates,
    structural_candidates,
    value_index_candidates,
)
from repro.security.enumeration import (
    enumerate_interval_groupings,
    enumerate_order_preserving_partitions,
    enumerate_value_assignments,
)


class TestTheorem41Enumeration:
    def test_paper_shape_small(self):
        # frequencies (1, 2): 3!/1!2! = 3 assignments.
        assignments = list(enumerate_value_assignments([1, 2]))
        assert len(assignments) == database_candidates([1, 2]) == 3

    def test_assignments_are_disjoint_partitions(self):
        for assignment in enumerate_value_assignments([2, 2, 1]):
            union = set()
            for chosen in assignment:
                assert not (union & chosen)
                union |= chosen
            assert union == set(range(5))

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)
    )
    @settings(max_examples=30, deadline=None)
    def test_enumeration_matches_closed_form(self, frequencies):
        if sum(frequencies) > 8:
            frequencies = frequencies[:2]
        count = sum(1 for _ in enumerate_value_assignments(frequencies))
        assert count == database_candidates(frequencies)


class TestTheorem51Enumeration:
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_groupings_match_closed_form(self, leaves, intervals):
        if intervals > leaves:
            intervals = leaves
        shapes = enumerate_interval_groupings(leaves, intervals)
        assert len(shapes) == structural_candidates([(leaves, intervals)])
        assert all(sum(shape) == leaves for shape in shapes)
        assert all(min(shape) >= 1 for shape in shapes)
        assert len(set(shapes)) == len(shapes)

    def test_figure5_shapes(self):
        shapes = enumerate_interval_groupings(7, 3)
        assert (1, 1, 5) in shapes
        assert (1, 2, 4) in shapes
        assert (2, 3, 2) in shapes
        assert len(shapes) == 15


class TestTheorem52Enumeration:
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_partitions_match_closed_form(self, n, k):
        if k > n:
            k = n
        partitions = list(enumerate_order_preserving_partitions(n, k))
        assert len(partitions) == value_index_candidates(n, k)

    def test_partitions_preserve_order(self):
        for partition in enumerate_order_preserving_partitions(5, 3):
            flat = [c for run in partition for c in run]
            assert flat == sorted(flat) == list(range(5))
            assert all(run for run in partition)

    def test_paper_example_worked(self):
        """§5.2's worked example: 6 ciphertexts, 3 values → C(5,2) = 10."""
        partitions = list(enumerate_order_preserving_partitions(6, 3))
        assert len(partitions) == 10
        # The first and last mappings quoted in the proof are present.
        assert ((0,), (1,), (2, 3, 4, 5)) in partitions
        assert ((0, 1, 2, 3), (4,), (5,)) in partitions
