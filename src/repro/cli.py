"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    Run the Figure 1 pipeline end-to-end on the paper's Figure 2 database
    and print the per-stage trace.

``host``
    Generate a workload, host it under a scheme, and print hosting
    statistics (blocks, sizes, index entries).

``query``
    Host a workload and evaluate one XPath query through the secure
    pipeline, printing the answer and the trace.

``schemes``
    Compare all four scheme granularities on one workload (hosting cost +
    query cost per §7.1 query class).

``attack``
    Mount the frequency-based attack against the strawman, decoy and
    OPESS designs on a workload and print the outcome.

``trace``
    Run one query and print its nested span tree plus a reconciliation
    table proving the span totals match the ``QueryTrace`` stage fields.

``stats``
    Run a query workload and export the observability snapshot —
    counters, latency histograms and the slow-query log — as a table,
    JSON, or Prometheus text exposition (plus a per-shard breakdown
    when ``--shards`` is active).

``cluster``
    Host a workload across a sharded, replicated cluster, run a small
    workload through the scatter–gather path, and print the placement
    map plus per-shard statistics.

``serve``
    Host a workload behind the asyncio socket front door and serve it
    as a tenant until interrupted (or for ``--serve-for`` seconds),
    then drain gracefully: finish in-flight requests, flush caches,
    and persist the hosting when ``--storage`` is given.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.system import SecureXMLSystem
from repro.workloads.healthcare import (
    EXAMPLE_QUERY,
    build_healthcare_database,
    healthcare_constraints,
)
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.workloads.xmark import build_xmark_database, xmark_constraints

WORKLOADS = ("healthcare", "xmark", "nasa")


def build_workload(name: str, size: int, seed: int):
    """Return (document, constraints) for a named workload."""
    if name == "healthcare":
        return build_healthcare_database(), healthcare_constraints()
    if name == "xmark":
        return (
            build_xmark_database(person_count=size, seed=seed),
            xmark_constraints(),
        )
    if name == "nasa":
        return (
            build_nasa_database(dataset_count=size, seed=seed),
            nasa_constraints(),
        )
    raise ValueError(f"unknown workload {name!r}; expected one of {WORKLOADS}")


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="healthcare",
        help="which dataset to generate",
    )
    parser.add_argument(
        "--scheme", choices=("opt", "app", "sub", "top", "leaf"),
        default="opt", help="encryption-scheme granularity (§7.1)",
    )
    parser.add_argument(
        "--size", type=int, default=50,
        help="workload scale (persons / datasets; ignored for healthcare)",
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--key", default=None,
        help="master-key passphrase (defaults to the demo key)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the parallel query engine "
        "(default: $REPRO_WORKERS, 0 disables)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the hosting across N servers with scatter–gather "
        "queries (default: $REPRO_SHARDS, <=1 disables)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="replicas per shard for failover (needs --shards)",
    )
    parser.add_argument(
        "--backend", choices=("object", "columnar"), default=None,
        help="server join representation (default: $REPRO_BACKEND; "
        "answers are byte-identical either way)",
    )
    parser.add_argument(
        "--leakage", default=None, metavar="POLICY",
        help="access-pattern countermeasures: 'off' records traces "
        "only, 'full' enables padding+decoys+shuffle, or knobs like "
        "'pad=8,decoys=16,shuffle=1,seed=0' (default: $REPRO_LEAKAGE; "
        "answers are byte-identical either way)",
    )


def _cluster(args: argparse.Namespace):
    """``--shards``/``--replicas``, shaped for ``host(cluster=)``.

    ``None`` (flag absent) defers to ``REPRO_SHARDS``; an explicit
    ``--shards`` of 0/1 forces the single-server path.
    """
    shards = getattr(args, "shards", None)
    if shards is None:
        return None
    if shards <= 1:
        return False
    from repro.cluster import ClusterConfig

    return ClusterConfig(
        shards=shards, replicas=max(1, getattr(args, "replicas", 1))
    )


def _backend(args: argparse.Namespace):
    """``--backend`` value for ``host(backend=)``/``load_system(backend=)``.

    ``None`` (flag absent) defers to ``REPRO_BACKEND``.
    """
    return getattr(args, "backend", None)


def _leakage(args: argparse.Namespace):
    """``--leakage`` policy spec for ``host(leakage=)``.

    ``None`` (flag absent) defers to ``REPRO_LEAKAGE``.
    """
    return getattr(args, "leakage", None)


def _parallel(args: argparse.Namespace):
    """``--workers`` value, shaped for ``SecureXMLSystem.host(parallel=)``.

    ``None`` (flag absent) defers to ``REPRO_WORKERS``; an explicit 0
    forces the serial engine.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    return False if workers <= 0 else workers


def _master_key(args: argparse.Namespace) -> bytes:
    from repro.core.system import _DEFAULT_MASTER_KEY
    from repro.crypto.hmac import derive_key

    if getattr(args, "key", None) is None:
        return _DEFAULT_MASTER_KEY
    return derive_key(args.key.encode("utf-8"), "cli-master")


def _print_hosting(system: SecureXMLSystem) -> None:
    trace = system.hosting_trace
    print(f"scheme          : {trace.scheme_kind}")
    print(f"covered fields  : {sorted(system.scheme.covered_fields)}")
    print(f"blocks          : {trace.block_count}")
    print(f"decoys          : {trace.decoy_count}")
    print(f"plaintext bytes : {trace.plaintext_bytes}")
    print(f"hosted bytes    : {trace.hosted_bytes}")
    print(f"DSI entries     : {trace.index_entries}")
    print(f"value entries   : {trace.value_index_entries}")
    print(f"encrypt time    : {trace.encrypt_s:.3f}s")


def cmd_demo(_args: argparse.Namespace) -> int:
    document = build_healthcare_database()
    system = SecureXMLSystem.host(
        document, healthcare_constraints(), scheme="opt"
    )
    _print_hosting(system)
    print(f"\nquery: {EXAMPLE_QUERY}")
    answer = system.query(EXAMPLE_QUERY)
    print(f"answer: {sorted(answer.values())}")
    assert system.last_trace is not None
    for key, value in system.last_trace.as_row().items():
        print(f"  {key}: {value}")
    return 0


def cmd_host(args: argparse.Namespace) -> int:
    document, constraints = build_workload(args.workload, args.size, args.seed)
    print(f"workload {args.workload}: {document.size()} nodes")
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args), parallel=_parallel(args),
        cluster=_cluster(args), backend=_backend(args),
        leakage=_leakage(args),
    )
    _print_hosting(system)
    coordinator = system.coordinator
    if coordinator is not None:
        from repro.cluster.admin import render_placement

        print()
        print(render_placement(coordinator.placement))
    if args.save:
        from repro.core.storage import save_system

        save_system(system, args.save)
        print(f"saved hosting to {args.save}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.load:
        from repro.core.storage import StorageError, load_system

        try:
            system = load_system(
                args.load, _master_key(args), backend=_backend(args)
            )
        except StorageError as exc:
            # Corrupt/tampered hosting: one-line diagnostic, nonzero exit —
            # never a traceback, never a query over bad state.
            print(f"error: cannot load hosting: {exc}", file=sys.stderr)
            return 2
    else:
        document, constraints = build_workload(
            args.workload, args.size, args.seed
        )
        system = SecureXMLSystem.host(
            document, constraints, scheme=args.scheme,
            parallel=_parallel(args), cluster=_cluster(args),
            backend=_backend(args), leakage=_leakage(args),
        )
    answer = system.query(args.xpath)
    print(f"answers ({len(answer)}):")
    for canonical in answer.canonical():
        print(f"  {canonical}")
    assert system.last_trace is not None
    print("trace:")
    for key, value in system.last_trace.as_row().items():
        print(f"  {key}: {value}")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    from repro.bench.harness import format_table, run_query_class
    from repro.workloads.queries import QueryWorkload

    document, constraints = build_workload(args.workload, args.size, args.seed)
    workload = QueryWorkload(document, seed=args.seed, per_class=5).by_class()
    rows = []
    for kind in ("top", "sub", "app", "opt"):
        system = SecureXMLSystem.host(document, constraints, scheme=kind)
        for query_class, queries in workload.items():
            result = run_query_class(system, query_class, queries)
            rows.append(
                [kind, query_class, result.server_s, result.decrypt_s,
                 result.postprocess_s, result.total_s]
            )
    print(format_table(
        ["scheme", "class", "t_server", "t_decrypt", "t_post", "t_total"],
        rows,
        f"scheme comparison on {args.workload} ({document.size()} nodes)",
    ))
    return 0


#: Reconciliation tolerance for ``repro trace`` (issue acceptance: ±1ms).
_TRACE_TOLERANCE_S = 0.001

#: (span name, QueryTrace attribute) pairs the trace command reconciles.
_TRACE_STAGES = (
    ("translate", "translate_client_s"),
    ("server", "server_s"),
    ("transfer", "transfer_s"),
    ("decrypt", "decrypt_client_s"),
    ("postprocess", "postprocess_client_s"),
    ("backoff", "backoff_s"),
)


def cmd_trace(args: argparse.Namespace) -> int:
    document, constraints = build_workload(args.workload, args.size, args.seed)
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args), parallel=_parallel(args),
        cluster=_cluster(args), backend=_backend(args),
        leakage=_leakage(args),
    )
    answer = system.query(args.xpath)
    trace = system.last_trace
    assert trace is not None
    root = trace.span
    if root is None:
        print("error: no span recorded (observability disabled?)",
              file=sys.stderr)
        return 2
    print(f"answers: {len(answer)}")
    print()
    print(root.render())
    print()
    rows = []
    ok = True
    for span_name, attr in _TRACE_STAGES:
        span_total = root.total(span_name)
        trace_value = getattr(trace, attr)
        delta = abs(span_total - trace_value)
        if delta > _TRACE_TOLERANCE_S:
            ok = False
        rows.append([
            span_name,
            f"{span_total * 1000:.3f}",
            f"{trace_value * 1000:.3f}",
            f"{delta * 1000:.3f}",
        ])
    from repro.bench.harness import format_table

    print(format_table(
        ["stage", "span_ms", "trace_ms", "delta_ms"],
        rows,
        "span/trace reconciliation (tolerance 1.000ms)",
    ))
    if not ok:
        print("error: span totals disagree with the trace", file=sys.stderr)
        return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the compiled plan for a query — no hosting, no round-trip.

    Shows which tier the planner picked (twig / axis / residual), why
    the faster tiers were rejected, and the pattern tree with ship-set
    and positional markers.  Purely client-side: nothing is hosted and
    no server is contacted.
    """
    from repro.xpath.plan import explain_plan

    print(explain_plan(args.xpath))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.workloads.queries import QueryWorkload

    document, constraints = build_workload(args.workload, args.size, args.seed)
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args), parallel=_parallel(args),
        cluster=_cluster(args), backend=_backend(args),
        leakage=_leakage(args),
    )
    workload = QueryWorkload(
        document, seed=args.seed, per_class=args.per_class
    ).by_class()
    queries = [query for batch in workload.values() for query in batch]
    system.execute_many(queries)
    obs = system.observability()
    if args.format == "json":
        print(obs.export_json())
        return 0
    if args.format == "prometheus":
        sys.stdout.write(obs.export_prometheus())
        return 0
    from repro.bench.harness import counter_report, format_table

    metrics = obs.metrics.snapshot()
    print(f"workload {args.workload}: {len(queries)} queries")
    print()
    print(counter_report(metrics["counters"]))
    print()
    rows = []
    for name, data in sorted(metrics["histograms"].items()):
        rows.append([
            name,
            data["count"],
            f"{(data['sum'] * 1000):.3f}",
            f"{((data['min'] or 0.0) * 1000):.3f}",
            f"{((data['max'] or 0.0) * 1000):.3f}",
        ])
    print(format_table(
        ["histogram", "count", "sum_ms", "min_ms", "max_ms"],
        rows,
        "latency histograms",
    ))
    serving_rows: list[list] = []
    for name, value in sorted(metrics["gauges"].items()):
        rendered = int(value) if value == int(value) else round(value, 3)
        serving_rows.append([name, rendered])
    for family, series in sorted(metrics["labeled"].items()):
        for key, count in sorted(series.items()):
            sample = f"{family}{{{key}}}" if key else family
            serving_rows.append([sample, count])
    print()
    print(format_table(
        ["serving metric", "value"],
        serving_rows,
        "serving gauges + labeled counters",
    ))
    coordinator = system.coordinator
    if coordinator is not None:
        from repro.cluster.admin import render_shard_stats

        print()
        print("per-shard breakdown:")
        print(render_shard_stats(coordinator))
    print()
    print(obs.slow_log.render())
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.admin import render_placement, render_shard_stats
    from repro.workloads.queries import QueryWorkload

    document, constraints = build_workload(args.workload, args.size, args.seed)
    cluster = _cluster(args)
    if cluster is None or cluster is False:
        from repro.cluster import ClusterConfig

        cluster = ClusterConfig(shards=4)
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args), parallel=_parallel(args),
        cluster=cluster, backend=_backend(args),
        leakage=_leakage(args),
    )
    coordinator = system.coordinator
    assert coordinator is not None
    workload = QueryWorkload(
        document, seed=args.seed, per_class=args.per_class
    ).by_class()
    queries = [query for batch in workload.values() for query in batch]
    system.execute_many(queries)
    print(render_placement(coordinator.placement))
    print()
    hosted = system.hosted
    print(
        f"freshness anchor: commit epoch {hosted.epoch}, "
        f"state root {hosted.state_root().hex()[:16]}…"
    )
    print(f"ran {len(queries)} queries through the scatter–gather path:")
    print(render_shard_stats(coordinator))
    system.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.serving import ServingServer

    document, constraints = build_workload(args.workload, args.size, args.seed)
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args), parallel=_parallel(args),
        cluster=_cluster(args), backend=_backend(args),
        leakage=_leakage(args),
    )
    server = ServingServer(
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, obs=system.observability(),
    )
    server.register_tenant(args.tenant, system, storage_dir=args.storage)
    host, port = server.start()
    print(
        f"serving tenant {args.tenant!r} "
        f"({args.workload}/{args.scheme}, backend {system.backend}) "
        f"on {host}:{port}"
    )
    print(f"admission control: {args.max_inflight} in-flight requests")
    if system.leakage is not None:
        policy = system.leakage.policy
        print(
            "access-pattern countermeasures: "
            f"pad_to={policy.pad_to} decoys={policy.decoys} "
            f"shuffle={'on' if policy.shuffle else 'off'} "
            f"seed={policy.seed}"
        )
    if args.storage:
        print(f"drain persists the hosting to {args.storage}")
    try:
        if args.serve_for is not None:
            time.sleep(args.serve_for)
        else:
            print("press Ctrl-C to drain and stop")
            while True:  # pragma: no cover - interactive loop
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("\ninterrupted: draining")
    finally:
        server.stop()
        system.close()
    print("drained and stopped")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.security.attacks import (
        FrequencyAttack,
        ciphertext_block_histogram,
    )
    from repro.xmldb.stats import value_frequencies

    document, constraints = build_workload(args.workload, args.size, args.seed)
    strawman = SecureXMLSystem.host(
        document, constraints, scheme="leaf", secure=False
    )
    production = SecureXMLSystem.host(document, constraints, scheme="opt")
    fields = value_frequencies(document)
    for field in sorted(production.hosted.field_plans):
        token = strawman.hosted.field_tokens.get(field)
        if token is None:
            continue
        attack = FrequencyAttack(fields[field])
        naive = attack.run(
            ciphertext_block_histogram(strawman.hosted, token), field
        )
        opess = attack.run(
            production.hosted.value_index.ciphertext_histogram(
                production.hosted.field_tokens[field]
            ),
            field,
        )
        print(
            f"{field}: strawman cracked {len(naive.cracked)}/"
            f"{naive.domain_size}, OPESS cracked {len(opess.cracked)}/"
            f"{opess.domain_size}"
        )

    # Third security tier: access-pattern trace attribution, with and
    # without the fetch countermeasures (see repro.security.leakage).
    from repro.core.leakage import LeakagePolicy
    from repro.security.leakage import run_leakage_game
    from repro.workloads.queries import QueryWorkload

    queries = [
        query
        for queries in QueryWorkload(
            document, seed=args.seed, per_class=2
        ).by_class().values()
        for query in queries
    ][:6]
    print()
    for label, policy in (
        ("unprotected traces", LeakagePolicy()),
        ("full countermeasures", LeakagePolicy.full()),
    ):
        system = SecureXMLSystem.host(
            document, constraints, scheme="opt", leakage=policy
        )
        game = run_leakage_game(system, queries, repeats=3, seed=args.seed)
        print(f"{label}: {game.describe()}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.security.analysis import audit_system

    document, constraints = build_workload(args.workload, args.size, args.seed)
    system = SecureXMLSystem.host(
        document, constraints, scheme=args.scheme,
        master_key=_master_key(args),
    )
    report = audit_system(system, document)
    print(report.render())
    return 0 if not report.any_value_cracked else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure query evaluation over encrypted XML databases "
        "(Wang & Lakshmanan, VLDB 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="Figure 2 end-to-end demo")
    demo.set_defaults(handler=cmd_demo)

    host = subparsers.add_parser("host", help="host a workload, print stats")
    _add_workload_arguments(host)
    host.add_argument(
        "--save", default=None, metavar="DIR",
        help="persist the hosting to a directory",
    )
    host.set_defaults(handler=cmd_host)

    query = subparsers.add_parser("query", help="run one secure query")
    _add_workload_arguments(query)
    query.add_argument(
        "--load", default=None, metavar="DIR",
        help="query a previously saved hosting instead of generating one",
    )
    query.add_argument("xpath", help="the XPath query to evaluate")
    query.set_defaults(handler=cmd_query)

    schemes = subparsers.add_parser(
        "schemes", help="compare scheme granularities"
    )
    _add_workload_arguments(schemes)
    schemes.set_defaults(handler=cmd_schemes)

    trace = subparsers.add_parser(
        "trace", help="run one query, print its span tree"
    )
    _add_workload_arguments(trace)
    trace.add_argument("xpath", help="the XPath query to trace")
    trace.set_defaults(handler=cmd_trace)

    explain = subparsers.add_parser(
        "explain", help="print a query's compiled plan (no round-trip)"
    )
    explain.add_argument("xpath", help="the XPath query to explain")
    explain.set_defaults(handler=cmd_explain)

    stats = subparsers.add_parser(
        "stats", help="run a workload, export observability stats"
    )
    _add_workload_arguments(stats)
    stats.add_argument(
        "--per-class", type=int, default=3, dest="per_class",
        help="queries generated per §7.1 query class",
    )
    stats.add_argument(
        "--format", choices=("table", "json", "prometheus"),
        default="table", help="export format",
    )
    stats.set_defaults(handler=cmd_stats)

    cluster = subparsers.add_parser(
        "cluster", help="host across shards, print placement + shard stats"
    )
    _add_workload_arguments(cluster)
    cluster.add_argument(
        "--per-class", type=int, default=3, dest="per_class",
        help="queries generated per §7.1 query class",
    )
    cluster.set_defaults(handler=cmd_cluster)

    serve = subparsers.add_parser(
        "serve", help="host a workload behind the socket serving layer"
    )
    _add_workload_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="listening address"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--tenant", default="default", help="tenant id for the hosting"
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, dest="max_inflight",
        help="admission-control bound on concurrent in-flight requests",
    )
    serve.add_argument(
        "--storage", default=None, metavar="DIR",
        help="persist the hosting to DIR on drain",
    )
    serve.add_argument(
        "--serve-for", type=float, default=None, dest="serve_for",
        metavar="SECONDS",
        help="serve for a fixed duration then drain (default: until ^C)",
    )
    serve.set_defaults(handler=cmd_serve)

    attack = subparsers.add_parser(
        "attack", help="frequency attack vs the defences"
    )
    _add_workload_arguments(attack)
    attack.set_defaults(handler=cmd_attack)

    audit = subparsers.add_parser(
        "audit", help="full security audit of a hosting"
    )
    _add_workload_arguments(audit)
    audit.set_defaults(handler=cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
