"""E7 — Theorem 4.1: candidate-database counts under decoy encryption.

Reproduces the paper's worked number — k = (3,4,5) → 27 720 candidate
databases — and shows the exponential growth of the security margin with
the domain, using the real value histograms of the healthcare database.
"""

from repro.bench.harness import format_table
from repro.security.counting import database_candidates
from repro.workloads.healthcare import build_healthcare_database
from repro.xmldb.stats import value_frequencies

from conftest import write_result


def _run():
    rows = []
    # The paper's example.
    rows.append(["paper §4.1 (3,4,5)", "3+4+5", database_candidates([3, 4, 5])])
    # Growth series.
    for copies in (2, 4, 6, 8, 10):
        frequencies = [2] * copies
        rows.append(
            [f"uniform 2×{copies}", f"{2 * copies}",
             database_candidates(frequencies)]
        )
    # Real fields from Figure 2.
    document = build_healthcare_database()
    for field, histogram in sorted(value_frequencies(document).items()):
        rows.append(
            [
                f"healthcare {field}",
                "+".join(str(c) for c in histogram.values()),
                database_candidates(list(histogram.values())),
            ]
        )
    return rows


def test_thm41_candidate_counts(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["case", "frequencies", "candidate databases"],
        rows,
        "Theorem 4.1 — candidate databases after decoy encryption",
    )
    write_result("thm41_candidate_counts", table)

    by_case = {row[0]: row[2] for row in rows}
    assert by_case["paper §4.1 (3,4,5)"] == 27720
    # Exponential growth: each added value multiplies the margin.
    assert by_case["uniform 2×10"] > 1_000 * by_case["uniform 2×4"]
    # Every real multi-valued field gives the attacker > 1 candidate.
    assert by_case["healthcare disease"] >= 3
