"""Integrity envelope for wire payloads (untrusted-server hardening).

The paper's threat model (§3.3) assumes an honest-but-curious server; this
module moves the reproduction toward an *actively adversarial* one: every
payload crossing the client↔server channel is wrapped in a keyed
HMAC-SHA256 envelope, and every encryption block carries an
encrypt-then-MAC tag (see :meth:`repro.crypto.keyring.ClientKeyring
.block_tag`).  Tampering — whether injected by the fault channel or by the
server — becomes *detection* (a typed error the retry layer can handle),
never a silent wrong answer.

Envelope layout::

    b"rxi1" | tag (32 bytes, HMAC-SHA256 over the payload) | payload

Two MAC keys exist (both derived from the master key, see
``ClientKeyring.session_keys``): the *request* key authenticates
client→server messages, the *response* key server→client messages.  They
model an authenticated session, so they defend the wire; the per-block
tags use a third, client-only key and defend against the server itself.
"""

from __future__ import annotations

import hmac as _compare

from repro.crypto.hmac import hmac_sha256_fast

#: Envelope magic: "repro xml integrity, layout 1".
MAGIC = b"rxi1"
TAG_BYTES = 32
OVERHEAD = len(MAGIC) + TAG_BYTES


class IntegrityError(Exception):
    """Base class for integrity-envelope verification failures."""


class TamperedResponseError(IntegrityError):
    """A server→client payload failed MAC verification (or a block tag)."""


class TamperedRequestError(IntegrityError):
    """A client→server payload failed MAC verification at the server."""


def seal(key: bytes, payload: bytes) -> bytes:
    """Wrap ``payload`` in the integrity envelope under ``key``."""
    return MAGIC + hmac_sha256_fast(key, payload) + payload


def unseal(
    key: bytes,
    blob: bytes,
    error: type[IntegrityError] = TamperedResponseError,
) -> bytes:
    """Verify and strip the envelope; raises ``error`` on any mismatch.

    Every failure mode — truncation below the header, a wrong magic, a
    flipped bit anywhere in tag or payload — raises the same typed error,
    so callers cannot be tricked into partial parses.
    """
    if len(blob) < OVERHEAD or blob[: len(MAGIC)] != MAGIC:
        raise error("envelope header missing or truncated")
    tag = blob[len(MAGIC) : OVERHEAD]
    payload = blob[OVERHEAD:]
    if not _compare.compare_digest(tag, hmac_sha256_fast(key, payload)):
        raise error("envelope MAC mismatch")
    return payload
