"""Server-side scatter–gather for cluster tenants behind the socket.

In-process, the :class:`~repro.cluster.coordinator.ClusterCoordinator`
is *client-side* machinery: the owner fans a sealed request out to every
shard, verifies each partial itself, and merges.  Behind the front door
the fan-out must happen where the shards live — inside the serving
process — so a remote client keeps the one-request/one-response wire
shape a monolithic tenant has.

The gateway keeps every security property the coordinator path has:

* the incoming request blob goes to the shards byte-unchanged, so each
  shard's wire cache keys on exactly the bytes a direct client would
  send;
* each partial is verified (envelope + freshness) through the tenant
  system's own client before merging, inside the replica set's failover
  loop, so stale replicas are demoted/resynced exactly as in-process;
* the merge is the same :func:`~repro.cluster.coordinator.merge_partials`
  code the coordinator runs, so the merged response — and therefore the
  remote client's final answer — is byte-identical to the in-process
  cluster answer;
* the merged response is re-sealed under the tenant's *current*
  ``(epoch, Merkle root)`` anchor, so the remote client's freshness
  check works unchanged.

The gateway holding the response session key is not a weakening of the
threat model: the gateway runs in the serving process of the *owner's*
deployment, which already hosts the tenant's full
:class:`~repro.core.system.SecureXMLSystem` (keys included).  The
untrusted parties remain the shard servers and the wire.
"""

from __future__ import annotations

import random
import threading

from repro.cluster.coordinator import ClusterCoordinator, merge_partials
from repro.core.integrity import seal_fresh
from repro.core.system import QueryTrace, SecureXMLSystem
from repro.netsim.message import encode_response, encode_response_chunks
from repro.perf import counters


class ClusterGateway:
    """Wire-compatible ``answer_wire``/``ship_all_wire`` over a cluster.

    Presents the monolithic :class:`~repro.core.server.Server` wire
    surface for a tenant whose system runs the sharded coordinator, so
    the serving dispatch (and the remote client) never needs to know
    which execution engine backs a tenant.
    """

    def __init__(self, system: SecureXMLSystem) -> None:
        coordinator = system.coordinator
        if coordinator is None:
            raise ValueError("ClusterGateway requires a cluster system")
        self._system = system
        self._coordinator: ClusterCoordinator = coordinator
        self._hosted = system.hosted
        self._response_key = system.keyring.session_keys()[1]
        #: Deterministic backoff RNG for the replica failover loops
        #: (modelled delays only; seeded so socket runs are replayable).
        self._rng = random.Random(system.retry_policy.seed)
        # Epoch-gated sealed caches, mirroring Server's wire/stream
        # caches: the sealed blobs embed the anchor, so any epoch move
        # invalidates them wholesale.
        self._lock = threading.RLock()
        self._wire_cache: dict[bytes, bytes] = {}
        self._stream_cache: dict[bytes, tuple[bytes, ...]] = {}
        self._cache_epoch = self._hosted.epoch

    # ------------------------------------------------------------------
    # Server wire surface
    # ------------------------------------------------------------------
    def answer_wire(self, request_blob: bytes) -> bytes:
        """Scatter the sealed request, gather, merge, re-seal."""
        with self._lock:
            self._check_epoch()
            cached = self._wire_cache.get(request_blob)
            if cached is not None:
                return cached
        merged = self._scatter(request_blob)
        epoch, root = self._hosted.anchor()
        blob = seal_fresh(
            self._response_key, encode_response(merged), epoch, root
        )
        with self._lock:
            self._check_epoch()
            if self._hosted.epoch == epoch:
                self._wire_cache[request_blob] = blob
        return blob

    def answer_wire_stream(
        self, request_blob: bytes, chunk_fragments: int = 8
    ):
        """The chunked twin of :meth:`answer_wire`.

        The merged response is computed first (a cluster gather cannot
        stream — the merge needs every partial), then re-encoded as the
        standard chunk sequence and sealed chunk by chunk, so the remote
        client's streaming verifier works identically against cluster
        and monolithic tenants.
        """
        key = (request_blob, chunk_fragments)
        with self._lock:
            self._check_epoch()
            cached = self._stream_cache.get(key)
        if cached is not None:
            yield from cached
            return
        merged = self._scatter(request_blob)
        epoch, root = self._hosted.anchor()
        sealed = tuple(
            seal_fresh(self._response_key, payload, epoch, root)
            for payload in encode_response_chunks(merged, chunk_fragments)
        )
        with self._lock:
            self._check_epoch()
            if self._hosted.epoch == epoch:
                self._stream_cache[key] = sealed
        yield from sealed

    def ship_all_wire(self, request_blob: bytes) -> bytes:
        """Naive path: the root-owning shard ships everything.

        The shard's sealed blob passes through unchanged — it is already
        sealed under the tenant's global anchor, so re-sealing would
        only re-verify what the remote client verifies anyway.
        """
        coordinator = self._coordinator
        root_set = next(
            (rs for rs in coordinator.replica_sets if rs.owns_root()),
            coordinator.replica_sets[0],
        )
        trace = QueryTrace(query="<serving-naive>")
        sealed, _ = root_set.exchange(
            request_blob,
            trace,
            self._rng,
            naive=True,
            verify=self._system.client.check_freshness,
        )
        return sealed

    def flush_caches(self) -> None:
        with self._lock:
            self._wire_cache.clear()
            self._stream_cache.clear()
        self._coordinator.flush_caches()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_epoch(self) -> None:
        if self._hosted.epoch != self._cache_epoch:
            self._wire_cache.clear()
            self._stream_cache.clear()
            self._cache_epoch = self._hosted.epoch

    def _scatter(self, request_blob: bytes):
        """Failover exchange against every shard; merged response."""
        coordinator = self._coordinator
        client = self._system.client
        counters.add("cluster_scatters")
        trace = QueryTrace(query="<serving>")
        partials = []
        for replica_set in coordinator.scatter_order():
            sealed, _ = replica_set.exchange(
                request_blob,
                trace,
                self._rng,
                verify=client.check_freshness,
            )
            partial = client.open_response(sealed)
            partials.append((replica_set.shard_id, partial))
            replica_set.stats.fragments_returned += len(partial.fragments)
            replica_set.stats.blocks_shipped += partial.blocks_shipped
        return merge_partials(partials, coordinator.epochs.freshest_shard())
