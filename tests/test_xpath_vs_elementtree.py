"""Cross-check the XPath oracle against ``xml.etree.ElementTree``.

Our evaluator is the correctness reference for the whole system, so it
deserves an external referee: on the XPath fragment both engines support
(child chains, ``//`` descents, wildcards, ``[tag='value']`` and
``[@attr='value']`` filters), hypothesis-generated documents and queries
must produce identical answer multisets.
"""

import xml.etree.ElementTree as ET

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Element
from repro.xmldb.serializer import serialize
from repro.xpath.evaluator import evaluate

_TAGS = ["aa", "bb", "cc"]
_LEAVES = ["xx", "yy"]
_VALUES = ["1", "2", "three"]


@st.composite
def documents(draw):
    builder = TreeBuilder("root")
    for _ in range(draw(st.integers(1, 4))):
        with builder.element(draw(st.sampled_from(_TAGS))):
            if draw(st.booleans()):
                builder.attribute("k", draw(st.sampled_from(_VALUES)))
            for _ in range(draw(st.integers(0, 3))):
                builder.leaf(
                    draw(st.sampled_from(_LEAVES)),
                    draw(st.sampled_from(_VALUES)),
                )
            if draw(st.booleans()):
                with builder.element(draw(st.sampled_from(_TAGS))):
                    builder.leaf(
                        draw(st.sampled_from(_LEAVES)),
                        draw(st.sampled_from(_VALUES)),
                    )
    return builder.document()


@st.composite
def queries(draw):
    kind = draw(st.integers(0, 5))
    tag = draw(st.sampled_from(_TAGS))
    leaf = draw(st.sampled_from(_LEAVES))
    value = draw(st.sampled_from(_VALUES))
    if kind == 0:
        return f".//{leaf}"
    if kind == 1:
        return f"./{tag}"
    if kind == 2:
        return f"./{tag}/{leaf}"
    if kind == 3:
        return f".//{tag}[{leaf}='{value}']"
    if kind == 4:
        return f"./{tag}[@k='{value}']"
    return f"./*/{leaf}"


def _our_answers(document, query):
    # ElementTree anchors './' at the root element; our absolute queries
    # anchor at the virtual document node, so prefix the root element.
    translated = query.replace("./", f"/{document.root.tag}/", 1)
    if translated.startswith(f"/{document.root.tag}//"):
        pass
    results = evaluate(document, translated)
    return sorted(
        serialize(node) for node in results if isinstance(node, Element)
    )


def _et_answers(document, query):
    tree = ET.fromstring(serialize(document))
    return sorted(
        ET.tostring(element, encoding="unicode").strip()
        for element in tree.findall(query)
    )


def _normalize(xml_strings):
    # Align self-closing form (ET writes "<a />"), then re-sort: the
    # normalization can change relative order.
    return sorted(
        s.replace(" />", "/>").replace(" ", "") for s in xml_strings
    )


class TestAgainstElementTree:
    @given(documents(), st.lists(queries(), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_answers_agree(self, document, query_list):
        for query in query_list:
            ours = _normalize(_our_answers(document, query))
            theirs = _normalize(_et_answers(document, query))
            assert ours == theirs, query

    def test_known_disagreement_free_examples(self):
        builder = TreeBuilder("root")
        with builder.element("aa"):
            builder.attribute("k", "1")
            builder.leaf("xx", "2")
        with builder.element("aa"):
            builder.leaf("xx", "three")
        document = builder.document()
        for query in (".//xx", "./aa", ".//aa[xx='2']", "./aa[@k='1']"):
            assert _normalize(_our_answers(document, query)) == _normalize(
                _et_answers(document, query)
            ), query
