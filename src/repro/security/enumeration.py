"""Exhaustive candidate enumeration: empirical ground truth for the theorems.

The closed-form counts in :mod:`repro.security.counting` are only as
trustworthy as their derivations; for small instances we can *enumerate*
the candidate sets directly and compare.  The test suite uses these
enumerators to certify each formula on every tractable instance size:

* :func:`enumerate_value_assignments` — all ways to partition a set of
  frequency-1 ciphertexts among plaintext values with known counts
  (Theorem 4.1's multinomial);
* :func:`enumerate_interval_groupings` — all sibling-composition shapes a
  grouped block admits (Theorem 5.1's ``C(n−1, k−1)``), re-exported from
  the counting module's composition enumerator;
* :func:`enumerate_order_preserving_partitions` — all order-preserving
  partitions of n ciphertext values into k non-empty runs (Theorem 5.2).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from repro.security.counting import compositions


def enumerate_value_assignments(
    frequencies: Sequence[int],
) -> Iterator[tuple[frozenset[int], ...]]:
    """Yield every assignment of ``sum(frequencies)`` ciphertexts to values.

    Ciphertexts are represented by indices ``0..m-1``; an assignment gives
    value ``i`` a set of exactly ``frequencies[i]`` of them, all sets
    disjoint.  The number of yielded assignments equals Theorem 4.1's
    ``(Σkᵢ)!/Πkᵢ!``.
    """
    total = sum(frequencies)

    def recurse(
        remaining: frozenset[int], counts: Sequence[int]
    ) -> Iterator[tuple[frozenset[int], ...]]:
        if not counts:
            if not remaining:
                yield ()
            return
        first, rest = counts[0], counts[1:]
        for chosen in combinations(sorted(remaining), first):
            chosen_set = frozenset(chosen)
            for tail in recurse(remaining - chosen_set, rest):
                yield (chosen_set,) + tail

    yield from recurse(frozenset(range(total)), list(frequencies))


def enumerate_interval_groupings(
    leaves: int, intervals: int
) -> list[tuple[int, ...]]:
    """All ways ``intervals`` grouped intervals can cover ``leaves`` leaves.

    Each result is a composition (ordered positive parts summing to
    ``leaves``) — the candidate subtree shapes of Figure 5.
    """
    return compositions(leaves, intervals)


def enumerate_order_preserving_partitions(
    ciphertext_values: int, plaintext_values: int
) -> Iterator[tuple[tuple[int, ...], ...]]:
    """All order-preserving partitions of n ciphertexts into k runs.

    Ciphertexts ``0..n-1`` are split at ``k−1`` cut positions; each run is
    the candidate ciphertext set of one plaintext value (Theorem 5.2).
    """
    n, k = ciphertext_values, plaintext_values
    indices = list(range(n))
    for cuts in combinations(range(1, n), k - 1):
        boundaries = (0,) + cuts + (n,)
        yield tuple(
            tuple(indices[boundaries[i] : boundaries[i + 1]])
            for i in range(k)
        )
