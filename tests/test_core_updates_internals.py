"""Internals of the update engine: interval allocation and index surgery."""

import pytest

from repro.core.encryptor import host_database
from repro.core.scheme import build_scheme
from repro.core.system import SecureXMLSystem
from repro.core.updates import UpdateEngine, UpdateError
from repro.crypto.keyring import ClientKeyring


@pytest.fixture
def engine_and_hosted(healthcare_doc, healthcare_scs):
    keyring = ClientKeyring(b"u" * 16)
    scheme = build_scheme(healthcare_doc, healthcare_scs, "opt")
    hosted = host_database(healthcare_doc, scheme, keyring)
    return UpdateEngine(hosted, keyring), hosted


class TestIntervalAllocation:
    def test_new_interval_nested_in_parent(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[0]
        interval = engine._allocate_child_interval(parent)
        assert parent.interval.contains(interval)

    def test_new_interval_after_existing_children(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[0]
        interval = engine._allocate_child_interval(parent)
        for child in parent.children:
            assert child.interval.high < interval.low

    def test_repeated_allocations_stay_ordered(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[0]
        previous_high = None
        # Repeated insertion consumes the trailing gap geometrically; a
        # healthy number of inserts must fit before precision runs out.
        for index in range(25):
            engine.insert_element(parent, "note", f"n{index}")
            newest = hosted.structural_index.lookup("note")[-1]
            assert parent.interval.contains(newest.interval)
            if previous_high is not None:
                assert newest.interval.low > previous_high
            previous_high = newest.interval.high

    def test_gap_exhaustion_raises_cleanly(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[0]
        with pytest.raises(UpdateError):
            for index in range(100_000):
                engine.insert_element(parent, "note", f"n{index}")
        # The failure is a refusal, not corruption: existing entries are
        # still well-formed and queryable.
        notes = hosted.structural_index.lookup("note")
        assert all(
            parent.interval.contains(entry.interval) for entry in notes
        )


class TestIndexSurgery:
    def test_added_entry_linked_to_parent(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[0]
        engine.insert_element(parent, "note", "x")
        entry = hosted.structural_index.lookup("note")[0]
        assert entry.parent is parent
        assert entry in parent.children

    def test_entries_stay_sorted_after_insert(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        parent = hosted.structural_index.lookup("patient")[1]
        engine.insert_element(parent, "note", "x")
        lows = [e.interval.low for e in hosted.structural_index.all_entries()]
        assert lows == sorted(lows)

    def test_delete_removes_descendant_entries(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        treat = hosted.structural_index.lookup("treat")[0]
        doctor_count = len(hosted.structural_index.lookup("doctor"))
        engine.delete_element(treat)
        assert len(hosted.structural_index.lookup("treat")) == 2
        assert len(hosted.structural_index.lookup("doctor")) == doctor_count - 1

    def test_delete_block_cleans_all_tables(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        token_entries = [
            e for e in hosted.structural_index.all_entries()
            if e.block_id is not None
        ]
        victim = token_entries[0].block_id
        engine._delete_block(victim)
        assert victim not in hosted.blocks
        assert victim not in hosted.placeholders
        assert victim not in hosted.structural_index.block_table
        assert all(
            e.block_id != victim
            for e in hosted.structural_index.all_entries()
        )

    def test_resolve_parent_by_element(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        entry = hosted.structural_index.lookup("patient")[0]
        resolved = engine._resolve_parent(entry.hosted_node)
        assert resolved is entry

    def test_resolve_parent_unknown_element(self, engine_and_hosted):
        from repro.xmldb.node import Element

        engine, _ = engine_and_hosted
        with pytest.raises(UpdateError):
            engine._resolve_parent(Element("stranger"))


class TestFieldRebuild:
    def test_rebuild_reflects_new_histogram(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        before = system.hosted.field_plans["disease"].ordered_values
        system.insert_element(
            "//patient[pname='Matt']/treat", "disease", "aaa-first"
        )
        after = system.hosted.field_plans["disease"].ordered_values
        assert "aaa-first" == after[0]  # categorical order re-derived
        assert len(after) == len(before) + 1

    def test_last_occurrence_removal_drops_plan(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        # Delete every insurance block: @coverage loses all occurrences.
        system.delete_element("//patient[pname='Betty']/insurance")
        system.delete_element("//patient[pname='Matt']/insurance")
        assert "@coverage" not in system.hosted.field_plans
        token = system.hosted.field_tokens.get("@coverage")
        if token is not None:
            assert system.hosted.value_index.tree_for(token) is None

class TestHostedIdAllocation:
    """Hosted node ids come from an O(1) high-water mark, not tree walks.

    Inserts used to recompute ``max(node_id)`` by walking the whole
    hosted tree on every allocation — quadratic over a batch of inserts.
    The mark is maintained incrementally now; the full walk is a lazy
    one-shot fallback for hostings loaded from pre-mark storage.
    """

    def _count_scans(self, hosted, monkeypatch):
        calls = {"scans": 0}
        original = type(hosted)._scan_max_hosted_id

        def counting_scan(self):
            calls["scans"] += 1
            return original(self)

        monkeypatch.setattr(
            type(hosted), "_scan_max_hosted_id", counting_scan
        )
        return calls

    def test_fresh_hosting_never_scans(
        self, engine_and_hosted, monkeypatch
    ):
        engine, hosted = engine_and_hosted
        assert hosted.max_hosted_id is not None  # set at hosting time
        calls = self._count_scans(hosted, monkeypatch)
        parent = hosted.structural_index.lookup("patient")[0]
        for index in range(20):
            engine.insert_element(parent, "note", f"n{index}")
        assert calls["scans"] == 0

    def test_legacy_hosting_scans_exactly_once(
        self, engine_and_hosted, monkeypatch
    ):
        engine, hosted = engine_and_hosted
        hosted.max_hosted_id = None  # simulate a pre-mark stored hosting
        calls = self._count_scans(hosted, monkeypatch)
        parent = hosted.structural_index.lookup("patient")[0]
        for index in range(20):
            engine.insert_element(parent, "note", f"n{index}")
        assert calls["scans"] == 1

    def test_allocated_ids_are_fresh_and_increasing(self, engine_and_hosted):
        engine, hosted = engine_and_hosted
        existing = {node.node_id for node in hosted.hosted_root.iter()}
        allocated = [hosted.allocate_hosted_id() for _ in range(10)]
        assert allocated == sorted(allocated)
        assert len(set(allocated)) == len(allocated)
        assert not (set(allocated) & existing)

    def test_delete_does_not_lower_the_mark(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        system.insert_element(
            "//patient[pname='Matt']/treat", "disease", "tempval"
        )
        mark = system.hosted.max_hosted_id
        system.delete_element("//disease[.='tempval']")
        assert system.hosted.max_hosted_id == mark
        assert system.hosted.allocate_hosted_id() == mark + 1
