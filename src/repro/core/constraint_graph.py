"""The constraint graph (§4.2, Figure 8).

The graph "has a node for every tag appearing in the SCs and an edge
representing every association type SC".  Finding the cheapest set of fields
to encrypt such that every association SC has at least one encrypted
endpoint is exactly weighted VERTEX COVER on this graph — the reduction
behind Theorem 4.2's NP-hardness result.

Vertex weights model the encryption cost the paper minimizes: the total
number of nodes that encrypting a field adds to the scheme, including the
decoy each encrypted leaf receives (the scheme-size measure of
Definition 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmldb.node import Attribute, Document, Element, Node
from repro.core.constraints import SecurityConstraint


@dataclass
class ConstraintGraph:
    """Weighted undirected graph over SC endpoint fields."""

    #: field name -> encryption cost (nodes + decoys)
    weights: dict[str, int] = field(default_factory=dict)
    #: undirected edges, one per association SC (parallel edges collapse)
    edges: set[frozenset[str]] = field(default_factory=set)
    #: field name -> concrete nodes that encrypting the field covers
    bindings: dict[str, list[Node]] = field(default_factory=dict)

    @property
    def vertices(self) -> list[str]:
        return sorted(self.weights)

    def degree(self, vertex: str) -> int:
        return sum(1 for edge in self.edges if vertex in edge)

    def neighbors(self, vertex: str) -> set[str]:
        out: set[str] = set()
        for edge in self.edges:
            if vertex in edge:
                out |= set(edge) - {vertex}
        return out

    def is_vertex_cover(self, cover: set[str]) -> bool:
        """True if every edge has at least one endpoint in ``cover``."""
        return all(edge & cover for edge in self.edges)


def build_constraint_graph(
    document: Document, constraints: list[SecurityConstraint]
) -> ConstraintGraph:
    """Construct the weighted constraint graph of the association SCs.

    Node-type SCs do not appear in the graph — their targets are encrypted
    unconditionally (there is no covering choice to make); see
    :func:`repro.core.scheme.secure_scheme`.
    """
    graph = ConstraintGraph()
    for constraint in constraints:
        if not constraint.is_association:
            continue
        fields = (constraint.endpoint_field(1), constraint.endpoint_field(2))
        for which, field_name in enumerate(fields, start=1):
            bound = [
                _encryptable(node)
                for node in constraint.endpoint_nodes(document, which)
            ]
            if field_name not in graph.weights:
                graph.bindings[field_name] = []
                graph.weights[field_name] = 0
            # The same field can be an endpoint of several SCs with
            # different context paths; widen its binding set.
            known = {id(n) for n in graph.bindings[field_name]}
            for node in bound:
                if id(node) not in known:
                    known.add(id(node))
                    graph.bindings[field_name].append(node)
                    graph.weights[field_name] += _encryption_cost(node)
        if fields[0] == fields[1]:
            # A degenerate self-association (q1 and q2 name the same field)
            # forces that field into every cover; model it as a self-loop
            # handled by the solvers.
            graph.edges.add(frozenset({fields[0]}))
        else:
            graph.edges.add(frozenset(fields))
    return graph


def _encryptable(node: Node) -> Element:
    """The element actually encrypted for a bound endpoint node.

    Elements encrypt as their own block.  Attributes cannot stand alone in
    an XML serialization, so an attribute endpoint encrypts its owning
    element (which carries the attribute into the ciphertext) — the same
    effect the paper achieves in Figure 2, where ``@coverage`` is hidden by
    encrypting the enclosing ``insurance`` subtree.
    """
    if isinstance(node, Attribute):
        owner = node.parent
        assert isinstance(owner, Element)
        return owner
    if isinstance(node, Element):
        return node
    raise TypeError(f"cannot encrypt node kind {type(node).__name__}")


def _encryption_cost(node: Element) -> int:
    """Scheme-size contribution of encrypting this element as one block.

    The block contains the element's subtree plus one decoy per encrypted
    leaf element (Theorem 4.1 condition (iii)); an element with no value
    leaves still gets one decoy so its ciphertext is randomized.
    """
    leaf_count = sum(
        1
        for descendant in node.iter()
        if isinstance(descendant, Element) and descendant.is_leaf_element
    )
    return node.subtree_size() + max(leaf_count, 1)
