"""An order-configurable B-tree used as the server-side value index (§5.2)."""

from repro.btree.btree import BTree

__all__ = ["BTree"]
