"""Persistence of hosted databases (deployment support).

In the DAS setting of Figure 1 the encrypted database and its metadata
*live* at the server between sessions.  This module serializes everything
a server stores — the hosted tree with its ciphertext blocks, the DSI
index table, the encryption block table and the B-tree value index — plus
a separate client-state file that stays with the data owner, and rebuilds
a working :class:`~repro.core.system.SecureXMLSystem` from disk + the
master key.

Layout of a saved hosting::

    <directory>/
      hosted.xml          # the partially encrypted tree (server-side)
      server_meta.json    # DSI table, block table, value index (server-side)
      client_state.json   # owner's knowledge: tag sets, occurrences,
                          # per-block MAC tags (client-side — contains
                          # plaintext values; it must never be given to
                          # the server)
      columns.json        # column manifest: plane layout + tag slices
                          # (see repro.core.colstore)
      columns.bin         # the flat plane arrays, 8-byte aligned — a
                          # columnar-backend load mmaps this instead of
                          # materializing the DSI entry objects
      manifest.json       # SHA-256 of each file above (commit marker)

Field plans, tag tokens and every key are *re-derived* from the master key
on load (the whole pipeline is deterministic in it), so the client file
holds only what cannot be derived: which tags/fields exist on which side,
the per-field occurrence lists that power incremental updates, and the
encrypt-then-MAC block tags.

Crash safety
------------
A save is a two-phase commit: every file is first *staged* next to its
target as ``<name>.new`` (written, flushed and fsynced), then the data
files are published with atomic :func:`os.replace` and the manifest is
replaced **last**.  The manifest therefore acts as the commit record — a
directory whose files all hash to the manifest's digests is a consistent
hosting.  :func:`load_system` first runs recovery: an interrupted save is
rolled *forward* when the staged generation is complete (every file either
already published or still staged intact) and rolled *back* (stale ``.new``
files discarded) otherwise, so a save killed at any instant leaves the
directory loadable — either entirely the old hosting or entirely the new
one, never a mix.  Any file that fails its manifest digest afterwards
raises :class:`StorageError` naming the bad file.

The module-level crash hook (:func:`set_crash_point`) lets tests kill a
save at every labelled step of the protocol and prove that claim.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter

from repro.btree import BTree
from repro.core.client import Client
from repro.core.colstore import (
    ColstoreError,
    MANIFEST_FILE as COLUMNS_MANIFEST,
    PLANES_FILE as COLUMNS_PLANES,
    load_columns,
    pack_columns,
)
from repro.core.columnar import LazyStructuralIndex, resolve_backend
from repro.core.dsi import IndexEntry, Interval, StructuralIndex
from repro.core.encryptor import HostedDatabase, _renumber_hosted
from repro.core.opess import ValueIndex, build_field_plan
from repro.core.scheme import EncryptionScheme
from repro.core.server import Server
from repro.core.system import HostingTrace, RetryPolicy, SecureXMLSystem
from repro.crypto.keyring import ClientKeyring
from repro.netsim.channel import Channel
from repro.xmldb.node import Element, EncryptedBlockNode, Node
from repro.xmldb.parser import ENCRYPTED_DATA_TAG, parse_fragment
from repro.xmldb.serializer import serialize

_FORMAT_VERSION = 2

_DATA_FILES = (
    "hosted.xml",
    "server_meta.json",
    "client_state.json",
    COLUMNS_MANIFEST,
    COLUMNS_PLANES,
)
_MANIFEST = "manifest.json"


class StorageError(ValueError):
    """A saved hosting is corrupt, tampered with, or unreadable.

    Always names the offending file in :attr:`path`/the message, so an
    operator knows *which* artifact to restore.  Subclasses
    :class:`ValueError` for compatibility with pre-hardening callers.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{message}: {path}")


class CrashInjected(RuntimeError):
    """Raised by the crash hook to simulate a kill mid-save (tests only)."""


_crash_point: str | None = None


def set_crash_point(point: str | None) -> None:
    """Arm the crash hook: the next save raises at the named step.

    Steps are ``stage:<file>`` (before that file's ``.new`` is written)
    and ``commit:<file>`` (before that file's :func:`os.replace`), with
    files in the order hosted.xml, server_meta.json, client_state.json,
    manifest.json.  Pass ``None`` to disarm.
    """
    global _crash_point
    _crash_point = point


def crash_points() -> list[str]:
    """Every step a save can be killed at, in protocol order."""
    names = (*_DATA_FILES, _MANIFEST)
    return [f"stage:{name}" for name in names] + [
        f"commit:{name}" for name in names
    ]


def _maybe_crash(point: str) -> None:
    if _crash_point == point:
        raise CrashInjected(point)


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _file_digest(path: str) -> str | None:
    """SHA-256 of a file, or None when it is absent/unreadable."""
    try:
        with open(path, "rb") as f:
            return _sha256_hex(f.read())
    except OSError:
        return None


def _write_staged(directory: str, name: str, data: bytes) -> None:
    """Write ``<name>.new`` durably (flush + fsync before returning)."""
    staged = os.path.join(directory, name + ".new")
    with open(staged, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_system(system: SecureXMLSystem, directory: str) -> None:
    """Persist a hosted system's server and client state to a directory.

    Atomic with respect to crashes: see the module docstring for the
    stage-then-commit protocol.
    """
    os.makedirs(directory, exist_ok=True)
    hosted = system.hosted

    entries = hosted.structural_index.all_entries()
    entry_index = {id(entry): position for position, entry in enumerate(entries)}
    server_meta = {
        "version": _FORMAT_VERSION,
        "dsi": [
            {
                "key": entry.key,
                "low": entry.interval.low,
                "high": entry.interval.high,
                "members": list(entry.member_ids),
                "block": entry.block_id,
                "parent": entry_index.get(id(entry.parent)),
                "value": entry.plaintext_value,
                "hosted_id": (
                    entry.hosted_node.node_id
                    if entry.hosted_node is not None
                    else None
                ),
            }
            for entry in entries
        ],
        "block_table": {
            str(block_id): [interval.low, interval.high]
            for block_id, interval in (
                hosted.structural_index.block_table.items()
            )
        },
        "value_index": {
            token: [[key, block] for key, block in tree.items()]
            for token, tree in hosted.value_index.trees.items()
        },
    }

    client_state = {
        "version": _FORMAT_VERSION,
        "root_tag": hosted.root_tag,
        "secure": hosted.secure,
        "scheme_kind": system.scheme.kind,
        "covered_fields": sorted(system.scheme.covered_fields),
        "encrypted_tags": sorted(hosted.encrypted_tags),
        "plaintext_keys": sorted(hosted.plaintext_keys),
        "occurrences": {
            field: [[value, block] for value, block in occurrence_list]
            for field, occurrence_list in hosted.occurrences.items()
        },
        "block_tags": {
            str(block_id): tag.hex()
            for block_id, tag in sorted(hosted.block_tags.items())
        },
        "decoy_count": hosted.decoy_count,
        # Freshness anchor: the commit epoch and Merkle root over the
        # block tags travel with the client state, inside the same
        # stage-then-commit transaction as the data they attest — crash
        # recovery can only ever yield a committed (epoch, root) pair.
        "epoch": hosted.epoch,
        "state_root": hosted.state_root().hex(),
    }

    columns_manifest, columns_blob = pack_columns(
        hosted.structural_index.columnar()
    )
    contents: dict[str, bytes] = {
        "hosted.xml": serialize(hosted.hosted_root).encode("utf-8"),
        "server_meta.json": json.dumps(server_meta).encode("utf-8"),
        "client_state.json": json.dumps(client_state).encode("utf-8"),
        COLUMNS_MANIFEST: json.dumps(columns_manifest).encode("utf-8"),
        COLUMNS_PLANES: columns_blob,
    }
    manifest = {
        "version": _FORMAT_VERSION,
        "files": {name: _sha256_hex(data) for name, data in contents.items()},
    }
    contents[_MANIFEST] = json.dumps(manifest).encode("utf-8")

    # Phase 1: stage everything as .new (data files first, manifest last,
    # so a complete staged manifest implies a complete staged generation).
    for name in (*_DATA_FILES, _MANIFEST):
        _maybe_crash(f"stage:{name}")
        _write_staged(directory, name, contents[name])

    # Phase 2: publish.  The manifest replace is the commit point.
    for name in (*_DATA_FILES, _MANIFEST):
        _maybe_crash(f"commit:{name}")
        path = os.path.join(directory, name)
        os.replace(path + ".new", path)
    _fsync_directory(directory)


# ----------------------------------------------------------------------
# Recovery + verification (load path)
# ----------------------------------------------------------------------
def _recover(directory: str) -> None:
    """Finish or undo an interrupted save so the directory is consistent.

    Roll forward when the staged generation is complete — the staged
    manifest parses and every listed file is available at its staged
    digest (already published or still in ``.new``) — otherwise roll
    back by discarding every stale ``.new`` file.
    """
    staged_manifest = os.path.join(directory, _MANIFEST + ".new")
    if not os.path.exists(staged_manifest):
        _discard_staged(directory)
        return
    try:
        with open(staged_manifest, "rb") as f:
            manifest = json.loads(f.read().decode("utf-8"))
        files = dict(manifest["files"])
    except (ValueError, KeyError, TypeError, OSError):
        # The save died while writing the staged manifest itself; the old
        # generation is untouched and authoritative.
        _discard_staged(directory)
        return

    for name, digest in files.items():
        path = os.path.join(directory, name)
        if _file_digest(path) == digest:
            continue
        if _file_digest(path + ".new") == digest:
            continue
        # A staged file is missing or mangled: the new generation cannot
        # be completed, keep the old one.
        _discard_staged(directory)
        return

    # Complete the interrupted commit.
    for name, digest in files.items():
        path = os.path.join(directory, name)
        if _file_digest(path) != digest:
            os.replace(path + ".new", path)
        else:
            _remove_quietly(path + ".new")
    os.replace(staged_manifest, os.path.join(directory, _MANIFEST))
    _fsync_directory(directory)


def _discard_staged(directory: str) -> None:
    for name in (*_DATA_FILES, _MANIFEST):
        _remove_quietly(os.path.join(directory, name + ".new"))


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def _verify_manifest(directory: str) -> None:
    """Check every file against the manifest; raise StorageError if bad."""
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        # Pre-hardening hosting (no manifest): nothing to verify against.
        return
    manifest = _read_json(manifest_path)
    try:
        files = dict(manifest["files"])
    except (KeyError, TypeError) as exc:
        raise StorageError(manifest_path, "malformed manifest") from exc
    for name, digest in files.items():
        path = os.path.join(directory, name)
        actual = _file_digest(path)
        if actual is None:
            raise StorageError(path, "file listed in manifest is missing")
        if actual != digest:
            raise StorageError(
                path, "checksum mismatch (corrupted or tampered file)"
            )


def _read_text(path: str) -> str:
    try:
        with open(path, "rb") as f:
            return f.read().decode("utf-8")
    except FileNotFoundError as exc:
        raise StorageError(path, "missing file") from exc
    except OSError as exc:
        raise StorageError(path, f"unreadable file ({exc})") from exc
    except UnicodeDecodeError as exc:
        raise StorageError(path, "file is not valid UTF-8") from exc


def _read_json(path: str) -> dict:
    text = _read_text(path)
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(path, f"invalid JSON ({exc})") from exc
    if not isinstance(decoded, dict):
        raise StorageError(path, "expected a JSON object")
    return decoded


def _check_version(meta: dict, path: str) -> None:
    if meta.get("version") != _FORMAT_VERSION:
        raise StorageError(
            path,
            f"unsupported format version {meta.get('version')!r} "
            f"(expected {_FORMAT_VERSION})",
        )


def index_from_records(
    records: list[dict],
    block_table: dict,
    node_for,
) -> StructuralIndex:
    """Materialize the object-row structural index from persisted records.

    ``records`` is the ``server_meta.json`` ``"dsi"`` list; ``node_for``
    maps a hosted node id to its parsed tree node.  This is the eager
    half of the boot path — the columnar backend skips it entirely by
    mmapping the plane arrays instead — kept as a public function so the
    scaling benchmark can time the two index-preparation paths
    head-to-head on identical inputs.
    """
    entries: list[IndexEntry] = []
    for record in records:
        entry = IndexEntry(
            key=record["key"],
            interval=Interval(record["low"], record["high"]),
            member_ids=tuple(record["members"]),
            block_id=record["block"],
            plaintext_value=record["value"],
            hosted_node=(
                node_for(record["hosted_id"])
                if record["hosted_id"] is not None
                else None
            ),
        )
        entries.append(entry)
    for record, entry in zip(records, entries):
        if record["parent"] is not None:
            parent = entries[record["parent"]]
            entry.parent = parent
            parent.children.append(entry)
    table: dict[str, list[IndexEntry]] = {}
    for entry in entries:
        table.setdefault(entry.key, []).append(entry)
    return StructuralIndex(
        table=table,
        block_table={
            int(block_id): Interval(low, high)
            for block_id, (low, high) in block_table.items()
        },
        entries=sorted(entries, key=lambda e: e.interval.low),
    )


def load_system(
    directory: str,
    master_key: bytes,
    channel: Channel | None = None,
    fast_path: bool = True,
    retry_policy: RetryPolicy | None = None,
    backend: "str | None" = None,
) -> SecureXMLSystem:
    """Rebuild a working system from a saved hosting and the master key.

    Runs crash recovery first, then refuses to proceed when any file
    fails its manifest digest or does not parse — raising
    :class:`StorageError` naming the offending file rather than ever
    standing up a system over corrupt state.

    ``backend`` selects the server's join representation (``None`` reads
    ``REPRO_BACKEND``).  On the columnar backend a hosting saved with a
    column store boots *lazily*: the plane arrays are mmapped from
    ``columns.bin`` and the DSI entry objects are never materialized
    unless something needs them (incremental updates hydrate on first
    touch).  A legacy save without column files loads the object index
    and the server builds planes from it on first query.
    """
    _recover(directory)
    _verify_manifest(directory)
    keyring = ClientKeyring(master_key, fast_aes=fast_path)

    hosted_path = os.path.join(directory, "hosted.xml")
    try:
        hosted_root: Node = parse_fragment(_read_text(hosted_path))
    except StorageError:
        raise
    except (ValueError, KeyError) as exc:
        raise StorageError(hosted_path, f"unparseable hosted tree ({exc})") from exc
    if (
        isinstance(hosted_root, Element)
        and hosted_root.tag == ENCRYPTED_DATA_TAG
        and hosted_root.attribute("block-id") is not None
    ):
        try:
            hosted_root = EncryptedBlockNode(
                int(hosted_root.attribute("block-id").value),
                bytes.fromhex(hosted_root.text_value() or ""),
            )
        except ValueError as exc:
            raise StorageError(
                hosted_path, f"unparseable root block ({exc})"
            ) from exc
    _renumber_hosted(hosted_root)
    nodes_by_id: dict[int, Node] = {}
    for node in hosted_root.iter():
        nodes_by_id[node.node_id] = node
        if isinstance(node, Element):
            for attribute in node.attributes:
                nodes_by_id[attribute.node_id] = attribute
    placeholders = {
        node.block_id: node
        for node in hosted_root.iter()
        if isinstance(node, EncryptedBlockNode)
    }
    blocks = {block_id: node.payload for block_id, node in placeholders.items()}

    meta_path = os.path.join(directory, "server_meta.json")
    server_meta = _read_json(meta_path)
    _check_version(server_meta, meta_path)

    resolved_backend = resolve_backend(backend)
    columns_manifest_path = os.path.join(directory, COLUMNS_MANIFEST)
    lazy_columns = resolved_backend == "columnar" and os.path.exists(
        columns_manifest_path
    )

    try:
        if lazy_columns:
            # Columnar boot: mmap the plane arrays and defer the object
            # rows entirely — the join, placement and hosted-node-lows
            # paths all run plane-native, so the hosting answers queries
            # in O(1) index heap.
            try:
                planes = load_columns(directory)
            except ColstoreError as exc:
                raise StorageError(
                    columns_manifest_path,
                    f"unreadable column store ({exc})",
                ) from exc
            except OSError as exc:
                raise StorageError(
                    os.path.join(directory, COLUMNS_PLANES),
                    f"unreadable column store ({exc})",
                ) from exc
            # The records stay unmaterialized, but the metadata schema is
            # still validated: a hosting whose column store disagrees
            # with (or lost) its record list is damaged for *some* boot
            # path and must be rejected now, not on the next object boot.
            if len(server_meta["dsi"]) != planes.entry_count:
                raise StorageError(
                    columns_manifest_path,
                    f"column store holds {planes.entry_count} entries "
                    f"but server metadata lists {len(server_meta['dsi'])}",
                )
            structural_index: StructuralIndex = LazyStructuralIndex(
                planes, nodes_by_id.get
            )
            index_entry_count = planes.entry_count
        else:
            structural_index = index_from_records(
                server_meta["dsi"],
                server_meta["block_table"],
                nodes_by_id.get,
            )
            index_entry_count = len(structural_index.entries)

        value_index = ValueIndex()
        for token, flat_entries in server_meta["value_index"].items():
            tree = BTree(min_degree=16)
            for key, block in flat_entries:
                tree.insert(key, block)
            value_index.trees[token] = tree
    except StorageError:
        raise
    except (KeyError, TypeError, IndexError, ValueError) as exc:
        raise StorageError(
            meta_path, f"malformed server metadata ({exc!r})"
        ) from exc

    state_path = os.path.join(directory, "client_state.json")
    client_state = _read_json(state_path)
    _check_version(client_state, state_path)

    try:
        occurrences = {
            field: [(value, block) for value, block in occurrence_list]
            for field, occurrence_list in client_state["occurrences"].items()
        }
        block_tags = {
            int(block_id): bytes.fromhex(tag_hex)
            for block_id, tag_hex in client_state.get("block_tags", {}).items()
        }
        field_plans = {}
        field_tokens = {}
        for field, occurrence_list in sorted(occurrences.items()):
            histogram = Counter(value for value, _ in occurrence_list)
            if not histogram:
                continue
            field_plans[field] = build_field_plan(
                field, histogram, keyring.opess_stream(field), keyring.ope
            )
            field_tokens[field] = keyring.tag_cipher.encrypt_tag(field)

        hosted = HostedDatabase(
            hosted_root=hosted_root,
            structural_index=structural_index,
            value_index=value_index,
            blocks=blocks,
            placeholders=placeholders,
            root_tag=client_state["root_tag"],
            encrypted_tags=set(client_state["encrypted_tags"]),
            plaintext_keys=set(client_state["plaintext_keys"]),
            field_plans=field_plans,
            field_tokens=field_tokens,
            block_tags=block_tags,
            decoy_count=client_state["decoy_count"],
            secure=client_state["secure"],
            occurrences=occurrences,
            epoch=int(client_state.get("epoch", 0)),
        )
        scheme = EncryptionScheme(
            kind=client_state["scheme_kind"],
            block_root_ids=frozenset(),
            covered_fields=frozenset(client_state["covered_fields"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            state_path, f"malformed client state ({exc!r})"
        ) from exc
    # Freshness anchor check: the persisted Merkle root must match the
    # root recomputed over the loaded block tags.  A mismatch means the
    # attested state and the stored tags diverged (partial restore,
    # tag-level tampering below the manifest, or a regressed epoch
    # pairing) — refuse to boot rather than silently re-anchor.
    persisted_root = client_state.get("state_root")
    if persisted_root is not None:
        recomputed = hosted.state_root().hex()
        if recomputed != persisted_root:
            raise StorageError(
                state_path,
                "freshness root mismatch: persisted Merkle root "
                f"{persisted_root[:16]}… does not match the root "
                f"recomputed from the stored block tags "
                f"({recomputed[:16]}…)",
            )
    hosting_trace = HostingTrace(
        scheme_kind=scheme.kind,
        scheme_size_nodes=0,
        block_count=len(blocks),
        encrypt_s=0.0,
        hosted_bytes=hosted.hosted_size_bytes(),
        plaintext_bytes=0,
        decoy_count=hosted.decoy_count,
        index_entries=index_entry_count,
        value_index_entries=value_index.total_entries(),
    )
    return SecureXMLSystem(
        client=Client(keyring, hosted, enable_cache=fast_path),
        server=Server(
            hosted,
            enable_cache=fast_path,
            session_keys=keyring.session_keys(),
            backend=resolved_backend,
        ),
        hosted=hosted,
        scheme=scheme,
        channel=channel or Channel(),
        hosting_trace=hosting_trace,
        keyring=keyring,
        fast_path=fast_path,
        retry_policy=retry_policy,
    )
