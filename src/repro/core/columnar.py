"""Columnar DSI backend: flat plane arrays + vectorized structural joins.

The object-walk matcher in :mod:`repro.core.structural_join` evaluates
axis predicates entry-by-entry over a dict-of-lists
:class:`~repro.core.dsi.StructuralIndex` — per-candidate Python lambdas,
per-entry attribute loads, a parent *pointer* chase per prune.  The DSI
index is interval geometry over a laminar family, so all of that is
natively columnar: this module re-encodes the index table and the
encryption-block table into flat, low-sorted plane arrays
(:class:`ColumnarPlanes`, stdlib ``array``/``memoryview``) and
re-implements the join's axis predicates as galloping-bisect/merge
sweeps over those planes.

Byte-identity contract
----------------------
``match_pattern_columnar`` produces the *same* match sets, in the *same*
order, with the same per-node candidate counts as
:func:`~repro.core.structural_join.match_pattern` — the backend knob
changes the representation the join runs over, never the answer bytes
(asserted workload-by-workload in ``tests/test_columnar_backend.py``).
The correspondences:

* candidate lists — the per-tag plane stores each tag's entry ids sorted
  by interval low bound, exactly the per-key lists of the object table;
* *descendant* — ``bisect_right`` over the sorted low plane, galloped
  forward along the (low-sorted) candidate run instead of restarted per
  candidate;
* *child* / *attribute* — the precomputed parent pointers become a flat
  ``parents`` id plane; "any child in the match set" is evaluated as
  membership of the candidate in the match set's parent-image set, which
  is equivalent on a laminar family;
* top-down pruning — the object path's parent-chain walk, over the
  ``parents`` plane.

The planes are position-indexed: entry id == position in the global
(low, -high)-sorted order, which is exactly
``StructuralIndex.all_entries()`` order.  Persistence (mmap-backed
loads) lives in :mod:`repro.core.colstore`.
"""

from __future__ import annotations

import os
import threading
from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.core.dsi import IndexEntry, Interval, StructuralIndex
from repro.core.parallel import filter_shards, shard_spans
from repro.core.structural_join import MatchResult
from repro.core.translate import TranslatedNode, TranslatedQuery
from repro.perf import counters
from repro.xpath.evaluator import compare_values

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.opess import ValueIndex
    from repro.core.parallel import WorkerPool
    from repro.obs import Observability
    from repro.xmldb.node import Node

# ----------------------------------------------------------------------
# Backend knob (``backend=`` API / REPRO_BACKEND env / --backend CLI)
# ----------------------------------------------------------------------

#: Environment knob read by :func:`backend_from_env`.
BACKEND_ENV = "REPRO_BACKEND"

#: The two join-engine representations a server can run over.
BACKENDS = ("object", "columnar")

DEFAULT_BACKEND = "object"


def backend_from_env() -> str:
    """Read ``REPRO_BACKEND`` (unset → the object-walk default)."""
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not raw:
        return DEFAULT_BACKEND
    if raw not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV} must be one of {BACKENDS}, got {raw!r}"
        )
    return raw


def resolve_backend(backend: Any) -> str:
    """Normalize the ``backend=`` argument accepted across the stack.

    ``None`` defers to the environment; a string names the backend
    (case-insensitive).  Mirrors the coercion convention of
    :meth:`~repro.core.parallel.ParallelConfig.coerce` and
    :meth:`~repro.cluster.placement.ClusterConfig.coerce`.
    """
    if backend is None:
        return backend_from_env()
    if isinstance(backend, str):
        name = backend.strip().lower()
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return name
    raise TypeError(
        f"backend must be None or one of {BACKENDS}, "
        f"got {type(backend).__name__}"
    )


# ----------------------------------------------------------------------
# The planes
# ----------------------------------------------------------------------

_NO_ID = -1


@dataclass
class ColumnarPlanes:
    """The DSI index + block table as flat, position-indexed arrays.

    Entry id == position in the global low-sorted entry order.  Every
    plane is either a stdlib ``array`` (in-heap builds) or a
    ``memoryview`` cast over an ``mmap`` (zero-copy loads, see
    :mod:`repro.core.colstore`) — both support indexing, slicing and
    ``bisect``, so the sweep kernels never care which they got.
    """

    # --- global-order planes (one element per entry) ---
    lows: Any
    highs: Any
    key_ids: Any  # index into :attr:`keys`
    block_ids: Any  # -1 = plaintext entry
    parents: Any  # entry id of the immediate parent, -1 = root
    hosted_ids: Any  # hosted node id, -1 = none attached
    # --- ragged member-id plane (offsets length n+1) ---
    member_offsets: Any
    member_ids: Any
    # --- ragged plaintext-value plane (flag distinguishes None from "") ---
    value_flags: Any
    value_offsets: Any
    value_blob: Any
    # --- per-tag plane: entry ids grouped by key, each run low-sorted ---
    tag_entry_ids: Any
    tag_lows: Any  # aligned with tag_entry_ids
    #: key → (start, stop) slice into the tag plane (the slice-offset
    #: memo the epoch invalidation must drop wholesale with the planes)
    tag_slices: dict[str, tuple[int, int]]
    keys: tuple[str, ...]
    # --- encryption block table ---
    block_table_ids: Any
    block_table_lows: Any
    block_table_highs: Any
    #: The mmap (or buffer) backing the views; ``None`` for in-heap
    #: builds.  Held so the mapping outlives every view into it.
    source: Any = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: StructuralIndex) -> "ColumnarPlanes":
        """Re-encode a built object index (entry order is preserved)."""
        entries = index.all_entries()
        position = {id(entry): pos for pos, entry in enumerate(entries)}
        keys = tuple(index.table.keys())
        key_pos = {key: pos for pos, key in enumerate(keys)}

        lows = array("d")
        highs = array("d")
        key_ids = array("q")
        block_ids = array("q")
        parents = array("q")
        hosted_ids = array("q")
        member_offsets = array("q", [0])
        member_ids = array("q")
        value_flags = array("b")
        value_offsets = array("q", [0])
        value_parts: list[bytes] = []
        for entry in entries:
            lows.append(entry.interval.low)
            highs.append(entry.interval.high)
            key_ids.append(key_pos[entry.key])
            block_ids.append(
                _NO_ID if entry.block_id is None else entry.block_id
            )
            parent = entry.parent
            parents.append(
                _NO_ID if parent is None else position[id(parent)]
            )
            hosted_ids.append(
                _NO_ID
                if entry.hosted_node is None
                else entry.hosted_node.node_id
            )
            member_ids.extend(entry.member_ids)
            member_offsets.append(len(member_ids))
            value = entry.plaintext_value
            value_flags.append(0 if value is None else 1)
            if value:
                value_parts.append(value.encode("utf-8"))
            value_offsets.append(
                value_offsets[-1] + (len(value_parts[-1]) if value else 0)
            )

        tag_entry_ids = array("q")
        tag_lows = array("d")
        tag_slices: dict[str, tuple[int, int]] = {}
        for key in keys:
            start = len(tag_entry_ids)
            for entry in index.table[key]:
                tag_entry_ids.append(position[id(entry)])
                tag_lows.append(entry.interval.low)
            tag_slices[key] = (start, len(tag_entry_ids))

        block_table_ids = array("q")
        block_table_lows = array("d")
        block_table_highs = array("d")
        for block_id, interval in index.block_table.items():
            block_table_ids.append(block_id)
            block_table_lows.append(interval.low)
            block_table_highs.append(interval.high)

        counters.add("columnar_plane_builds")
        return cls(
            lows=lows,
            highs=highs,
            key_ids=key_ids,
            block_ids=block_ids,
            parents=parents,
            hosted_ids=hosted_ids,
            member_offsets=member_offsets,
            member_ids=member_ids,
            value_flags=value_flags,
            value_offsets=value_offsets,
            value_blob=b"".join(value_parts),
            tag_entry_ids=tag_entry_ids,
            tag_lows=tag_lows,
            tag_slices=tag_slices,
            keys=keys,
            block_table_ids=block_table_ids,
            block_table_lows=block_table_lows,
            block_table_highs=block_table_highs,
        )

    @classmethod
    def from_records(
        cls,
        records: Iterable[dict],
        block_table: "dict[int, tuple[float, float]] | None" = None,
    ) -> "ColumnarPlanes":
        """Bulk-load planes straight from persisted DSI records.

        ``records`` is the ``server_meta.json`` ``"dsi"`` schema (``key``
        / ``low`` / ``high`` / ``members`` / ``block`` / ``parent`` /
        ``value`` / ``hosted_id``), already in global low-sorted order
        with ``parent`` as an index into that order — so the planes are
        filled in one streaming pass and no :class:`IndexEntry` list is
        ever materialized.  This is the O(1)-garbage ingest path the
        storage layer and the scaling benchmark use.
        """
        lows = array("d")
        highs = array("d")
        key_ids = array("q")
        block_ids = array("q")
        parents = array("q")
        hosted_ids = array("q")
        member_offsets = array("q", [0])
        member_ids = array("q")
        value_flags = array("b")
        value_offsets = array("q", [0])
        value_parts: list[bytes] = []
        keys: list[str] = []
        key_pos: dict[str, int] = {}
        # Per-key positions accumulate in arrival order, which is already
        # sorted by low — identical to the object table's per-key lists.
        per_key: dict[str, array] = {}

        for pos, record in enumerate(records):
            key = record["key"]
            key_id = key_pos.get(key)
            if key_id is None:
                key_id = len(keys)
                key_pos[key] = key_id
                keys.append(key)
                per_key[key] = array("q")
            lows.append(record["low"])
            highs.append(record["high"])
            key_ids.append(key_id)
            block = record["block"]
            block_ids.append(_NO_ID if block is None else block)
            parent = record["parent"]
            parents.append(_NO_ID if parent is None else parent)
            hosted = record["hosted_id"]
            hosted_ids.append(_NO_ID if hosted is None else hosted)
            member_ids.extend(record["members"])
            member_offsets.append(len(member_ids))
            value = record["value"]
            value_flags.append(0 if value is None else 1)
            if value:
                value_parts.append(value.encode("utf-8"))
            value_offsets.append(
                value_offsets[-1] + (len(value_parts[-1]) if value else 0)
            )
            per_key[key].append(pos)

        tag_entry_ids = array("q")
        tag_lows = array("d")
        tag_slices: dict[str, tuple[int, int]] = {}
        for key in keys:
            start = len(tag_entry_ids)
            for pos in per_key[key]:
                tag_entry_ids.append(pos)
                tag_lows.append(lows[pos])
            tag_slices[key] = (start, len(tag_entry_ids))

        block_table_ids = array("q")
        block_table_lows = array("d")
        block_table_highs = array("d")
        for block_id, (low, high) in (block_table or {}).items():
            block_table_ids.append(int(block_id))
            block_table_lows.append(low)
            block_table_highs.append(high)

        counters.add("columnar_plane_builds")
        return cls(
            lows=lows,
            highs=highs,
            key_ids=key_ids,
            block_ids=block_ids,
            parents=parents,
            hosted_ids=hosted_ids,
            member_offsets=member_offsets,
            member_ids=member_ids,
            value_flags=value_flags,
            value_offsets=value_offsets,
            value_blob=b"".join(value_parts),
            tag_entry_ids=tag_entry_ids,
            tag_lows=tag_lows,
            tag_slices=tag_slices,
            keys=tuple(keys),
            block_table_ids=block_table_ids,
            block_table_lows=block_table_lows,
            block_table_highs=block_table_highs,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self.lows)

    def key_of(self, entry_id: int) -> str:
        return self.keys[self.key_ids[entry_id]]

    def block_of(self, entry_id: int) -> Optional[int]:
        block = self.block_ids[entry_id]
        return None if block == _NO_ID else int(block)

    def members_of(self, entry_id: int) -> tuple[int, ...]:
        start = self.member_offsets[entry_id]
        stop = self.member_offsets[entry_id + 1]
        # array/memoryview slices tuple-ify at C speed and yield ints.
        return tuple(self.member_ids[start:stop])

    def value_of(self, entry_id: int) -> Optional[str]:
        if not self.value_flags[entry_id]:
            return None
        start = self.value_offsets[entry_id]
        stop = self.value_offsets[entry_id + 1]
        return bytes(self.value_blob[start:stop]).decode("utf-8")

    def tag_slice(self, key: str) -> "tuple[Any, Any]":
        """(entry ids, aligned lows) registered under one tag key."""
        span = self.tag_slices.get(key)
        if span is None:
            return (), ()
        start, stop = span
        return self.tag_entry_ids[start:stop], self.tag_lows[start:stop]

    def block_table_dict(self) -> dict[int, Interval]:
        return {
            int(block_id): Interval(low, high)
            for block_id, low, high in zip(
                self.block_table_ids,
                self.block_table_lows,
                self.block_table_highs,
            )
        }

    # ------------------------------------------------------------------
    # Plane-native geometry (cluster placement reads these)
    # ------------------------------------------------------------------
    def group_cutpoints(self, group_count: int) -> list[float]:
        """Interval-group cutpoints straight off the low plane.

        Same contiguous-span construction as
        :meth:`~repro.core.dsi.StructuralIndex.group_cutpoints`; the
        planes are in the identical order, so the values agree exactly —
        asserted by the cluster byte-identity sweep.
        """
        if group_count < 1:
            raise ValueError(f"group_count must be >= 1, got {group_count}")
        total = self.entry_count
        group_count = min(group_count, total) or 1
        base, extra = divmod(total, group_count)
        cutpoints: list[float] = []
        start = 0
        for group in range(group_count):
            cutpoints.append(
                float("-inf") if group == 0 else self.lows[start]
            )
            start += base + (1 if group < extra else 0)
        return cutpoints

    def hosted_node_lows(self) -> dict[int, float]:
        """Hosted node id → owning low bound, off the planes."""
        return {
            int(hosted): low
            for hosted, low in zip(self.hosted_ids, self.lows)
            if hosted != _NO_ID
        }

    # ------------------------------------------------------------------
    # Hydration: planes → object index rows (the update path)
    # ------------------------------------------------------------------
    def hydrate_entries(
        self, node_for: "Callable[[int], Node | None]"
    ) -> "tuple[list[IndexEntry], dict[str, list[IndexEntry]]]":
        """Materialize the full :class:`IndexEntry` forest from the planes.

        Inverse of :meth:`from_index`: same entry order, same per-key
        list order, parent/children links rewired.  Used by
        :class:`LazyStructuralIndex` the first time something needs the
        object rows (incremental updates, object-path joins).
        """
        entries: list[IndexEntry] = []
        for pos in range(self.entry_count):
            hosted = self.hosted_ids[pos]
            entries.append(
                IndexEntry(
                    key=self.key_of(pos),
                    interval=Interval(self.lows[pos], self.highs[pos]),
                    member_ids=self.members_of(pos),
                    block_id=self.block_of(pos),
                    plaintext_value=self.value_of(pos),
                    hosted_node=(
                        node_for(int(hosted)) if hosted != _NO_ID else None
                    ),
                )
            )
        for pos, entry in enumerate(entries):
            parent = self.parents[pos]
            if parent != _NO_ID:
                entry.parent = entries[parent]
                entries[parent].children.append(entry)
        table: dict[str, list[IndexEntry]] = {}
        for key, (start, stop) in self.tag_slices.items():
            table[key] = [
                entries[self.tag_entry_ids[i]] for i in range(start, stop)
            ]
        return entries, table


# ----------------------------------------------------------------------
# Galloping sweep kernels
# ----------------------------------------------------------------------


def _gallop_right(lows: Any, target: float, start: int) -> int:
    """First index ``>= start`` with ``lows[index] > target``.

    Exponential (galloping) probe to bound the answer, then a C-coded
    ``bisect_right`` inside the bound.  Correct whenever the true
    insertion point is ``>= start`` — guaranteed along a low-sorted
    candidate run, which is how the sweep calls it.
    """
    total = len(lows)
    if start >= total or lows[start] > target:
        return start
    step = 1
    hi = start + 1
    while hi < total and lows[hi] <= target:
        step <<= 1
        hi = start + step
    return bisect_right(lows, target, start + 1, min(hi, total))


def sweep_descendant(
    candidate_ids: "Iterable[int]",
    lows: Any,
    highs: Any,
    match_lows: Any,
) -> list[int]:
    """Keep candidates with a match low strictly inside their interval.

    One merge pass: the candidate run is low-sorted per tag segment, so
    the probe position only moves forward (galloping) within a segment
    and resets when a new segment's lows restart.  Equivalent to the
    object path's per-candidate ``bisect_right`` probe, minus the
    re-search from zero.
    """
    kept: list[int] = []
    total = len(match_lows)
    if not total:
        return kept
    probe = 0
    previous = float("-inf")
    for entry_id in candidate_ids:
        low = lows[entry_id]
        if low < previous:
            probe = 0  # new per-tag segment: candidate lows restarted
        previous = low
        probe = _gallop_right(match_lows, low, probe)
        if probe < total and match_lows[probe] < highs[entry_id]:
            kept.append(entry_id)
    return kept


def _low_inside(sorted_lows: Any, low: float, high: float) -> bool:
    """Any match low strictly inside (low, high)?  Laminar shortcut."""
    left = bisect_right(sorted_lows, low)
    return left < len(sorted_lows) and sorted_lows[left] < high


def sweep_following(
    candidate_ids: "Iterable[int]",
    lows: Any,
    highs: Any,
    threshold: float,
) -> list[int]:
    """Keep candidates whose high bound exceeds ``threshold``.

    The relaxed *following* test of the axis engine
    (:func:`repro.xpath.axes.can_follow`) over the planes.  Candidate
    runs are low-sorted per tag segment, so once a segment's lows cross
    the threshold every remaining member bulk-passes (``high > low >
    threshold``) without touching the highs plane — the sibling of
    :func:`sweep_descendant`'s forward-only galloping probe.
    """
    kept: list[int] = []
    append = kept.append
    previous = float("-inf")
    bulk = False
    for entry_id in candidate_ids:
        low = lows[entry_id]
        if low < previous:
            bulk = False  # new per-tag segment: candidate lows restarted
        previous = low
        if bulk or low > threshold:
            bulk = True
            append(entry_id)
        elif highs[entry_id] > threshold:
            append(entry_id)
    return kept


def sweep_preceding(
    candidate_ids: "Iterable[int]",
    lows: Any,
    threshold: float,
) -> list[int]:
    """Keep candidates whose low bound undercuts ``threshold``.

    The relaxed *preceding* test
    (:func:`repro.xpath.axes.can_precede`); the low plane alone decides
    it, so this is a single vectorized comparison pass.
    """
    return [
        entry_id
        for entry_id in candidate_ids
        if lows[entry_id] < threshold
    ]


def sweep_siblings(
    candidate_ids: "Iterable[int]",
    lows: Any,
    highs: Any,
    parents: Any,
    bounds_by_parent: "dict[int, tuple[float, float]]",
    following: bool,
) -> list[int]:
    """Sibling-axis sweep: the order test scoped per parent id.

    ``bounds_by_parent`` maps a parent entry id to the anchor set's
    ``(min low, max high)`` among its children; candidates whose parent
    has no anchor sibling drop immediately.
    """
    kept: list[int] = []
    append = kept.append
    get = bounds_by_parent.get
    for entry_id in candidate_ids:
        bounds = get(int(parents[entry_id]))
        if bounds is None:
            continue
        if following:
            if highs[entry_id] > bounds[0]:
                append(entry_id)
        elif lows[entry_id] < bounds[1]:
            append(entry_id)
    return kept


# ----------------------------------------------------------------------
# The columnar twig matcher
# ----------------------------------------------------------------------


def match_pattern_columnar(
    query: TranslatedQuery,
    planes: ColumnarPlanes,
    values: "ValueIndex",
    node_for: "Callable[[int], Node | None]",
    pool: "WorkerPool | None" = None,
    min_shard: int = 64,
    obs: "Observability | None" = None,
) -> MatchResult:
    """Run the structural join over the planes; byte-identical results.

    ``node_for`` resolves hosted node ids to live hosted-tree nodes for
    the surviving output/ship entries (the only place the columnar join
    touches objects).  ``pool``/``min_shard`` shard the per-candidate
    filters exactly like the object path's sharded evaluation.  ``obs``
    wraps the whole match in a ``join_sweep`` span.
    """
    counters.add("columnar_join_sweeps")
    if obs is not None and obs.enabled:
        with obs.tracer.span("join_sweep", entries=planes.entry_count):
            matcher = _ColumnarMatcher(
                planes, values, node_for, pool=pool, min_shard=min_shard
            )
            return matcher.run(query)
    matcher = _ColumnarMatcher(
        planes, values, node_for, pool=pool, min_shard=min_shard
    )
    return matcher.run(query)


class ColumnarEntry:
    """A surviving entry, rebuilt just enough for fragment assembly.

    Quacks like :class:`~repro.core.dsi.IndexEntry` for everything the
    server's fragment-root selection reads.  Only ``block_id`` and
    ``hosted_node`` are on the response hot path, so those two are
    eager; ``key`` / ``interval`` / ``member_ids`` /
    ``plaintext_value`` are read back off the planes on demand, which
    keeps materializing a thousand survivors to one small allocation
    apiece.
    """

    __slots__ = (
        "_planes",
        "_entry_id",
        "block_id",
        "hosted_node",
        "parent",
        "children",
    )

    def __init__(
        self,
        planes: ColumnarPlanes,
        entry_id: int,
        block_id: Optional[int],
        hosted_node: "Node | None",
    ) -> None:
        self._planes = planes
        self._entry_id = entry_id
        self.block_id = block_id
        self.hosted_node = hosted_node
        self.parent = None
        self.children: list = []

    @property
    def key(self) -> str:
        return self._planes.key_of(self._entry_id)

    @property
    def interval(self) -> Interval:
        return Interval(
            self._planes.lows[self._entry_id],
            self._planes.highs[self._entry_id],
        )

    @property
    def member_ids(self) -> tuple[int, ...]:
        return self._planes.members_of(self._entry_id)

    @property
    def plaintext_value(self) -> Optional[str]:
        return self._planes.value_of(self._entry_id)


class _ColumnarMatcher:
    """Bottom-up match + top-down prune over entry-id planes.

    Mirrors :class:`repro.core.structural_join._Matcher` stage for
    stage; every candidate list here is a list of entry ids (positions
    into the planes) instead of entry objects.
    """

    def __init__(
        self,
        planes: ColumnarPlanes,
        values: "ValueIndex",
        node_for: "Callable[[int], Node | None]",
        pool: "WorkerPool | None" = None,
        min_shard: int = 64,
    ) -> None:
        self._planes = planes
        self._values = values
        self._node_for = node_for
        self._pool = pool
        self._min_shard = min_shard
        self._match_sets: dict[int, list[int]] = {}
        self._counts: dict[str, int] = {}

    def _filter(self, entry_ids: list[int], predicate) -> list[int]:
        """Order-preserving (sharded when pooled) filter step."""
        return filter_shards(
            self._pool, entry_ids, predicate, self._min_shard
        )

    # ------------------------------------------------------------------
    # Bottom-up phase
    # ------------------------------------------------------------------
    def run(self, query: TranslatedQuery) -> MatchResult:
        planes = self._planes
        root_matches = self._match_subtree(query.root)
        axis = query.root.axis
        if axis == "root-child":
            root_matches = [
                entry_id
                for entry_id in root_matches
                if planes.parents[entry_id] == _NO_ID
            ]
        elif axis != "root-descendant":
            raise ValueError(
                f"pattern root must use a root axis, got {axis!r}"
            )

        survivors: dict[int, set[int]] = {id(query.root): set(root_matches)}
        ordered: dict[int, list[int]] = {id(query.root): root_matches}
        self._prune_down(query.root, root_matches, survivors, ordered)

        ship_ids: list[int] = []
        shipped: set[int] = set()
        for ship_node in query.ship_nodes:
            for entry_id in ordered.get(id(ship_node), []):
                if entry_id not in shipped:
                    shipped.add(entry_id)
                    ship_ids.append(entry_id)

        return MatchResult(
            output_entries=self._materialize(
                ordered.get(id(query.output), [])
            ),
            ship_entries=self._materialize(ship_ids),
            candidate_counts=dict(self._counts),
        )

    def _match_subtree(self, node: TranslatedNode) -> list[int]:
        cached = self._match_sets.get(id(node))
        if cached is not None:
            return cached

        candidates = self._candidates(node)
        self._counts[_label(node)] = len(candidates)

        for child in node.children:
            child_matches = self._match_subtree(child)
            if node.position_sensitive:
                # Mirror of the object matcher: positional nodes keep
                # their complete candidate list for the client's [n].
                continue
            if not child_matches:
                candidates = []
                break
            candidates = self._filter_by_child(
                candidates, child, child_matches
            )
            if not candidates:
                break

        self._match_sets[id(node)] = candidates
        return candidates

    def _candidates(self, node: TranslatedNode) -> list[int]:
        planes = self._planes
        if node.is_wildcard:
            entry_ids = list(range(planes.entry_count))
        else:
            entry_ids = []
            for key in node.keys:
                ids, _ = planes.tag_slice(key)
                entry_ids.extend(ids)
        if not node.has_value_constraint:
            return entry_ids
        blocks: "set[int] | None" = None
        if node.value_ranges is not None and node.value_field_token is not None:
            blocks = self._values.lookup_blocks(
                node.value_field_token, node.value_ranges
            )
        return self._filter(
            entry_ids,
            lambda entry_id: self._value_ok(node, entry_id, blocks),
        )

    def _value_ok(
        self,
        node: TranslatedNode,
        entry_id: int,
        blocks: "set[int] | None",
    ) -> bool:
        planes = self._planes
        if planes.block_ids[entry_id] != _NO_ID:
            if node.value_ranges is None:
                # Sound superset: an encrypted entry cannot be checked
                # against a plaintext-only predicate server-side.
                return True
            assert blocks is not None
            return int(planes.block_ids[entry_id]) in blocks
        if node.plaintext_predicate is not None:
            value = planes.value_of(entry_id)
            if value is None:
                return False
            op, literal = node.plaintext_predicate
            return compare_values(value, op, literal)
        return False

    def _filter_by_child(
        self,
        candidates: list[int],
        child: TranslatedNode,
        child_matches: list[int],
    ) -> list[int]:
        axis = child.axis
        planes = self._planes
        if axis in ("child", "attribute"):
            # "some child of mine is in the match set" ⇔ "I am some
            # match's parent": one parent-plane image set instead of a
            # per-candidate children scan.
            parent_image = {
                int(planes.parents[match]) for match in child_matches
            }
            parent_image.discard(_NO_ID)
            return self._filter(
                candidates, parent_image.__contains__
            )
        if axis in ("descendant", "attribute-descendant"):
            match_lows = self._descendant_lows(child, child_matches)
            return self._sweep(candidates, match_lows)
        # Axis-engine edges (inverse tests; mirrors the object matcher).
        if axis == "self":
            match_set = set(child_matches)
            return self._filter(candidates, match_set.__contains__)
        if axis == "descendant-or-self":
            match_set = set(child_matches)
            match_lows = self._descendant_lows(child, child_matches)
            lows = planes.lows
            highs = planes.highs
            return self._filter(
                candidates,
                lambda entry_id: entry_id in match_set
                or _low_inside(match_lows, lows[entry_id], highs[entry_id]),
            )
        if axis == "parent":
            match_set = set(child_matches)
            parents = planes.parents
            return self._filter(
                candidates,
                lambda entry_id: parents[entry_id] != _NO_ID
                and int(parents[entry_id]) in match_set,
            )
        if axis in ("ancestor", "ancestor-or-self"):
            match_set = set(child_matches)
            or_self = axis == "ancestor-or-self"
            return self._filter(
                candidates,
                lambda entry_id: (or_self and entry_id in match_set)
                or self._has_surviving_ancestor(entry_id, match_set),
            )
        if axis in ("following", "preceding"):
            bounds = self._order_bounds(child_matches)
            if bounds is None:
                return []
            min_low, max_high = bounds
            if axis == "following":
                # candidate must be able to precede some match
                return sweep_preceding(candidates, planes.lows, max_high)
            return sweep_following(
                candidates, planes.lows, planes.highs, min_low
            )
        if axis in ("following-sibling", "preceding-sibling"):
            bounds_by_parent = self._sibling_bounds(child_matches)
            return sweep_siblings(
                candidates,
                planes.lows,
                planes.highs,
                planes.parents,
                bounds_by_parent,
                following=axis == "preceding-sibling",
            )
        raise ValueError(f"unexpected pattern axis {axis!r}")

    def _descendant_lows(
        self, child: TranslatedNode, child_matches: list[int]
    ) -> Any:
        """Sorted match low bounds; the per-tag plane when it's exact."""
        if (
            not child.children
            and not child.has_value_constraint
            and len(child.keys) == 1
        ):
            _, tag_lows = self._planes.tag_slice(child.keys[0])
            return tag_lows
        lows = self._planes.lows
        return sorted(lows[match] for match in child_matches)

    def _sweep(self, candidates: list[int], match_lows: Any) -> list[int]:
        """Descendant-axis filter: sharded galloping sweep."""
        planes = self._planes
        pool = self._pool
        if (
            pool is None
            or pool.workers < 2
            or pool.backend != "thread"
            or len(candidates) < max(self._min_shard, 2)
        ):
            return sweep_descendant(
                candidates, planes.lows, planes.highs, match_lows
            )
        counters.add("sharded_filter_runs")
        spans = shard_spans(len(candidates), pool.workers)

        def run_shard(span: tuple[int, int]) -> list[int]:
            start, stop = span
            return sweep_descendant(
                candidates[start:stop],
                planes.lows,
                planes.highs,
                match_lows,
            )

        kept: list[int] = []
        for shard in pool.map_ordered(run_shard, spans):
            kept.extend(shard)
        return kept

    # ------------------------------------------------------------------
    # Top-down phase
    # ------------------------------------------------------------------
    def _prune_down(
        self,
        node: TranslatedNode,
        node_survivors: list[int],
        survivors: dict[int, set[int]],
        ordered: dict[int, list[int]],
    ) -> None:
        parent_ids = set(node_survivors)
        for child in node.children:
            child_matches = self._match_sets.get(id(child), [])
            surviving = self._prune_child(
                child, child_matches, node_survivors, parent_ids
            )
            survivors[id(child)] = set(surviving)
            ordered[id(child)] = surviving
            self._prune_down(child, surviving, survivors, ordered)

    def _prune_child(
        self,
        child: TranslatedNode,
        child_matches: list[int],
        node_survivors: list[int],
        parent_ids: set[int],
    ) -> list[int]:
        """Forward-axis prune; mirrors the object matcher's dispatch."""
        planes = self._planes
        axis = child.axis
        if axis in ("child", "attribute"):
            return self._filter(
                child_matches,
                lambda entry_id: planes.parents[entry_id] != _NO_ID
                and planes.parents[entry_id] in parent_ids,
            )
        if axis in ("descendant", "attribute-descendant"):
            return self._filter(
                child_matches,
                lambda entry_id: self._has_surviving_ancestor(
                    entry_id, parent_ids
                ),
            )
        if axis == "self":
            return self._filter(child_matches, parent_ids.__contains__)
        if axis == "descendant-or-self":
            return self._filter(
                child_matches,
                lambda entry_id: entry_id in parent_ids
                or self._has_surviving_ancestor(entry_id, parent_ids),
            )
        if axis == "parent":
            parents = planes.parents
            image = {
                int(parents[survivor])
                for survivor in node_survivors
            }
            image.discard(_NO_ID)
            return self._filter(child_matches, image.__contains__)
        if axis in ("ancestor", "ancestor-or-self"):
            lows = planes.lows
            highs = planes.highs
            survivor_lows = sorted(
                lows[survivor] for survivor in node_survivors
            )
            or_self = axis == "ancestor-or-self"
            return self._filter(
                child_matches,
                lambda entry_id: (or_self and entry_id in parent_ids)
                or _low_inside(
                    survivor_lows, lows[entry_id], highs[entry_id]
                ),
            )
        if axis in ("following", "preceding"):
            bounds = self._order_bounds(node_survivors)
            if bounds is None:
                return []
            min_low, max_high = bounds
            if axis == "following":
                return sweep_following(
                    child_matches, planes.lows, planes.highs, min_low
                )
            return sweep_preceding(child_matches, planes.lows, max_high)
        if axis in ("following-sibling", "preceding-sibling"):
            bounds_by_parent = self._sibling_bounds(node_survivors)
            return sweep_siblings(
                child_matches,
                planes.lows,
                planes.highs,
                planes.parents,
                bounds_by_parent,
                following=axis == "following-sibling",
            )
        raise ValueError(f"unexpected pattern axis {axis!r}")

    def _order_bounds(
        self, entry_ids: list[int]
    ) -> "tuple[float, float] | None":
        """(min low, max high) over an id set — the order thresholds."""
        if not entry_ids:
            return None
        lows = self._planes.lows
        highs = self._planes.highs
        return (
            min(lows[entry_id] for entry_id in entry_ids),
            max(highs[entry_id] for entry_id in entry_ids),
        )

    def _sibling_bounds(
        self, entry_ids: list[int]
    ) -> dict[int, tuple[float, float]]:
        """Per-parent (min low, max high) over an id set."""
        planes = self._planes
        lows = planes.lows
        highs = planes.highs
        parents = planes.parents
        bounds: dict[int, tuple[float, float]] = {}
        for entry_id in entry_ids:
            parent = int(parents[entry_id])
            low = lows[entry_id]
            high = highs[entry_id]
            current = bounds.get(parent)
            if current is None:
                bounds[parent] = (low, high)
            else:
                bounds[parent] = (
                    min(current[0], low), max(current[1], high)
                )
        return bounds

    def _has_surviving_ancestor(
        self, entry_id: int, ancestor_ids: set[int]
    ) -> bool:
        parents = self._planes.parents
        current = parents[entry_id]
        while current != _NO_ID:
            if current in ancestor_ids:
                return True
            current = parents[current]
        return False

    # ------------------------------------------------------------------
    # Survivor materialization
    # ------------------------------------------------------------------
    def _materialize(self, entry_ids: list[int]) -> list[ColumnarEntry]:
        # Hot path: survivors can number in the thousands, so plane
        # accesses are hoisted to locals and everything lazy stays lazy.
        planes = self._planes
        block_ids = planes.block_ids
        hosted_ids = planes.hosted_ids
        node_for = self._node_for
        entry = ColumnarEntry
        materialized: list[ColumnarEntry] = []
        append = materialized.append
        for entry_id in entry_ids:
            hosted = hosted_ids[entry_id]
            block = block_ids[entry_id]
            append(
                entry(
                    planes,
                    entry_id,
                    None if block == _NO_ID else block,
                    node_for(hosted) if hosted != _NO_ID else None,
                )
            )
        return materialized


def _label(node: TranslatedNode) -> str:
    return "|".join(node.keys) if node.keys else "*"


# ----------------------------------------------------------------------
# Lazy structural index: a server booted straight off mmap planes
# ----------------------------------------------------------------------


class LazyStructuralIndex(StructuralIndex):
    """A :class:`StructuralIndex` whose object rows hydrate on demand.

    Constructed by the storage layer around mmap-loaded planes: the
    columnar query path (joins, group cutpoints, hosted-node lows) runs
    entirely off the planes, so a server can boot from a hosted save and
    answer queries in O(1) index heap.  The first access to ``entries``
    or ``table`` — incremental updates, object-path joins, aggregate
    pushdown — hydrates the full :class:`IndexEntry` forest from the
    planes, after which the instance behaves exactly like an eagerly
    loaded index (mutations included: the attached planes are dropped on
    :meth:`invalidate_caches` and rebuilt from the hydrated rows).
    """

    def __init__(
        self,
        planes: ColumnarPlanes,
        node_for: "Callable[[int], Node | None]",
    ) -> None:
        # Deliberately skip the dataclass __init__: ``entries``/``table``
        # are hydration properties on this class, not stored fields.
        self._planes = planes
        self._node_for = node_for
        self._hydrated_entries: "list[IndexEntry] | None" = None
        self._hydrated_table: "dict[str, list[IndexEntry]] | None" = None
        self._block_table = planes.block_table_dict()
        self._lows_by_key = {}
        self._lows_lock = threading.Lock()
        self._hydrate_lock = threading.Lock()
        self._columnar = planes

    # ------------------------------------------------------------------
    # Hydration
    # ------------------------------------------------------------------
    @property
    def hydrated(self) -> bool:
        """Have the object rows been materialized yet?"""
        return self._hydrated_entries is not None

    def _hydrate(self) -> "tuple[list[IndexEntry], dict]":
        if self._hydrated_entries is None:
            with self._hydrate_lock:
                if self._hydrated_entries is None:
                    entries, table = self._planes.hydrate_entries(
                        self._node_for
                    )
                    self._hydrated_table = table
                    self._hydrated_entries = entries
        assert self._hydrated_table is not None
        return self._hydrated_entries, self._hydrated_table

    @property
    def entries(self) -> list[IndexEntry]:
        return self._hydrate()[0]

    @entries.setter
    def entries(self, value: list[IndexEntry]) -> None:
        self._hydrate()
        self._hydrated_entries = value

    @property
    def table(self) -> dict[str, list[IndexEntry]]:
        return self._hydrate()[1]

    @table.setter
    def table(self, value: dict[str, list[IndexEntry]]) -> None:
        self._hydrate()
        self._hydrated_table = value

    @property
    def block_table(self) -> dict[int, Interval]:
        return self._block_table

    @block_table.setter
    def block_table(self, value: dict[int, Interval]) -> None:
        self._block_table = value

    # ------------------------------------------------------------------
    # Plane-native fast paths (no hydration)
    # ------------------------------------------------------------------
    def columnar(self) -> ColumnarPlanes:
        # Invariant: mutations hydrate first, so while un-hydrated the
        # load-time planes are still exact — a cache drop just
        # re-attaches them instead of materializing the object forest.
        if self._hydrated_entries is None:
            with self._lows_lock:
                if self._columnar is None:
                    counters.add("columnar_cache_misses")
                    self._columnar = self._planes
                else:
                    counters.add("columnar_cache_hits")
                return self._columnar
        return super().columnar()

    def sorted_lows(self, key: str) -> list[float]:
        if self._hydrated_entries is not None:
            return super().sorted_lows(key)
        cached = self._lows_by_key.get(key)
        if cached is not None:
            counters.add("interval_cache_hits")
            return cached
        with self._lows_lock:
            cached = self._lows_by_key.get(key)
            if cached is not None:
                counters.add("interval_cache_hits")
                return cached
            counters.add("interval_cache_misses")
            _, tag_lows = self._planes.tag_slice(key)
            lows = list(tag_lows)
            self._lows_by_key[key] = lows
            return lows

    def group_cutpoints(self, group_count: int) -> list[float]:
        if self._hydrated_entries is not None:
            return super().group_cutpoints(group_count)
        return self._planes.group_cutpoints(group_count)

    def hosted_node_lows(self) -> dict[int, float]:
        if self._hydrated_entries is not None:
            return super().hosted_node_lows()
        return self._planes.hosted_node_lows()
