"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_workload, main


class TestBuildWorkload:
    def test_healthcare(self):
        document, constraints = build_workload("healthcare", 10, 1)
        assert document.root.tag == "hospital"
        assert len(constraints) == 4

    def test_xmark_scales(self):
        small, _ = build_workload("xmark", 5, 1)
        large, _ = build_workload("xmark", 20, 1)
        assert large.size() > small.size()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_workload("mystery", 10, 1)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_xpath(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_defaults(self):
        args = build_parser().parse_args(["host"])
        assert args.workload == "healthcare"
        assert args.scheme == "opt"


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "763895" in output and "276543" in output
        assert "t_decrypt" in output

    def test_host(self, capsys):
        assert main(["host", "--workload", "healthcare"]) == 0
        output = capsys.readouterr().out
        assert "blocks" in output and "hosted bytes" in output

    def test_query(self, capsys):
        assert main(
            ["query", "--workload", "healthcare",
             "//treat[disease='leukemia']/doctor"]
        ) == 0
        output = capsys.readouterr().out
        assert "<doctor>Brown</doctor>" in output

    def test_query_on_generated_workload(self, capsys):
        assert main(
            ["query", "--workload", "nasa", "--size", "5", "//publisher"]
        ) == 0
        assert "answers" in capsys.readouterr().out

    def test_attack(self, capsys):
        assert main(
            ["attack", "--workload", "healthcare"]
        ) == 0
        output = capsys.readouterr().out
        assert "strawman cracked" in output
        assert "OPESS cracked 0" in output

    def test_schemes(self, capsys):
        assert main(
            ["schemes", "--workload", "xmark", "--size", "10"]
        ) == 0
        output = capsys.readouterr().out
        for kind in ("top", "sub", "app", "opt"):
            assert kind in output

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        directory = str(tmp_path / "hosting")
        assert main(
            ["host", "--workload", "healthcare", "--save", directory]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--load", directory,
             "//treat[disease='leukemia']/doctor"]
        ) == 0
        assert "<doctor>Brown</doctor>" in capsys.readouterr().out

    def test_save_and_load_with_passphrase(self, capsys, tmp_path):
        directory = str(tmp_path / "hosting")
        assert main(
            ["host", "--workload", "healthcare", "--key", "s3cret",
             "--save", directory]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--load", directory, "--key", "s3cret", "//SSN"]
        ) == 0
        assert "763895" in capsys.readouterr().out

    def test_load_with_wrong_passphrase_sees_nothing(self, capsys, tmp_path):
        directory = str(tmp_path / "hosting")
        main(["host", "--workload", "healthcare", "--key", "right",
              "--save", directory])
        capsys.readouterr()
        assert main(
            ["query", "--load", directory, "--key", "wrong", "//SSN"]
        ) == 0
        assert "answers (0)" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_trace_prints_tree_and_reconciliation(self, capsys):
        assert main(["trace", "//patient/SSN"]) == 0
        out = capsys.readouterr().out
        assert "answers: 2" in out
        for stage in ("query", "translate", "server", "decrypt",
                      "postprocess"):
            assert stage in out
        assert "reconciliation" in out

    def test_trace_nests_server_stages(self, capsys):
        assert main(["trace", "/hospital/patient"]) == 0
        out = capsys.readouterr().out
        assert "server.join" in out
        assert "server.serialize" in out

    def test_stats_table(self, capsys):
        assert main(["stats", "--per-class", "1"]) == 0
        out = capsys.readouterr().out
        assert "latency histograms" in out
        assert "query_seconds" in out
        assert "slow-query log" in out

    def test_stats_table_includes_serving_metrics(self, capsys):
        assert main(["stats", "--per-class", "1"]) == 0
        out = capsys.readouterr().out
        assert "serving gauges + labeled counters" in out
        assert "serving_connections" in out
        assert "serving_request_seconds" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "--per-class", "1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["histograms"]["query_seconds"]["count"] > 0
        assert "slow_queries" in payload

    def test_stats_prometheus_is_lint_clean(self, capsys):
        from repro.obs import lint_prometheus, parse_prometheus

        assert main(
            ["stats", "--per-class", "1", "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert lint_prometheus(out) == []
        samples = parse_prometheus(out)
        assert samples["repro_query_seconds_count"] > 0
        assert samples["repro_serving_connections"] == 0


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tenant == "default"
        assert args.port == 0
        assert args.max_inflight == 64
        assert args.serve_for is None

    def test_serve_for_duration_then_drains(self, capsys, tmp_path):
        directory = str(tmp_path / "hosting")
        assert main(
            ["serve", "--serve-for", "0.1", "--storage", directory,
             "--tenant", "clinic"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving tenant 'clinic'" in out
        assert "drained and stopped" in out
        capsys.readouterr()
        # The drain persisted a loadable hosting.
        assert main(["query", "--load", directory, "//SSN"]) == 0
        assert "763895" in capsys.readouterr().out

    def test_served_tenant_answers_over_the_socket(self):
        """The same stack ``repro serve`` wires, driven by a remote peer."""
        from repro.core.system import SecureXMLSystem
        from repro.serving import ServingServer, remote_system
        from repro.workloads.healthcare import (
            build_healthcare_database,
            healthcare_constraints,
        )

        local = SecureXMLSystem.host(
            build_healthcare_database(), healthcare_constraints(),
            scheme="opt",
        )
        server = ServingServer()
        server.register_tenant("default", local)
        remote = remote_system(local, server.start(), "default")
        try:
            assert remote.query("//SSN").canonical() == (
                local.query("//SSN").canonical()
            )
        finally:
            remote.close()
            server.stop()
            local.close()
