"""XPath engine for the fragment used by the paper.

The supported grammar covers everything the paper's security constraints and
benchmark queries need:

* absolute and relative location paths (``/a/b``, ``//a``, ``.//b``, ``..``);
* axes: ``child`` (default), ``descendant``, ``descendant-or-self`` (``//``),
  ``self``, ``parent``, ``ancestor``, ``attribute`` (``@``),
  ``following-sibling``, ``preceding-sibling``;
* node tests: names, ``*`` and ``@*``;
* predicates: existence (``[q]``) and value comparisons
  (``[q = v]``, ``<``, ``<=``, ``>``, ``>=``, ``!=``) with string or numeric
  literals, plus positional predicates (``[1]``).

Two evaluation strategies are provided: :func:`evaluate` is the naive
tree-walk evaluator (the correctness oracle and the client-side
post-processor), and :mod:`repro.xpath.compiler` lowers queries to the
pattern trees that the server's DSI structural-join machinery executes.
"""

from repro.xpath.ast import (
    Comparison,
    Exists,
    LocationPath,
    NodeTest,
    Position,
    Predicate,
    Step,
)
from repro.xpath.lexer import XPathSyntaxError, tokenize
from repro.xpath.parser import parse_xpath
from repro.xpath.evaluator import evaluate, evaluate_on_element, matches

__all__ = [
    "LocationPath",
    "Step",
    "NodeTest",
    "Predicate",
    "Comparison",
    "Exists",
    "Position",
    "parse_xpath",
    "tokenize",
    "XPathSyntaxError",
    "evaluate",
    "evaluate_on_element",
    "matches",
]
