"""Encryption decoys (§4.1).

"For an element e, an encryption decoy is a randomly generated data value d
that is added as a child of e and then e and d are encrypted together."
The decoy is the paper's salt: it guarantees that two equal plaintext
subtrees encrypt to *distinct* ciphertexts, defeating the frequency-based
attack on the encrypted database itself (the two ``diarrhea`` leaves of
Figure 2 get decoys ``xyya`` and ``atrw`` and become unrelated ciphertexts).

A decoy is represented as a reserved-tag child element
(``__decoy__``) holding the random value.  The reserved tag lives only
*inside* ciphertext payloads — the server never sees it — and is how the
client recognizes and strips decoys during post-processing (§6.4).
"""

from __future__ import annotations

from repro.xmldb.node import Document, Element, Node, Text
from repro.crypto.prf import DeterministicRandom

#: Reserved tag for decoy children.  Never appears in user data (validated
#: at hosting time) and never leaves the client in plaintext.
DECOY_TAG = "__decoy__"


def inject_decoys(block_root: Element, stream: DeterministicRandom) -> int:
    """Add a decoy child to every leaf element in the block subtree.

    Implements Theorem 4.1 condition (iii): "every leaf element that is
    encrypted is encrypted with a decoy".  A block whose subtree has no
    value leaves still receives one decoy at the root so that structurally
    identical blocks cannot be matched by ciphertext equality.  Returns the
    number of decoys injected.
    """
    leaf_elements = [
        node
        for node in block_root.iter()
        if isinstance(node, Element) and node.is_leaf_element
    ]
    count = 0
    for leaf in leaf_elements:
        leaf.append(_make_decoy(stream))
        count += 1
    if count == 0:
        block_root.append(_make_decoy(stream))
        count = 1
    return count


def _make_decoy(stream: DeterministicRandom) -> Element:
    decoy = Element(DECOY_TAG)
    length = stream.randint(4, 8)
    decoy.append(Text(stream.token(length)))
    return decoy


def remove_decoys(root: Element) -> int:
    """Strip every decoy child below ``root``; returns how many were removed.

    Used by the client after decrypting blocks (§6.4: "If there exists the
    encryption decoy, the decoy is removed").
    """
    removed = 0
    decoys: list[Element] = [
        node
        for node in root.iter()
        if isinstance(node, Element) and node.tag == DECOY_TAG
    ]
    for decoy in decoys:
        decoy.detach()
        removed += 1
    return removed


def assert_no_reserved_tags(document: Document) -> None:
    """Refuse to host data that already uses the reserved decoy tag."""
    for element in document.elements():
        if element.tag == DECOY_TAG:
            raise ValueError(
                f"input data uses the reserved tag {DECOY_TAG!r}; "
                "rename that element before hosting"
            )
