"""Property tests for the T-table AES fast path and word-wise modes.

The fast path must be a pure performance change: byte-identical to the
from-scratch FIPS-197 spec implementation on every key and block, with
the official Appendix C vector passing through both code paths, and the
word-wise CBC/CTR rewrites round-tripping arbitrary payloads including
empty and non-block-aligned ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES128,
    ReferenceAES128,
    _expand_key_cached,
    aes128_for_key,
)
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_transform
from repro.perf import counters

# FIPS-197 Appendix C.1 (AES-128) known-answer vector.
_FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
_FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
_FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

_keys = st.binary(min_size=16, max_size=16)
_blocks = st.binary(min_size=16, max_size=16)
_ivs = st.binary(min_size=16, max_size=16)
_nonces = st.binary(min_size=8, max_size=8)
_payloads = st.binary(min_size=0, max_size=200)


class TestFastPathEquivalence:
    def test_fips_197_appendix_c_fast_path(self):
        cipher = AES128(_FIPS_KEY)
        assert cipher.encrypt_block(_FIPS_PLAIN) == _FIPS_CIPHER
        assert cipher.decrypt_block(_FIPS_CIPHER) == _FIPS_PLAIN

    def test_fips_197_appendix_c_spec_path(self):
        cipher = ReferenceAES128(_FIPS_KEY)
        assert cipher.encrypt_block(_FIPS_PLAIN) == _FIPS_CIPHER
        assert cipher.decrypt_block(_FIPS_CIPHER) == _FIPS_PLAIN

    @given(_keys, _blocks)
    @settings(max_examples=60, deadline=None)
    def test_encrypt_matches_spec(self, key, block):
        cipher = AES128(key)
        assert cipher.encrypt_block(block) == cipher.encrypt_block_spec(block)

    @given(_keys, _blocks)
    @settings(max_examples=60, deadline=None)
    def test_decrypt_matches_spec(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(block) == cipher.decrypt_block_spec(block)

    @given(_keys, _blocks)
    @settings(max_examples=40, deadline=None)
    def test_fast_round_trip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(_keys, _blocks)
    @settings(max_examples=40, deadline=None)
    def test_reference_subclass_agrees(self, key, block):
        """ReferenceAES128 (the benchmark baseline) is the same cipher."""
        fast = AES128(key)
        spec = ReferenceAES128(key)
        assert fast.encrypt_block(block) == spec.encrypt_block(block)
        assert spec.decrypt_block(fast.encrypt_block(block)) == block


class TestWordWiseModes:
    @given(_keys, _ivs, _payloads)
    @settings(max_examples=60, deadline=None)
    def test_cbc_round_trip(self, key, iv, payload):
        cipher = AES128(key)
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, payload)) == payload

    @given(_keys, _nonces, _payloads)
    @settings(max_examples=60, deadline=None)
    def test_ctr_round_trip(self, key, nonce, payload):
        cipher = AES128(key)
        transformed = ctr_transform(cipher, nonce, payload)
        assert len(transformed) == len(payload)
        assert ctr_transform(cipher, nonce, transformed) == payload

    def test_cbc_empty_payload(self):
        cipher = AES128(_FIPS_KEY)
        iv = bytes(16)
        ciphertext = cbc_encrypt(cipher, iv, b"")
        assert len(ciphertext) == 16  # one full padding block
        assert cbc_decrypt(cipher, iv, ciphertext) == b""

    def test_ctr_empty_payload(self):
        cipher = AES128(_FIPS_KEY)
        assert ctr_transform(cipher, bytes(8), b"") == b""

    def test_cbc_non_aligned_payloads(self):
        cipher = AES128(_FIPS_KEY)
        iv = bytes(range(16))
        for size in (1, 15, 16, 17, 31, 33):
            payload = bytes(range(256))[:size]
            ciphertext = cbc_encrypt(cipher, iv, payload)
            assert len(ciphertext) % 16 == 0
            assert cbc_decrypt(cipher, iv, ciphertext) == payload


class TestCipherCaches:
    def test_key_schedule_cached_across_instances(self):
        key = b"cached-schedule!"
        _expand_key_cached.cache_clear()
        before = counters.key_expansions
        AES128(key).encrypt_block(bytes(16))
        AES128(key).encrypt_block(bytes(16))
        assert counters.key_expansions - before == 1

    def test_keyed_cipher_cache_shares_instances(self):
        key = b"shared-cipher-k!"
        assert aes128_for_key(key) is aes128_for_key(key)
        assert aes128_for_key(key) is not aes128_for_key(b"other-cipher-k!!")
