"""Access-pattern leakage tier: trace recording and fetch countermeasures.

The server cannot read ciphertext, but an honest-but-curious observer of
the storage layer still sees *which* encryption blocks every query
touches.  *Oblivious Query Processing* (Arasu & Kaushik) and
*Information Flows in Encrypted Databases* (Vaswani et al.) both show
that this access trace alone lets the observer cluster queries and
re-identify documents under semantically secure encryption.

This module supplies the pieces the rest of the stack threads through
the real request path:

* :class:`LeakagePolicy` — the switchable countermeasure knobs
  (fixed-size padded fetch counts, batched decoy fetches, shuffled
  scatter order), parsed from ``repro serve --leakage`` or the
  ``REPRO_LEAKAGE`` environment variable;
* seeded draw streams — per-observer
  :class:`~repro.crypto.prf.DeterministicRandom` instances (the same
  counter-mode PRG the hosting pipeline draws decoy values from),
  independent of the :mod:`random` module state, so decoy draws and
  shuffles replay byte-identically across backends and runs;
* :class:`TraceRecorder` / :class:`ObservedTrace` — what the attacker
  in :mod:`repro.security.leakage` gets to see: the ordered block-fetch
  sequence per observer ("server", "shard0", ...);
* :class:`LeakageContext` — the per-system object the
  :class:`~repro.core.server.Server` (and every cluster shard) calls on
  each evaluated query to perform the extra fetches, account for them
  in the dedicated ``leakage_*`` counters, and record the trace.

Everything here operates strictly *below* the wire: decoy and padding
fetches read ciphertext the server already stores, never leave the
machine, and never touch the response bytes — answers stay
byte-identical with any policy enabled.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.crypto.prf import DeterministicRandom
from repro.perf import counters

#: Environment knob read by :meth:`LeakageContext.coerce` when the
#: hosting call leaves ``leakage=None`` — mirrors REPRO_WORKERS /
#: REPRO_SHARDS so CI matrices can flip the tier on without code edits.
ENV_POLICY = "REPRO_LEAKAGE"


def leakage_stream(seed: int, label: str) -> DeterministicRandom:
    """A seeded counter-mode stream for one observer/purpose.

    :class:`~repro.crypto.prf.DeterministicRandom` is a function of
    ``(key, label)`` only — never of interpreter hash randomization or
    :mod:`random` module state — which is the property the determinism
    tier tests: identical seeds must produce identical decoy/shuffle
    sequences across the object and columnar backends, across cluster
    shapes, and across runs.  The label is namespaced so these streams
    can never collide with the hosting pipeline's decoy-value streams
    even under a shared key.
    """
    key = (seed & ((1 << 64) - 1)).to_bytes(8, "big").rjust(16, b"\x00")
    return DeterministicRandom(key, f"leakage:{label}")


@dataclass(frozen=True)
class LeakagePolicy:
    """Countermeasure knobs, each independently switchable.

    The default-constructed policy records traces but counters nothing —
    that is the *measurement* configuration the attacker baseline runs
    against.  :meth:`full` is the shipped countermeasure set the CI gate
    holds below the residual-advantage bound.
    """

    #: Round the per-query fetch count up to a multiple of this (with a
    #: floor of one full bucket, so even a zero-block query fetches).
    #: ``0``/``1`` disables padding.
    pad_to: int = 0
    #: Decoy block fetches appended to every evaluated query, drawn from
    #: the observer's block universe by the seeded stream.
    decoys: int = 0
    #: Shuffle the coordinator's scatter order so shards cannot be
    #: correlated by their fixed position in the request sequence.
    shuffle: bool = False
    #: Seed for every stream the context derives (decoys, padding,
    #: fetch-order shuffle, scatter shuffle).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pad_to < 0:
            raise ValueError("pad_to must be >= 0")
        if self.decoys < 0:
            raise ValueError("decoys must be >= 0")

    @property
    def masks_fetches(self) -> bool:
        """True when fetch-level countermeasures (pad/decoy) are on."""
        return self.pad_to > 1 or self.decoys > 0

    @property
    def enabled(self) -> bool:
        """True when any countermeasure is on."""
        return self.masks_fetches or self.shuffle

    @classmethod
    def full(cls, seed: int = 0) -> "LeakagePolicy":
        """The complete countermeasure set the CI gate measures."""
        return cls(pad_to=8, decoys=16, shuffle=True, seed=seed)

    @classmethod
    def parse(cls, text: str) -> "LeakagePolicy":
        """Parse a CLI/env policy spec.

        ``"off"`` → record-only policy; ``"full"`` → :meth:`full`;
        otherwise comma-separated ``key=value`` pairs over ``pad``,
        ``decoys``, ``shuffle`` and ``seed`` — e.g.
        ``"pad=8,decoys=16,shuffle=1,seed=3"``.
        """
        spec = text.strip().lower()
        if spec in ("", "off", "record"):
            return cls()
        if spec == "full":
            return cls.full()
        values: dict[str, int] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, separator, raw = token.partition("=")
            if not separator:
                raise ValueError(
                    f"bad leakage policy token {token!r}; expected key=value"
                )
            key = key.strip()
            try:
                value = int(raw.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad leakage policy value for {key!r}: {raw!r}"
                ) from exc
            if key in ("pad", "pad_to"):
                values["pad_to"] = value
            elif key == "decoys":
                values["decoys"] = value
            elif key == "shuffle":
                values["shuffle"] = bool(value)
            elif key == "seed":
                values["seed"] = value
            else:
                raise ValueError(f"unknown leakage policy knob {key!r}")
        return cls(**values)


@dataclass(frozen=True)
class ObservedTrace:
    """One query's fetch sequence as one observer saw it.

    ``blocks`` is the ordered block-id sequence the observer's storage
    layer served — real fetches plus any decoy/padding fetches, in the
    (possibly shuffled) order they were issued.  This is the attacker's
    entire view; it carries no plaintext and no query text.
    """

    observer: str
    blocks: tuple[int, ...]

    def encode(self) -> bytes:
        """Canonical bytes, for byte-identity assertions across runs."""
        body = ",".join(str(block) for block in self.blocks)
        return f"{self.observer}:{body}".encode("utf-8")


class TraceRecorder:
    """Append-only log of :class:`ObservedTrace` per observer.

    Thread-safe: the serving layer evaluates concurrent readers, so two
    queries may record at once.  Order within one observer is the order
    the observer actually served the fetches.
    """

    def __init__(self) -> None:
        self._traces: list[ObservedTrace] = []
        self._lock = threading.Lock()

    def record(self, observer: str, blocks: Iterable[int]) -> ObservedTrace:
        trace = ObservedTrace(observer=observer, blocks=tuple(blocks))
        with self._lock:
            self._traces.append(trace)
        counters.add("leakage_traces_recorded")
        return trace

    def traces(self, observer: "str | None" = None) -> list[ObservedTrace]:
        """Recorded traces, optionally filtered to one observer."""
        with self._lock:
            snapshot = list(self._traces)
        if observer is None:
            return snapshot
        return [trace for trace in snapshot if trace.observer == observer]

    def observers(self) -> tuple[str, ...]:
        """Distinct observer names, in first-recorded order."""
        seen: dict[str, None] = {}
        for trace in self.traces():
            seen.setdefault(trace.observer, None)
        return tuple(seen)

    def encode(self, observer: "str | None" = None) -> bytes:
        """Canonical bytes for the whole (filtered) log."""
        return b"\n".join(
            trace.encode() for trace in self.traces(observer)
        )

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class LeakageContext:
    """Per-system leakage state: policy, recorder, and seeded streams.

    One context is shared by the monolithic server, every cluster shard
    replica, and the coordinator.  Each observer name gets its own
    advancing :class:`DeterministicRandom` stream, so decoy draws are
    fresh per query (a repeated query does *not* repeat its decoys —
    per-request determinism would let the observer match repeats by set
    equality) while remaining replay-identical across backends and runs,
    because the per-observer call sequence is identical.
    """

    def __init__(
        self,
        policy: LeakagePolicy,
        recorder: "TraceRecorder | None" = None,
    ) -> None:
        self.policy = policy
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._streams: dict[str, DeterministicRandom] = {}
        self._lock = threading.Lock()

    @classmethod
    def coerce(cls, value) -> "LeakageContext | None":
        """Normalize every way a hosting call can ask for the tier.

        ``None`` defers to ``REPRO_LEAKAGE`` (unset → no context at all,
        zero overhead on existing paths); ``False`` forces the tier off;
        ``True`` means the full countermeasure set; a string is parsed
        as a policy spec; a :class:`LeakagePolicy` or an existing
        :class:`LeakageContext` is used as-is.
        """
        if value is None:
            spec = os.environ.get(ENV_POLICY, "").strip()
            if not spec:
                return None
            return cls(LeakagePolicy.parse(spec))
        if value is False:
            return None
        if value is True:
            return cls(LeakagePolicy.full())
        if isinstance(value, cls):
            return value
        if isinstance(value, LeakagePolicy):
            return cls(value)
        if isinstance(value, str):
            return cls(LeakagePolicy.parse(value))
        raise TypeError(
            "leakage must be None, a bool, a policy spec string, a "
            f"LeakagePolicy or a LeakageContext, not {type(value).__name__}"
        )

    def stream(self, label: str) -> DeterministicRandom:
        """The (created-on-first-use) stream for one observer/purpose."""
        with self._lock:
            stream = self._streams.get(label)
            if stream is None:
                stream = leakage_stream(self.policy.seed, label)
                self._streams[label] = stream
            return stream

    def observe(
        self,
        observer: str,
        real_ids: Sequence[int],
        universe: Sequence[int],
        fetch: Callable[[int], "bytes | None"],
    ) -> int:
        """Run one query's fetch plan for ``observer`` and record it.

        ``real_ids`` are the block ids the evaluated answer actually
        ships (subtree-walk ground truth); ``universe`` is the sorted
        block-id population this observer could legitimately be asked
        for (the whole store, or one shard's slice); ``fetch`` resolves
        an id to its stored ciphertext so decoy/padding fetches do real
        storage reads.  Returns the total fetch count (the padded
        trace length).  Holds the context lock for the whole plan so a
        concurrent query cannot interleave draws within one trace.
        """
        policy = self.policy
        plan = list(real_ids)
        real_bytes = 0
        for block_id in real_ids:
            payload = fetch(block_id)
            if payload is not None:
                real_bytes += len(payload)
        decoy_count = 0
        pad_count = 0
        extra_bytes = 0
        with self._lock:
            if universe and policy.masks_fetches:
                rng = self._streams.get(observer)
                if rng is None:
                    rng = leakage_stream(policy.seed, observer)
                    self._streams[observer] = rng
                for _ in range(policy.decoys):
                    block_id = universe[rng.randint(0, len(universe) - 1)]
                    payload = fetch(block_id)
                    extra_bytes += len(payload or b"")
                    plan.append(block_id)
                    decoy_count += 1
                if policy.pad_to > 1:
                    bucket = policy.pad_to
                    target = max(
                        bucket, ((len(plan) + bucket - 1) // bucket) * bucket
                    )
                    while len(plan) < target:
                        block_id = universe[rng.randint(0, len(universe) - 1)]
                        payload = fetch(block_id)
                        extra_bytes += len(payload or b"")
                        plan.append(block_id)
                        pad_count += 1
                # Shuffle the issue order so trace position does not
                # reveal which fetches were real.
                rng.shuffle(plan)
        counters.add("leakage_real_fetches", len(real_ids))
        counters.add("leakage_real_bytes", real_bytes)
        if decoy_count:
            counters.add("leakage_decoy_fetches", decoy_count)
        if pad_count:
            counters.add("leakage_pad_fetches", pad_count)
        if extra_bytes:
            counters.add("leakage_extra_bytes", extra_bytes)
        self.recorder.record(observer, plan)
        return len(plan)

    def scatter_order(self, shards: Sequence) -> list:
        """The order to visit scatter targets in.

        Identity order unless the policy shuffles, in which case one
        shared ``"scatter"`` stream drives the permutation — the
        coordinator and the serving gateway route through this helper so
        both paths draw from the same advancing stream.
        """
        ordered = list(shards)
        if self.policy.shuffle and len(ordered) > 1:
            with self._lock:
                rng = self._streams.get("scatter")
                if rng is None:
                    rng = leakage_stream(self.policy.seed, "scatter")
                    self._streams["scatter"] = rng
                rng.shuffle(ordered)
            counters.add("leakage_shuffled_scatters")
        return ordered
