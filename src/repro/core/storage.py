"""Persistence of hosted databases (deployment support).

In the DAS setting of Figure 1 the encrypted database and its metadata
*live* at the server between sessions.  This module serializes everything
a server stores — the hosted tree with its ciphertext blocks, the DSI
index table, the encryption block table and the B-tree value index — plus
a separate client-state file that stays with the data owner, and rebuilds
a working :class:`~repro.core.system.SecureXMLSystem` from disk + the
master key.

Layout of a saved hosting::

    <directory>/
      hosted.xml          # the partially encrypted tree (server-side)
      server_meta.json    # DSI table, block table, value index (server-side)
      client_state.json   # owner's knowledge: tag sets, occurrences
                          # (client-side — contains plaintext values; it
                          #  must never be given to the server)

Field plans, tag tokens and every key are *re-derived* from the master key
on load (the whole pipeline is deterministic in it), so the client file
holds only what cannot be derived: which tags/fields exist on which side,
and the per-field occurrence lists that power incremental updates.
"""

from __future__ import annotations

import json
import os
from collections import Counter

from repro.btree import BTree
from repro.core.client import Client
from repro.core.dsi import IndexEntry, Interval, StructuralIndex
from repro.core.encryptor import HostedDatabase, _renumber_hosted
from repro.core.opess import ValueIndex, build_field_plan
from repro.core.scheme import EncryptionScheme
from repro.core.server import Server
from repro.core.system import HostingTrace, SecureXMLSystem
from repro.crypto.keyring import ClientKeyring
from repro.netsim.channel import Channel
from repro.xmldb.node import Element, EncryptedBlockNode, Node
from repro.xmldb.parser import ENCRYPTED_DATA_TAG, parse_fragment
from repro.xmldb.serializer import serialize

_FORMAT_VERSION = 1


def save_system(system: SecureXMLSystem, directory: str) -> None:
    """Persist a hosted system's server and client state to a directory."""
    os.makedirs(directory, exist_ok=True)
    hosted = system.hosted

    with open(os.path.join(directory, "hosted.xml"), "w", encoding="utf-8") as f:
        f.write(serialize(hosted.hosted_root))

    entries = hosted.structural_index.all_entries()
    entry_index = {id(entry): position for position, entry in enumerate(entries)}
    server_meta = {
        "version": _FORMAT_VERSION,
        "dsi": [
            {
                "key": entry.key,
                "low": entry.interval.low,
                "high": entry.interval.high,
                "members": list(entry.member_ids),
                "block": entry.block_id,
                "parent": entry_index.get(id(entry.parent)),
                "value": entry.plaintext_value,
                "hosted_id": (
                    entry.hosted_node.node_id
                    if entry.hosted_node is not None
                    else None
                ),
            }
            for entry in entries
        ],
        "block_table": {
            str(block_id): [interval.low, interval.high]
            for block_id, interval in (
                hosted.structural_index.block_table.items()
            )
        },
        "value_index": {
            token: [[key, block] for key, block in tree.items()]
            for token, tree in hosted.value_index.trees.items()
        },
    }
    with open(
        os.path.join(directory, "server_meta.json"), "w", encoding="utf-8"
    ) as f:
        json.dump(server_meta, f)

    client_state = {
        "version": _FORMAT_VERSION,
        "root_tag": hosted.root_tag,
        "secure": hosted.secure,
        "scheme_kind": system.scheme.kind,
        "covered_fields": sorted(system.scheme.covered_fields),
        "encrypted_tags": sorted(hosted.encrypted_tags),
        "plaintext_keys": sorted(hosted.plaintext_keys),
        "occurrences": {
            field: [[value, block] for value, block in occurrence_list]
            for field, occurrence_list in hosted.occurrences.items()
        },
        "decoy_count": hosted.decoy_count,
    }
    with open(
        os.path.join(directory, "client_state.json"), "w", encoding="utf-8"
    ) as f:
        json.dump(client_state, f)


def load_system(
    directory: str,
    master_key: bytes,
    channel: Channel | None = None,
) -> SecureXMLSystem:
    """Rebuild a working system from a saved hosting and the master key."""
    keyring = ClientKeyring(master_key)

    with open(os.path.join(directory, "hosted.xml"), encoding="utf-8") as f:
        hosted_root: Node = parse_fragment(f.read())
    if (
        isinstance(hosted_root, Element)
        and hosted_root.tag == ENCRYPTED_DATA_TAG
        and hosted_root.attribute("block-id") is not None
    ):
        hosted_root = EncryptedBlockNode(
            int(hosted_root.attribute("block-id").value),
            bytes.fromhex(hosted_root.text_value() or ""),
        )
    _renumber_hosted(hosted_root)
    nodes_by_id: dict[int, Node] = {}
    for node in hosted_root.iter():
        nodes_by_id[node.node_id] = node
        if isinstance(node, Element):
            for attribute in node.attributes:
                nodes_by_id[attribute.node_id] = attribute
    placeholders = {
        node.block_id: node
        for node in hosted_root.iter()
        if isinstance(node, EncryptedBlockNode)
    }
    blocks = {block_id: node.payload for block_id, node in placeholders.items()}

    with open(
        os.path.join(directory, "server_meta.json"), encoding="utf-8"
    ) as f:
        server_meta = json.load(f)
    if server_meta.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported server_meta version")

    entries: list[IndexEntry] = []
    for record in server_meta["dsi"]:
        entry = IndexEntry(
            key=record["key"],
            interval=Interval(record["low"], record["high"]),
            member_ids=tuple(record["members"]),
            block_id=record["block"],
            plaintext_value=record["value"],
            hosted_node=(
                nodes_by_id.get(record["hosted_id"])
                if record["hosted_id"] is not None
                else None
            ),
        )
        entries.append(entry)
    for record, entry in zip(server_meta["dsi"], entries):
        if record["parent"] is not None:
            parent = entries[record["parent"]]
            entry.parent = parent
            parent.children.append(entry)
    table: dict[str, list[IndexEntry]] = {}
    for entry in entries:
        table.setdefault(entry.key, []).append(entry)
    structural_index = StructuralIndex(
        table=table,
        block_table={
            int(block_id): Interval(low, high)
            for block_id, (low, high) in server_meta["block_table"].items()
        },
        entries=sorted(entries, key=lambda e: e.interval.low),
    )

    value_index = ValueIndex()
    for token, flat_entries in server_meta["value_index"].items():
        tree = BTree(min_degree=16)
        for key, block in flat_entries:
            tree.insert(key, block)
        value_index.trees[token] = tree

    with open(
        os.path.join(directory, "client_state.json"), encoding="utf-8"
    ) as f:
        client_state = json.load(f)
    if client_state.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported client_state version")

    occurrences = {
        field: [(value, block) for value, block in occurrence_list]
        for field, occurrence_list in client_state["occurrences"].items()
    }
    field_plans = {}
    field_tokens = {}
    for field, occurrence_list in sorted(occurrences.items()):
        histogram = Counter(value for value, _ in occurrence_list)
        if not histogram:
            continue
        field_plans[field] = build_field_plan(
            field, histogram, keyring.opess_stream(field), keyring.ope
        )
        field_tokens[field] = keyring.tag_cipher.encrypt_tag(field)

    hosted = HostedDatabase(
        hosted_root=hosted_root,
        structural_index=structural_index,
        value_index=value_index,
        blocks=blocks,
        placeholders=placeholders,
        root_tag=client_state["root_tag"],
        encrypted_tags=set(client_state["encrypted_tags"]),
        plaintext_keys=set(client_state["plaintext_keys"]),
        field_plans=field_plans,
        field_tokens=field_tokens,
        decoy_count=client_state["decoy_count"],
        secure=client_state["secure"],
        occurrences=occurrences,
    )
    scheme = EncryptionScheme(
        kind=client_state["scheme_kind"],
        block_root_ids=frozenset(),
        covered_fields=frozenset(client_state["covered_fields"]),
    )
    hosting_trace = HostingTrace(
        scheme_kind=scheme.kind,
        scheme_size_nodes=0,
        block_count=len(blocks),
        encrypt_s=0.0,
        hosted_bytes=hosted.hosted_size_bytes(),
        plaintext_bytes=0,
        decoy_count=hosted.decoy_count,
        index_entries=len(entries),
        value_index_entries=value_index.total_entries(),
    )
    return SecureXMLSystem(
        client=Client(keyring, hosted),
        server=Server(hosted),
        hosted=hosted,
        scheme=scheme,
        channel=channel or Channel(),
        hosting_trace=hosting_trace,
        keyring=keyring,
    )
