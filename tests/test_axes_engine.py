"""Differential sweep for the axis engine: all thirteen axes, exactly.

The contract is the same correctness equation the downward fragment has
always satisfied — ``Q(δ(Qs(η(D)))) = Q(D)`` — extended to every axis
and every positional-predicate shape, across the execution matrix:
object/columnar backends, serial/parallel engines, monolithic and
(4, 2) cluster hosting, and a ≥20% fault sweep where the outcome must
be the exact answer or a typed error.

None of these queries may touch the naive protocol: the planner must
pick a twig, axis, or residual server-side plan for each (the
``naive_fallbacks`` counter stays at zero and every trace records a
plan tier).
"""

import pytest

from repro.cluster.placement import ClusterConfig
from repro.core.client import canonical_node
from repro.core.parallel import ParallelConfig
from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.netsim import FaultPolicy, FaultyChannel
from repro.perf import counters
from repro.workloads.axes import ALL_AXES, AxisWorkload
from repro.xpath.evaluator import evaluate

#: Hand-picked shapes the generator's grammar does not reach: predicate
#: branches over reverse/order axes, stacked predicates, multi-value
#: constraints, degenerate paths.
EXTRA_QUERIES = (
    "//patient[pname='Betty']//disease[last()]",
    "//disease[../doctor='Smith']",
    "//treat[following-sibling::insurance]/disease",
    "//doctor[ancestor::patient[age>36]]",
    "//patient/treat[2]/doctor",
    "//treat[disease='leukemia'][doctor='Smith']",
    "//patient[age>30][age<40]/pname",
    "/hospital/patient[1]/following-sibling::patient/pname",
    "//pname/../age",
    "//hospital/ancestor-or-self::hospital",
    "//nosuchtag/following::doctor",
    "/hospital//insurance/@coverage",
)


def truth(document, query):
    return sorted(canonical_node(n) for n in evaluate(document, query))


def axis_queries(document, seed=7):
    return AxisWorkload(document, seed=seed).queries()


def assert_exact_and_served(system, document, queries):
    """Every query answers exactly and through a server-side plan."""
    before = counters.snapshot().get("naive_fallbacks", 0)
    for query in queries:
        answer = system.query(query)
        assert answer.canonical() == truth(document, query), query
        trace = system.last_trace
        assert not trace.naive, query
        assert trace.plan in ("twig", "axis", "residual"), (
            query,
            trace.plan,
        )
    assert counters.snapshot().get("naive_fallbacks", 0) == before


class TestGeneratorCoversEveryAxis:
    def test_all_thirteen_axes_emitted(self, healthcare_doc):
        by_axis = AxisWorkload(healthcare_doc).by_axis()
        assert set(ALL_AXES) <= set(by_axis)
        for axis in ALL_AXES:
            assert by_axis[axis], axis
        assert by_axis["positional"]


class TestHealthcareMatrix:
    """Full execution matrix on the Figure 2 database."""

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_serial(self, healthcare_doc, healthcare_scs, backend):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", backend=backend
        )
        queries = axis_queries(healthcare_doc) + list(EXTRA_QUERIES)
        assert_exact_and_served(system, healthcare_doc, queries)

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_parallel(self, healthcare_doc, healthcare_scs, backend):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            backend=backend,
            parallel=ParallelConfig(workers=4, backend="thread"),
        )
        try:
            queries = axis_queries(healthcare_doc) + list(EXTRA_QUERIES)
            assert_exact_and_served(system, healthcare_doc, queries)
        finally:
            system.close()

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_cluster(self, healthcare_doc, healthcare_scs, backend):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            backend=backend,
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        queries = axis_queries(healthcare_doc) + list(EXTRA_QUERIES)
        assert_exact_and_served(system, healthcare_doc, queries)

    def test_monolithic_and_cluster_answers_identical(
        self, healthcare_doc, healthcare_scs
    ):
        mono = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        clustered = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        for query in axis_queries(healthcare_doc) + list(EXTRA_QUERIES):
            assert (
                mono.query(query).canonical()
                == clustered.query(query).canonical()
            ), query


class TestOtherCorpora:
    """Spot configurations on the synthetic NASA and XMark databases."""

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_nasa(self, nasa_doc, nasa_scs, backend):
        system = SecureXMLSystem.host(
            nasa_doc, nasa_scs, scheme="opt", backend=backend
        )
        assert_exact_and_served(system, nasa_doc, axis_queries(nasa_doc))

    def test_xmark_cluster(self, xmark_doc, xmark_scs):
        system = SecureXMLSystem.host(
            xmark_doc,
            xmark_scs,
            scheme="opt",
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        assert_exact_and_served(system, xmark_doc, axis_queries(xmark_doc))

    def test_xmark_parallel_columnar(self, xmark_doc, xmark_scs):
        system = SecureXMLSystem.host(
            xmark_doc,
            xmark_scs,
            scheme="opt",
            backend="columnar",
            parallel=ParallelConfig(workers=4, backend="thread"),
        )
        try:
            assert_exact_and_served(
                system, xmark_doc, axis_queries(xmark_doc)
            )
        finally:
            system.close()


class TestFaultSweep:
    """≥20% fault rates: exact answer or typed error, never wrong."""

    @pytest.mark.parametrize(
        "rates",
        (
            {"drop": 0.25},
            {"corrupt": 0.25},
            {"drop": 0.2, "corrupt": 0.2, "truncate": 0.1},
        ),
        ids=lambda r: "+".join(sorted(r)),
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_or_typed(
        self, seed, rates, healthcare_doc, healthcare_scs
    ):
        policy = FaultPolicy.symmetric(seed=seed, **rates)
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            scheme="opt",
            channel=FaultyChannel(policy=policy),
        )
        answered = 0
        for query in axis_queries(healthcare_doc):
            try:
                answer = system.query(query)
            except QueryFailedError:
                continue  # typed failure is an allowed outcome
            answered += 1
            assert answer.canonical() == truth(healthcare_doc, query), (
                seed,
                rates,
                query,
            )
        assert answered >= 1


class TestPlanTiers:
    """The planner's tier choice is pinned for representative shapes."""

    @pytest.mark.parametrize(
        "query,kind",
        [
            ("//patient/pname", "twig"),
            ("//treat[disease='leukemia']/doctor", "twig"),
            ("//treat/following-sibling::insurance", "axis"),
            ("//age/ancestor::patient", "axis"),
            ("/hospital/patient[1]/pname", "axis"),
            ("//patient/descendant-or-self::patient", "axis"),
            ("//age/namespace::*", "residual"),
        ],
    )
    def test_plan_kind_recorded(
        self, healthcare_doc, healthcare_scs, query, kind
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        system.query(query)
        trace = system.last_trace
        assert trace.plan == kind, (query, trace.plan)
        if kind == "twig":
            assert trace.fallback_reason is None
        else:
            assert trace.fallback_reason

    def test_fallback_reason_surfaces_in_row_and_slowlog(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        system.query("//age/ancestor::patient")
        row = system.last_trace.as_row()
        assert row["plan"] == "axis"
        assert "ancestor" in row["fallback_reason"]
        entries = system.observability().slow_log.entries()
        logged = {entry.query: entry for entry in entries}
        entry = logged["//age/ancestor::patient"]
        assert entry.plan == "axis"
        assert "ancestor" in entry.fallback_reason
        assert "plan=axis" in entry.render()
