"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.workloads.xmark import build_xmark_database, xmark_constraints


@pytest.fixture
def healthcare_doc():
    """The Figure 2 database (fresh instance per test)."""
    return build_healthcare_database()


@pytest.fixture
def healthcare_scs():
    """The Example 3.1 constraint set."""
    return healthcare_constraints()


@pytest.fixture(scope="session")
def xmark_doc():
    """A small XMark-like document shared across a session."""
    return build_xmark_database(person_count=30, seed=11)


@pytest.fixture(scope="session")
def xmark_scs():
    return xmark_constraints()


@pytest.fixture(scope="session")
def nasa_doc():
    """A small NASA-like document shared across a session."""
    return build_nasa_database(dataset_count=25, seed=13)


@pytest.fixture(scope="session")
def nasa_scs():
    return nasa_constraints()
