"""Wire encoding of the client↔server messages.

The paper's protocol ships two message shapes (see ``docs/PROTOCOL.md``):
the translated query ``Qs`` (client→server) and a fragment list
(server→client).  Hardening the reproduction against an untrusted wire
requires *actual bytes* to cross the modelled channel — a fault policy
cannot flip bits in a Python object — so this module gives both shapes a
canonical JSON encoding.  The encodings are pure data: no pickle, no code
execution on decode, and every decode error is raised as
:class:`MessageDecodeError` so the retry layer can treat a mangled
payload that slipped past truncation checks exactly like a tampered one.

Codec stability is not a compatibility promise (client and server are
versioned together); determinism is what matters — the same query object
encodes to the same bytes, which the request/response wire caches key on.
"""

from __future__ import annotations

import json
from typing import Any


class MessageDecodeError(ValueError):
    """A wire payload did not decode to a valid message."""


# ----------------------------------------------------------------------
# Translated query (client -> server)
# ----------------------------------------------------------------------
def encode_query(query: Any) -> bytes:
    """Serialize a ``TranslatedQuery`` to canonical JSON bytes."""

    def node_dict(node: Any) -> dict[str, Any]:
        out: dict[str, Any] = {"k": list(node.keys), "a": node.axis}
        if node.value_ranges is not None:
            out["r"] = [[r.low, r.high] for r in node.value_ranges]
        if node.value_field_token is not None:
            out["t"] = node.value_field_token
        if node.plaintext_predicate is not None:
            out["p"] = list(node.plaintext_predicate)
        if node.is_output:
            out["o"] = 1
        if node.is_ship_node:
            out["s"] = 1
        if node.children:
            out["c"] = [node_dict(child) for child in node.children]
        return out

    return json.dumps(
        {"q": node_dict(query.root)}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_query(payload: bytes) -> Any:
    """Rebuild a ``TranslatedQuery`` from :func:`encode_query` bytes."""
    from repro.core.opess import KeyRange
    from repro.core.translate import TranslatedNode, TranslatedQuery

    def build(record: dict[str, Any]) -> TranslatedNode:
        node = TranslatedNode(
            keys=tuple(record["k"]),
            axis=record["a"],
            value_ranges=(
                [KeyRange(low, high) for low, high in record["r"]]
                if "r" in record
                else None
            ),
            value_field_token=record.get("t"),
            plaintext_predicate=(
                (record["p"][0], record["p"][1]) if "p" in record else None
            ),
            is_output=bool(record.get("o")),
            is_ship_node=bool(record.get("s")),
        )
        node.children = [build(child) for child in record.get("c", ())]
        return node

    try:
        root = build(_load(payload)["q"])
    except (KeyError, TypeError, IndexError) as exc:
        raise MessageDecodeError(f"malformed query message: {exc}") from exc
    output = next((n for n in root.walk() if n.is_output), root)
    ship = next((n for n in root.walk() if n.is_ship_node), root)
    return TranslatedQuery(root=root, output=output, ship_node=ship)


# ----------------------------------------------------------------------
# Server response (server -> client)
# ----------------------------------------------------------------------
def encode_response(response: Any) -> bytes:
    """Serialize a ``ServerResponse`` to canonical JSON bytes."""
    return json.dumps(
        {
            "n": int(response.naive),
            "b": response.blocks_shipped,
            "cc": response.candidate_counts,
            "f": [
                {"p": [[tag, nid] for tag, nid in f.ancestor_path], "x": f.xml}
                for f in response.fragments
            ],
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def decode_response(payload: bytes) -> Any:
    """Rebuild a ``ServerResponse`` from :func:`encode_response` bytes."""
    from repro.core.server import Fragment, ServerResponse

    try:
        record = _load(payload)
        return ServerResponse(
            fragments=[
                Fragment(
                    ancestor_path=tuple(
                        (tag, nid) for tag, nid in f["p"]
                    ),
                    xml=f["x"],
                )
                for f in record["f"]
            ],
            naive=bool(record["n"]),
            blocks_shipped=record["b"],
            candidate_counts=dict(record["cc"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MessageDecodeError(f"malformed response message: {exc}") from exc


def _load(payload: bytes) -> dict[str, Any]:
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageDecodeError(f"undecodable message: {exc}") from exc
    if not isinstance(record, dict):
        raise MessageDecodeError("message is not an object")
    return record
