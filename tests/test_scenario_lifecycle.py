"""A full product-lifecycle scenario: host → query → update → save →
reload → audit, as one continuous narrative over the NASA workload.

This is the test a prospective adopter would write first: does the whole
system hold together across its features, not just per-module?
"""

import pytest

from repro.core.client import canonical_node
from repro.core.storage import load_system, save_system
from repro.core.system import SecureXMLSystem
from repro.security.analysis import audit_system
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.xmldb.node import Element, Text
from repro.xpath.evaluator import evaluate

MASTER = b"lifecycle-master-key-32-bytes!!!"


def check(system, oracle, query):
    expected = sorted(canonical_node(n) for n in evaluate(oracle, query))
    assert system.query(query).canonical() == expected, query


class TestLifecycle:
    @pytest.fixture(scope="class")
    def environment(self, tmp_path_factory):
        document = build_nasa_database(dataset_count=20, seed=77)
        oracle = build_nasa_database(dataset_count=20, seed=77)
        system = SecureXMLSystem.host(
            document, nasa_constraints(), scheme="opt", master_key=MASTER
        )
        return system, oracle, tmp_path_factory.mktemp("lifecycle")

    def test_01_initial_queries(self, environment):
        system, oracle, _ = environment
        for query in ("//dataset/title", "//author[age>45]/last",
                      "//dataset[.//publisher='CDS']/title"):
            check(system, oracle, query)

    def test_02_aggregates(self, environment):
        system, oracle, _ = environment
        count = system.aggregate("//author", "count")
        assert count == len(evaluate(oracle, "//author"))
        assert system.aggregate("//last", "min", mode="server") == (
            system.aggregate("//last", "min")
        )

    def test_03_updates(self, environment):
        system, oracle, _ = environment
        title = evaluate(oracle, "//dataset/title")[0].text_value()
        system.insert_element(
            f"//dataset[title='{title}']/distribution", "last", "Zzyzx"
        )
        distribution = evaluate(
            oracle, f"//dataset[title='{title}']/distribution"
        )[0]
        leaf = Element("last")
        leaf.append(Text("Zzyzx"))
        distribution.append(leaf)
        oracle.renumber()
        check(system, oracle, "//last")
        # The new value is queryable through the value index.
        answer = system.query("//distribution[last='Zzyzx']/publisher")
        expected = sorted(
            canonical_node(n)
            for n in evaluate(oracle, "//distribution[last='Zzyzx']/publisher")
        )
        assert answer.canonical() == expected

    def test_04_persist_and_reload(self, environment):
        system, oracle, directory = environment
        save_system(system, str(directory / "hosting"))
        reloaded = load_system(str(directory / "hosting"), MASTER)
        for query in ("//last", "//dataset/title",
                      "//distribution[last='Zzyzx']/publisher"):
            check(reloaded, oracle, query)

    def test_05_reloaded_system_updatable(self, environment):
        system, oracle, directory = environment
        reloaded = load_system(str(directory / "hosting"), MASTER)
        reloaded.update_value(
            "//distribution[last='Zzyzx']/last", "Aardvark"
        )
        evaluate(oracle, "//distribution[last='Zzyzx']/last")[0].children[
            0
        ].value = "Aardvark"
        check(reloaded, oracle, "//last")

    def test_06_audit_passes_throughout(self, environment):
        system, oracle, _ = environment
        report = audit_system(system, oracle)
        assert not report.any_value_cracked
        assert report.structural_candidates >= 1
