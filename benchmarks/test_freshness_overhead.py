"""E-fresh — freshness-envelope overhead gate.

The rxi2 envelope adds an epoch + Merkle-root header to every sealed
message and a header comparison to every verify.  The anti-rollback
guarantee is only a free lunch if that cost is invisible next to the
query work itself, so this benchmark measures the *full* per-response
freshness verification — ``unseal_fresh`` on real sealed response blobs,
including the MAC over header+payload and the constant-time epoch/root
comparison — and gates it against the warm per-query latency of the same
workload.

The gate passes when either

* verification costs within ``REPRO_FRESHNESS_OVERHEAD`` (default 5%)
  of a warm query, or
* the absolute per-verify cost is under a tiny floor (50µs) — below
  that, the ratio measures timer noise, not crypto.

Results are appended to ``BENCH_hotpath.json`` as a
``freshness_overhead`` series (read-modify-write, so the other series
survive) and a table under ``benchmarks/results/``.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.core.integrity import FRESH_OVERHEAD, unseal_fresh
from repro.core.system import SecureXMLSystem
from repro.workloads.xmark import xmark_constraints
from repro.xpath.compiler import UnsupportedQuery

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
MASTER_KEY = b"freshness-bench-master-key-0001!"

#: allowed freshness-verify cost as a fraction of warm query latency.
OVERHEAD_LIMIT = float(os.environ.get("REPRO_FRESHNESS_OVERHEAD", "0.05"))
#: below this per-verify cost the ratio gate measures noise, not work.
ABSOLUTE_FLOOR_S = 50e-6


def _append_series(key: str, payload: object) -> None:
    """Read-modify-write ``BENCH_hotpath.json`` (other series survive)."""
    report: dict[str, object] = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report[key] = payload
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def fresh_queries(xmark_doc, xmark_queries):
    probe = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    queries = []
    for query_class in ("Qs", "Qm"):
        for query in xmark_queries[query_class]:
            try:
                probe.client.translate(query)
            except UnsupportedQuery:
                continue
            if query not in queries:
                queries.append(query)
    assert queries
    return queries


def test_freshness_verify_overhead_on_warm_queries(xmark_doc, fresh_queries):
    """Per-response rxi2 verification stays within the latency gate."""
    system = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    queries = fresh_queries

    # Warm per-query latency on the full end-to-end path.
    system.execute_many(queries)  # warm every cache layer
    gc.collect()
    gc.disable()  # cyclic node graphs; see test_parallel_engine
    try:
        samples = []
        for _ in range(max(BENCH_TRIALS, 3)):
            started = time.perf_counter()
            system.execute_many(queries)
            samples.append(time.perf_counter() - started)
    finally:
        gc.enable()
    warm_query_s = trimmed_mean(samples) / len(queries)

    # The exact blobs the cold path verifies: real sealed responses.
    client = system.client
    hosted = system.hosted
    blobs = []
    for query in queries:
        translated = client.translate(query)
        request = client.seal_request(translated, cache_key=query)
        blobs.append(system.server.answer_wire(request))
    assert all(len(blob) > FRESH_OVERHEAD for blob in blobs)

    key = client._response_key
    epoch = hosted.epoch
    root = hosted.state_root()
    gc.collect()
    gc.disable()
    try:
        verify_samples = []
        for _ in range(max(BENCH_TRIALS, 3)):
            started = time.perf_counter()
            for blob in blobs:
                unseal_fresh(key, blob, epoch, root)
            verify_samples.append(time.perf_counter() - started)
    finally:
        gc.enable()
    verify_s = trimmed_mean(verify_samples) / len(blobs)

    ratio = verify_s / warm_query_s if warm_query_s > 0 else 0.0
    rows = [
        ["warm query", warm_query_s, 1.0],
        ["freshness verify", verify_s, ratio],
    ]
    write_result(
        "freshness_overhead",
        format_table(
            ["path", "t_per_query", "fraction"],
            rows,
            f"Freshness — rxi2 verify vs warm query over {len(queries)} "
            f"queries, cost {ratio * 100:.2f}% "
            f"(limit {OVERHEAD_LIMIT * 100:.0f}%)",
        ),
    )
    _append_series(
        "freshness_overhead",
        {
            "query_count": len(queries),
            "warm_query_s": warm_query_s,
            "verify_s": verify_s,
            "fraction": ratio,
            "limit_fraction": OVERHEAD_LIMIT,
            "mean_blob_bytes": sum(len(b) for b in blobs) / len(blobs),
        },
    )
    assert ratio <= OVERHEAD_LIMIT or verify_s <= ABSOLUTE_FLOOR_S, (
        f"freshness verify {verify_s * 1e6:.1f}µs/query is "
        f"{ratio * 100:.1f}% of a warm query "
        f"(limit {OVERHEAD_LIMIT * 100:.0f}%)"
    )
