"""Tree node classes for the XML document model.

The model follows the paper's conventions:

* data values are attached only to leaves (paper footnote 1) — a leaf value
  is a :class:`Text` node that is the single child of its element;
* attributes are first-class leaf-like nodes (:class:`Attribute`) so that the
  attribute axis (``@coverage``) participates in encryption schemes, DSI
  indexing and OPESS exactly like leaf elements do;
* a hosted (partially encrypted) database is an ordinary tree in which some
  subtrees have been replaced by :class:`EncryptedBlockNode` placeholders
  that carry the ciphertext and the block id referenced by the server-side
  encryption block table.

Nodes know their parent and their ordinal position, which makes the axes
needed by the XPath engine (following-sibling, ancestor, ...) cheap to
compute without auxiliary indexes.
"""

from __future__ import annotations

from typing import Iterator, Optional


class Node:
    """Base class for every node in a document tree.

    Concrete subclasses are :class:`Element`, :class:`Text`,
    :class:`Attribute` and :class:`EncryptedBlockNode`.  The base class
    implements the parent/children bookkeeping and the traversal helpers
    shared by all of them.
    """

    __slots__ = ("parent", "children", "node_id")

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        self.children: list[Node] = []
        #: Document-order identifier, assigned by :meth:`Document.renumber`.
        #: ``-1`` until the node is attached to a numbered document.
        self.node_id: int = -1

    # ------------------------------------------------------------------
    # Structure mutation
    # ------------------------------------------------------------------
    def append(self, child: "Node") -> "Node":
        """Attach ``child`` as the last child of this node and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: "Node") -> "Node":
        """Attach ``child`` at position ``index`` among the children."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.insert(index, child)
        return child

    def detach(self) -> "Node":
        """Remove this node from its parent and return it."""
        if self.parent is None:
            return self
        self.parent.children.remove(self)
        self.parent = None
        return self

    def replace_with(self, other: "Node") -> "Node":
        """Swap this node for ``other`` in the parent's child list."""
        if self.parent is None:
            raise ValueError("cannot replace the root of a tree")
        if other.parent is not None:
            raise ValueError("replacement node already has a parent")
        parent = self.parent
        index = parent.children.index(self)
        parent.children[index] = other
        other.parent = parent
        self.parent = None
        return other

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def child_index(self) -> int:
        """Position of this node among its siblings (0-based)."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    @property
    def depth(self) -> int:
        """Number of ancestors between this node and the root."""
        count = 0
        node = self.parent
        while node is not None:
            count += 1
            node = node.parent
        return count

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "Node") -> bool:
        """Return True if ``other`` is a strict descendant of this node."""
        return any(ancestor is self for ancestor in other.ancestors())

    def iter(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document (pre-) order."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["Node"]:
        """Yield strict descendants in document order."""
        iterator = self.iter()
        next(iterator)  # skip self
        yield from iterator

    def following_siblings(self) -> Iterator["Node"]:
        """Yield siblings strictly after this node, in document order."""
        if self.parent is None:
            return
        seen_self = False
        for sibling in self.parent.children:
            if seen_self:
                yield sibling
            elif sibling is self:
                seen_self = True

    def preceding_siblings(self) -> Iterator["Node"]:
        """Yield siblings strictly before this node, in reverse order."""
        if self.parent is None:
            return
        before: list[Node] = []
        for sibling in self.parent.children:
            if sibling is self:
                break
            before.append(sibling)
        yield from reversed(before)

    # ------------------------------------------------------------------
    # Content helpers
    # ------------------------------------------------------------------
    @property
    def is_leaf_element(self) -> bool:
        """True for an element whose only child is a text node."""
        return (
            isinstance(self, Element)
            and len(self.children) == 1
            and isinstance(self.children[0], Text)
        )

    def text_value(self) -> Optional[str]:
        """The data value of a leaf element/attribute, or None.

        For an :class:`Attribute` this is the attribute value; for a leaf
        element it is the text content; for anything else it is None.
        """
        if isinstance(self, Attribute):
            return self.value
        if isinstance(self, Text):
            return self.value
        if self.is_leaf_element:
            child = self.children[0]
            assert isinstance(child, Text)
            return child.value
        return None

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted at this node (incl. self)."""
        return sum(1 for _ in self.iter())

    def clone(self, _map: "Optional[dict[int, Node]]" = None) -> "Node":
        """Deep-copy the subtree rooted at this node (parent left unset).

        ``_map`` (optional) is filled with ``id(original) -> copy`` for
        every node in the subtree, attributes included — the parallel
        engine's answer memo uses it to relocate answer nodes inside a
        cloned pruned document without re-evaluating the query.
        """
        raise NotImplementedError


class Element(Node):
    """An XML element: a tag, attribute children and element/text children.

    Attributes are stored in :attr:`attributes` (document order preserved)
    and are *not* part of :attr:`Node.children`; the XPath attribute axis and
    the encryption machinery reach them through :meth:`attribute` /
    :attr:`attributes`.
    """

    __slots__ = ("tag", "attributes")

    def __init__(self, tag: str) -> None:
        super().__init__()
        if not tag:
            raise ValueError("element tag must be non-empty")
        self.tag = tag
        self.attributes: list[Attribute] = []

    def set_attribute(self, name: str, value: str) -> "Attribute":
        """Set (or overwrite) an attribute and return its node."""
        for attribute in self.attributes:
            if attribute.name == name:
                attribute.value = value
                return attribute
        attribute = Attribute(name, value)
        attribute.parent = self
        self.attributes.append(attribute)
        return attribute

    def attribute(self, name: str) -> Optional["Attribute"]:
        """Look up an attribute node by name."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        return None

    def remove_attribute(self, name: str) -> None:
        """Delete an attribute if present."""
        self.attributes = [a for a in self.attributes if a.name != name]

    def child_elements(self) -> Iterator["Element"]:
        """Yield element children only (skipping text)."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def find_elements(self, tag: str) -> Iterator["Element"]:
        """Yield descendant-or-self elements with the given tag."""
        for node in self.iter():
            if isinstance(node, Element) and node.tag == tag:
                yield node

    def clone(self, _map: "Optional[dict[int, Node]]" = None) -> "Element":
        copy = Element(self.tag)
        for attribute in self.attributes:
            attribute_copy = copy.set_attribute(
                attribute.name, attribute.value
            )
            if _map is not None:
                _map[id(attribute)] = attribute_copy
        for child in self.children:
            copy.append(child.clone(_map))
        if _map is not None:
            _map[id(self)] = copy
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} children={len(self.children)}>"


class Text(Node):
    """A text leaf carrying a data value."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def clone(self, _map: "Optional[dict[int, Node]]" = None) -> "Text":
        copy = Text(self.value)
        if _map is not None:
            _map[id(self)] = copy
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Text {self.value!r}>"


class Attribute(Node):
    """An attribute node; behaves like a named leaf for query purposes."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str) -> None:
        super().__init__()
        if not name:
            raise ValueError("attribute name must be non-empty")
        self.name = name
        self.value = value

    def clone(self, _map: "Optional[dict[int, Node]]" = None) -> "Attribute":
        copy = Attribute(self.name, self.value)
        if _map is not None:
            _map[id(self)] = copy
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Attribute {self.name}={self.value!r}>"


class EncryptedBlockNode(Node):
    """Placeholder for an encrypted subtree in a hosted database.

    The plaintext subtree is serialized, encrypted and stored as
    :attr:`payload`; the server addresses the block through
    :attr:`block_id`, which is also the key of the encryption block table.
    The placeholder keeps no plaintext information beyond the byte length of
    the ciphertext — which is exactly what the paper's size-based attacker
    is allowed to see.
    """

    __slots__ = ("block_id", "payload")

    def __init__(self, block_id: int, payload: bytes) -> None:
        super().__init__()
        self.block_id = block_id
        self.payload = payload

    def clone(
        self, _map: "Optional[dict[int, Node]]" = None
    ) -> "EncryptedBlockNode":
        copy = EncryptedBlockNode(self.block_id, self.payload)
        if _map is not None:
            _map[id(self)] = copy
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EncryptedBlock id={self.block_id} bytes={len(self.payload)}>"


def iter_encrypted_blocks(node: Node) -> Iterator[EncryptedBlockNode]:
    """Yield every :class:`EncryptedBlockNode` in ``node``'s subtree.

    Includes ``node`` itself when it is a block placeholder, in document
    (pre-) order.  This is the one shared definition of "blocks inside a
    shipped subtree": the server's ``blocks_shipped`` accounting, the
    client's placeholder decryption and the access-pattern trace recorder
    must all count the same set or the leakage harness keys off a lie.
    """
    for candidate in node.iter():
        if isinstance(candidate, EncryptedBlockNode):
            yield candidate


class Document:
    """A rooted XML document with stable document-order node numbering.

    The document wraps a single root :class:`Element` and assigns every node
    (elements, text and attributes) a ``node_id`` in document order.  The DSI
    index, the encryption block table and the test oracles all key on these
    ids, so :meth:`renumber` must be called after structural mutation — the
    mutating helpers in :mod:`repro.core.encryptor` do this for you.
    """

    __slots__ = ("root", "_nodes_by_id")

    def __init__(self, root: Element) -> None:
        if not isinstance(root, Element):
            raise TypeError("document root must be an Element")
        self.root = root
        self._nodes_by_id: dict[int, Node] = {}
        self.renumber()

    def renumber(self) -> None:
        """(Re)assign document-order node ids to the whole tree."""
        self._nodes_by_id.clear()
        counter = 0
        for node in self.iter_with_attributes():
            node.node_id = counter
            self._nodes_by_id[counter] = node
            counter += 1

    def iter_with_attributes(self) -> Iterator[Node]:
        """Yield all nodes in document order, attributes after their owner."""
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                yield from node.attributes
            stack.extend(reversed(node.children))

    def node_by_id(self, node_id: int) -> Node:
        """Resolve a document-order id back to its node."""
        return self._nodes_by_id[node_id]

    def size(self) -> int:
        """Total number of nodes (elements + text + attributes)."""
        return len(self._nodes_by_id)

    def elements(self) -> Iterator[Element]:
        """Yield all elements in document order."""
        for node in self.iter_with_attributes():
            if isinstance(node, Element):
                yield node

    def leaves(self) -> Iterator[Node]:
        """Yield every value-bearing leaf: leaf elements and attributes."""
        for node in self.iter_with_attributes():
            if isinstance(node, Attribute) or node.is_leaf_element:
                yield node

    def clone(
        self, _map: "Optional[dict[int, Node]]" = None
    ) -> "Document":
        """Deep-copy the document (fresh numbering, same order)."""
        return Document(self.root.clone(_map))

    def clone_numbered(
        self, _map: "Optional[dict[int, Node]]" = None
    ) -> "Document":
        """Deep-copy carrying the current numbering over in one pass.

        Equivalent to :meth:`clone` whenever the numbering is current
        (clone preserves document order, so renumbering the copy
        reassigns exactly the ids the originals already hold).  Folding
        the id transfer and the ``_nodes_by_id`` rebuild into the copy
        walk skips the separate renumber pass, which makes this the
        fast path for answer-memo hits that deep-copy a pristine
        document per hit.
        """
        nodes_by_id: dict[int, Node] = {}
        root = _clone_numbered_node(self.root, _map, nodes_by_id)
        root.parent = None
        copy = object.__new__(Document)
        copy.root = root
        copy._nodes_by_id = nodes_by_id
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document root={self.root.tag!r} nodes={self.size()}>"


def _clone_numbered_node(
    node: Node,
    mapping: "Optional[dict[int, Node]]",
    nodes_by_id: "dict[int, Node]",
) -> Node:
    """Copy a subtree, carrying node ids into ``nodes_by_id`` as it goes.

    The hot loop of the answer-memo hit path: constructors and attach
    helpers are bypassed in favour of ``__new__`` plus direct slot
    writes (the source tree already satisfies every invariant those
    helpers enforce).  The caller attaches the returned copy.
    """
    cls = node.__class__
    if cls is Element:
        copy: Node = Element.__new__(Element)
        copy.tag = node.tag
        attributes: list[Node] = []
        copy.attributes = attributes
        for attribute in node.attributes:
            dup = Attribute.__new__(Attribute)
            dup.name = attribute.name
            dup.value = attribute.value
            dup.parent = copy
            dup.children = []
            dup.node_id = attribute.node_id
            attributes.append(dup)
            nodes_by_id[attribute.node_id] = dup
            if mapping is not None:
                mapping[id(attribute)] = dup
        children: list[Node] = []
        copy.children = children
        for child in node.children:
            dup = _clone_numbered_node(child, mapping, nodes_by_id)
            dup.parent = copy
            children.append(dup)
    elif cls is Text:
        copy = Text.__new__(Text)
        copy.value = node.value
        copy.children = []
    elif cls is Attribute:
        copy = Attribute.__new__(Attribute)
        copy.name = node.name
        copy.value = node.value
        copy.children = []
    elif cls is EncryptedBlockNode:
        copy = EncryptedBlockNode.__new__(EncryptedBlockNode)
        copy.block_id = node.block_id
        copy.payload = node.payload
        copy.children = []
    else:  # pragma: no cover - subclasses keep the generic path
        copy = node.clone(mapping)
        copy.parent = None
    copy.node_id = node.node_id
    nodes_by_id[node.node_id] = copy
    if mapping is not None:
        mapping[id(node)] = copy
    return copy
