"""Structured observability for the secure query pipeline.

One :class:`Observability` context threads through the whole stack —
client, server, parallel engine, netsim channel, CLI — and bundles the
three concerns the paper's §7 "division of work" analysis needs:

* :class:`~repro.obs.span.Tracer` — nested timed spans per query;
  :class:`~repro.core.system.QueryTrace`'s scalar timing fields are a
  compatibility view *derived from* these spans, so the two always
  reconcile;
* :class:`~repro.obs.metrics.MetricsRegistry` — the global perf
  counters plus latency histograms, with JSON and Prometheus-text
  exporters;
* :class:`~repro.obs.slowlog.SlowQueryLog` — bounded top-N slowest
  queries with span breakdowns and fault/retry annotations.

``SecureXMLSystem.host(..., observability=False)`` disables the
recording half (tree-linking, histograms, slow log) while keeping the
measurements themselves — trace timing fields are populated either way.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    lint_prometheus,
    parse_prometheus,
)
from repro.obs.slowlog import SlowLogEntry, SlowQueryLog
from repro.obs.span import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.system import QueryTrace

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SlowLogEntry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "lint_prometheus",
    "parse_prometheus",
]


class Observability:
    """Tracer + metrics + slow log, as one context object."""

    def __init__(
        self,
        enabled: bool = True,
        slow_log_capacity: int = 32,
    ) -> None:
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog(capacity=slow_log_capacity)

    @classmethod
    def coerce(cls, value: Any) -> "Observability":
        """Normalize a constructor knob into an :class:`Observability`.

        ``None``/``True`` → a fresh enabled instance; ``False`` → a
        disabled one; an existing instance passes through (so several
        systems can share one context, or tests can inject a spy).
        """
        if isinstance(value, cls):
            return value
        if value is None or value is True:
            return cls(enabled=True)
        if value is False:
            return cls(enabled=False)
        raise TypeError(
            "observability must be an Observability instance, bool, or "
            f"None, not {type(value).__name__}"
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_query(
        self,
        trace: "QueryTrace",
        span: Span | None = None,
        failed: bool = False,
    ) -> None:
        """Fold one finished query into histograms and the slow log."""
        if not self.enabled:
            return
        self.metrics.observe("query_seconds", trace.total_s)
        if trace.backoff_s:
            self.metrics.observe("retry_backoff_seconds", trace.backoff_s)
        self.slow_log.record(trace, span, failed=failed)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_json(self) -> str:
        """Metrics snapshot plus slow-query log, as one JSON document."""
        payload = self.metrics.snapshot()
        payload["slow_queries"] = self.slow_log.as_dicts()
        return json.dumps(payload, indent=2, sort_keys=True)

    def export_prometheus(self) -> str:
        """Prometheus text exposition (counters + histograms only —
        the slow log is structural, not a metric)."""
        return self.metrics.to_prometheus()

    def reset(self) -> None:
        """Clear histograms and the slow log (counters are global and
        stay — reset those via ``repro.perf.counters.reset()``)."""
        self.metrics.reset_histograms()
        self.slow_log.clear()
