"""The client / data owner (§6.1, §6.4).

The client owns the master key and the OPESS plans.  Its two runtime jobs:

* **translate** a plaintext XPath query into the encrypted ``Qs`` — compile
  the twig, swap encrypted tags for Vernam tokens, rewrite value predicates
  into ciphertext key ranges (Figure 7);
* **post-process** the server's fragments — decrypt blocks, strip decoys,
  rebuild a pruned document in the original shape, and re-run the original
  query on it, which restores exactness (``Q(δ(Qs(η(D)))) = Q(D)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import hmac as _compare

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

from repro.core.decoy import remove_decoys
from repro.core.encryptor import HostedDatabase
from repro.core.integrity import (
    TamperedResponseError,
    seal_fresh,
    unseal_fresh,
)
from repro.core.parallel import WorkerPool
from repro.core.server import Fragment, ServerResponse
from repro.core.translate import PlanCache, QueryTranslator, TranslatedQuery
from repro.crypto.keyring import ClientKeyring
from repro.crypto.modes import cbc_decrypt
from repro.netsim.message import (
    MessageDecodeError,
    StreamChunk,
    decode_chunk,
    decode_response,
    encode_query,
)
from repro.perf import counters
from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Node,
    iter_encrypted_blocks,
)
from repro.xmldb.parser import ENCRYPTED_DATA_TAG, parse_fragment
from repro.xmldb.serializer import serialize
from repro.xpath import ast
from repro.xpath.axes import residual_pattern
from repro.xpath.compiler import UnsupportedQuery
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import QueryPlan, plan_query


@dataclass
class QueryAnswer:
    """The final, exact answer to a query."""

    nodes: list[Node]
    pruned_document: Document

    def clone(self) -> "QueryAnswer":
        """Independent deep copy (fresh document, relocated answer nodes).

        The parallel engine's answer memo hands out clones so a caller
        mutating one answer can never corrupt another — one document
        clone relocates every answer node through the clone map, with no
        re-evaluation of the query.
        """
        document = self.pruned_document.clone_numbered()
        relocate = document.node_by_id
        return QueryAnswer(
            nodes=[relocate(node.node_id) for node in self.nodes],
            pruned_document=document,
        )

    def canonical(self) -> list[str]:
        """Order-insensitive canonical form, for comparing answer sets."""
        return sorted(canonical_node(node) for node in self.nodes)

    def values(self) -> list[str]:
        """Leaf values of the answers (None-valued answers are skipped)."""
        out = []
        for node in self.nodes:
            value = node.text_value()
            if value is not None:
                out.append(value)
        return out

    def __len__(self) -> int:
        return len(self.nodes)


def canonical_node(node: Node) -> str:
    """Canonical string form of an answer node."""
    if isinstance(node, Attribute):
        return f"@{node.name}={node.value}"
    return serialize(node)


class Client:
    """The data owner's runtime state after hosting.

    ``enable_cache=False`` turns off the translated-plan and decrypted-
    block caches (the seed-equivalent behaviour, kept for the hot-path
    benchmarks and ablations).  Both caches are gated on the hosted
    database's scheme epoch, so an incremental update invalidates them
    without any call into the client.
    """

    def __init__(
        self,
        keyring: ClientKeyring,
        hosted: HostedDatabase,
        enable_cache: bool = True,
        obs: "Observability | None" = None,
    ) -> None:
        self._keyring = keyring
        self._hosted = hosted
        self._obs = obs
        self._root_tag = hosted.root_tag
        self._secure = hosted.secure
        self._translator = QueryTranslator(
            tag_cipher=keyring.tag_cipher,
            ope=keyring.ope,
            encrypted_tags=set(hosted.encrypted_tags),
            plaintext_keys=set(hosted.plaintext_keys),
            field_plans=dict(hosted.field_plans),
            field_tokens=dict(hosted.field_tokens),
        )
        self._plan_cache: PlanCache | None = (
            PlanCache() if enable_cache else None
        )
        self._block_cache: dict[int, Element] | None = (
            {} if enable_cache else None
        )
        self._tree_cache: dict[str, Element] | None = (
            {} if enable_cache else None
        )
        self._request_key, self._response_key = keyring.session_keys()
        self._request_cache: dict[str, bytes] | None = (
            {} if enable_cache else None
        )
        self._response_cache: dict[bytes, ServerResponse] | None = (
            {} if enable_cache else None
        )
        #: verified stream chunks keyed by their sealed bytes — the
        #: streamed twin of ``_response_cache`` (the server's stream
        #: cache replays identical bytes objects, so a warm chunk costs
        #: one cached-hash dict lookup)
        self._chunk_cache: dict[bytes, StreamChunk] | None = (
            {} if enable_cache else None
        )
        self._verified_payloads: dict[int, bytes] | None = (
            {} if enable_cache else None
        )
        self._cache_epoch = hosted.epoch

    # ------------------------------------------------------------------
    # Query translation (§6.1)
    # ------------------------------------------------------------------
    def translate(self, query: "str | ast.LocationPath") -> TranslatedQuery:
        """Translate a query to its server-side plan.

        Every parseable query now gets one: the planner picks the legacy
        twig lowering, the axis engine, or the residual document-root
        plan (``TranslatedQuery.plan_kind`` records which, and
        ``plan_reason`` why).  String queries hit the plan cache first: a
        repeated XPath under an unchanged scheme epoch reuses the
        previously translated ``Qs`` without re-deriving tokens or key
        ranges.
        """
        if self._plan_cache is not None and isinstance(query, str):
            epoch = self._hosted.epoch
            plan = self._plan_cache.get(query, epoch)
            if plan is None:
                plan = self._translate_uncached(query)
                self._plan_cache.put(query, epoch, plan)
            return plan
        return self._translate_uncached(query)

    def _translate_uncached(
        self, query: "str | ast.LocationPath"
    ) -> TranslatedQuery:
        path = query if isinstance(query, ast.LocationPath) else parse_xpath(query)
        plan = plan_query(path)
        try:
            translated = self._translator.translate(plan.pattern)
        except UnsupportedQuery as exc:
            if plan.kind == "residual":
                raise  # the residual pattern always translates
            # e.g. a value constraint on a wildcard node: degrade to the
            # residual plan rather than the naive protocol.
            plan = QueryPlan(
                kind="residual",
                pattern=residual_pattern(),
                reason=str(exc),
            )
            translated = self._translator.translate(plan.pattern)
        translated.plan_kind = plan.kind
        translated.plan_reason = plan.reason
        return translated

    # ------------------------------------------------------------------
    # Wire envelope (untrusted-server hardening)
    # ------------------------------------------------------------------
    def seal_request(
        self, translated: TranslatedQuery, cache_key: str | None = None
    ) -> bytes:
        """Encode and integrity-seal a translated query for the wire.

        ``cache_key`` (the original XPath string) lets a repeated query
        reuse its sealed bytes — same object, same cached hash — which is
        what keeps the server's wire cache a single dict lookup.
        """
        if self._request_cache is not None and cache_key is not None:
            self._check_epoch()
            blob = self._request_cache.get(cache_key)
            if blob is None:
                blob = self._seal_fresh(
                    self._request_key, encode_query(translated)
                )
                self._request_cache[cache_key] = blob
            return blob
        return self._seal_fresh(self._request_key, encode_query(translated))

    def seal_naive_request(self, xpath: str) -> bytes:
        """Seal the opaque naive-path request (the raw query string)."""
        return self._seal_fresh(self._request_key, xpath.encode("utf-8"))

    def _seal_fresh(self, key: bytes, payload: bytes) -> bytes:
        """Seal under the current commit epoch and client-held root.

        Reads the pair through :meth:`HostedDatabase.anchor` so it
        cannot tear across a concurrent commit — and so the anchor is
        recorded in the bounded history, keeping this envelope
        verifiable even if a concurrent writer supersedes the anchor
        while the request is in flight.
        """
        epoch, root = self._hosted.anchor()
        return seal_fresh(key, payload, epoch, root)

    def check_freshness(self, blob: bytes) -> None:
        """Cheap freshness pre-check on a sealed response blob.

        The cluster coordinator runs this *inside* the replica-failover
        loop (before the response leaves :meth:`ReplicaSet.exchange`),
        so a stale replica is identified — and demoted — at the moment
        it serves a rolled-back snapshot, rather than after the gather.
        Raises the same typed errors as :meth:`open_response`.
        """
        if self._response_cache is not None:
            self._check_epoch()
            if blob in self._response_cache:
                return  # already fully verified under this epoch
        unseal_fresh(
            self._response_key, blob,
            self._hosted.epoch, self._hosted.state_root(),
        )

    def open_response(self, blob: bytes) -> ServerResponse:
        """Verify a sealed wire response and decode it.

        Raises :class:`~repro.core.integrity.TamperedResponseError` for
        *any* byte-level difference from what the server sealed — a
        flipped bit, a truncation, a wholesale substitution — before a
        single byte is parsed.  Verified responses are cached by their
        sealed bytes, so the warm repeated-query path costs one dict
        lookup (the server hands back the identical bytes object).
        """
        if self._response_cache is not None:
            self._check_epoch()
            cached = self._response_cache.get(blob)
            if cached is not None:
                return cached
        payload = unseal_fresh(
            self._response_key, blob,
            self._hosted.epoch, self._hosted.state_root(),
        )
        try:
            response = decode_response(payload)
        except MessageDecodeError as exc:
            raise TamperedResponseError(str(exc)) from exc
        if self._response_cache is not None and not response.naive:
            # Naive responses hold the whole database as live fragment
            # objects; pinning one per scheme bloats the heap (and the
            # naive path is the cost baseline — it should stay honest).
            self._response_cache[blob] = response
        return response

    def open_chunk(self, blob: bytes) -> StreamChunk:
        """Verify and decode one sealed stream chunk.

        Same failure surface as :meth:`open_response`: any byte-level
        difference from what the server sealed raises
        :class:`~repro.core.integrity.TamperedResponseError` before a
        byte is parsed.  Sequencing (the header's chunk/fragment totals
        against each chunk's stream index) is the *caller's* job — the
        system validates it while pulling the stream, so a dropped or
        reordered chunk surfaces as the same typed error and retries.
        """
        if self._chunk_cache is not None:
            self._check_epoch()
            cached = self._chunk_cache.get(blob)
            if cached is not None:
                return cached
        payload = unseal_fresh(
            self._response_key, blob,
            self._hosted.epoch, self._hosted.state_root(),
        )
        try:
            chunk = decode_chunk(payload)
        except MessageDecodeError as exc:
            raise TamperedResponseError(str(exc)) from exc
        if self._chunk_cache is not None:
            self._chunk_cache[blob] = chunk
        return chunk

    def _verify_block(self, block_id: int, payload: bytes) -> None:
        """Check a ciphertext payload against its encrypt-then-MAC tag.

        The expected tag comes from the client's *own* hosted-state
        knowledge (``hosted.block_tags``), never from the response, so a
        server cannot strip or substitute tags.  Hostings built before
        tags existed have no entry and skip the check.
        """
        expected = self._hosted.block_tags.get(block_id)
        if expected is None:
            return
        if self._verified_payloads is not None:
            if self._verified_payloads.get(block_id) == payload:
                return
        actual = self._keyring.block_tag(block_id, payload)
        if not _compare.compare_digest(actual, expected):
            counters.add("integrity_failures")
            raise TamperedResponseError(
                f"block {block_id} failed integrity verification"
            )
        if self._verified_payloads is not None:
            self._verified_payloads[block_id] = payload

    # ------------------------------------------------------------------
    # Decryption (§6.4, first half)
    # ------------------------------------------------------------------
    def decrypt_fragments(
        self,
        response: ServerResponse,
        pool: "WorkerPool | None" = None,
    ) -> list[tuple[Fragment, Element]]:
        """Parse and fully decrypt every shipped fragment.

        Each fragment becomes a plaintext element tree: nested
        ``EncryptedData`` payloads are decrypted and spliced in, and decoys
        are stripped.

        With a worker ``pool`` the per-fragment work fans out and the
        results are re-ordered to input order, so the returned list is
        identical to the serial one.  The thread backend maps whole
        fragments (the shared caches stay warm across workers); the
        process backend cannot share live trees, so it bulk-ships only
        the raw CBC decryptions and keeps parsing and splicing here.
        """
        if pool is None or pool.workers < 2 or len(response.fragments) < 2:
            return [
                (fragment, self._fragment_tree(fragment.xml))
                for fragment in response.fragments
            ]
        if pool.backend == "process":
            return self._decrypt_fragments_bulk(response, pool)
        counters.add("parallel_decrypt_tasks", len(response.fragments))
        trees = pool.map_ordered(
            self._fragment_tree, [f.xml for f in response.fragments]
        )
        return list(zip(response.fragments, trees))

    def _decrypt_fragments_bulk(
        self, response: ServerResponse, pool: "WorkerPool"
    ) -> list[tuple[Fragment, Element]]:
        """Process-backend fragment decryption: bulk-ship the CBC work.

        Tag verification stays on this thread (the MAC key and the
        expected tags never leave the client's address space needlessly),
        parsing and decoy-stripping stay here too (trees don't pickle
        cheaply), and only the deduplicated ``(key, iv, payload)``
        decryptions cross the process boundary.
        """
        fragments = list(response.fragments)
        results: list[Element | None] = [None] * len(fragments)
        if self._tree_cache is not None:
            self._check_epoch()
        parsed: list[tuple[int, Element]] = []
        for index, fragment in enumerate(fragments):
            if self._tree_cache is not None:
                cached = self._tree_cache.get(fragment.xml)
                if cached is not None:
                    counters.add("tree_cache_hits")
                    results[index] = cached.clone()
                    continue
                counters.add("tree_cache_misses")
            parsed.append((index, parse_fragment(fragment.xml)))

        # Verify every ciphertext (cache hits included — a tampered
        # payload must never be masked by a stale cached plaintext),
        # then queue exactly one decryption per cache-missing block.
        jobs: dict[int, tuple[bytes, bytes]] = {}
        for _, root in parsed:
            for block_id, payload in self._iter_block_payloads(root):
                self._verify_block(block_id, payload)
                if (
                    self._block_cache is not None
                    and block_id in self._block_cache
                ):
                    counters.add("block_cache_hits")
                    continue
                if block_id not in jobs:
                    iv = self._keyring.block_iv(
                        block_id if self._secure else 0
                    )
                    jobs[block_id] = (iv, payload)
        plain: dict[int, Element] = {}
        if jobs:
            key = self._keyring.block_key_bytes()
            order = list(jobs)
            tasks = [(key,) + jobs[block_id] for block_id in order]
            counters.add("parallel_decrypt_tasks", len(tasks))
            counters.add("block_cache_misses", len(tasks))
            # Worker-side increments (blocks_decrypted, per-process
            # key_expansions) come back as per-task deltas merged by
            # map_ordered at join; crediting them here again would double
            # count.  A single task runs inline and counts itself anyway.
            plaintexts = pool.map_ordered(_decrypt_block_payload, tasks)
            for block_id, plaintext in zip(order, plaintexts):
                subtree = parse_fragment(plaintext.decode("utf-8"))
                plain[block_id] = subtree
                if self._block_cache is not None:
                    self._block_cache[block_id] = subtree

        def subtree_for(block_id: int) -> Element:
            if self._block_cache is not None:
                cached = self._block_cache.get(block_id)
                if cached is not None:
                    return cached.clone()
            return plain[block_id].clone()

        for index, root in parsed:
            if root.tag == ENCRYPTED_DATA_TAG:
                attribute = root.attribute("block-id")
                assert attribute is not None
                tree = subtree_for(int(attribute.value))
            else:
                tree = root
            for node in list(tree.iter()):
                if isinstance(node, EncryptedBlockNode):
                    node.replace_with(subtree_for(node.block_id))
            # Nested blocks surfaced *by* a decryption (none in the
            # current encryptor, but the serial path tolerates them)
            # fall back to the serial per-block machinery.
            self._decrypt_placeholders(tree)
            remove_decoys(tree)
            if self._tree_cache is not None:
                self._tree_cache[fragments[index].xml] = tree
                results[index] = tree.clone()
            else:
                results[index] = tree
        return [
            (fragments[i], results[i])  # type: ignore[misc]
            for i in range(len(fragments))
        ]

    def _iter_block_payloads(self, root: Element):
        """Yield every ``(block_id, ciphertext)`` a parsed fragment needs."""
        if root.tag == ENCRYPTED_DATA_TAG:
            attribute = root.attribute("block-id")
            assert attribute is not None
            yield int(attribute.value), bytes.fromhex(root.text_value() or "")
            return
        for node in iter_encrypted_blocks(root):
            yield node.block_id, node.payload

    def decrypt_fragment(self, xml: str) -> Element:
        """Decrypt one shipped fragment (the streaming pipeline's unit).

        Thread-safe under the worker pool: the caches it touches are
        plain dicts mutated with single (GIL-atomic) get/set operations
        on immutable keys, so the worst concurrent outcome is two workers
        building the same pristine tree and one harmlessly winning.
        """
        return self._fragment_tree(xml)

    def _fragment_tree(self, xml: str) -> Element:
        """Decrypted plaintext tree for one shipped fragment, via the cache.

        Keyed by the fragment's serialized text: the tree is a pure
        function of that text and the client's keys, and the server's own
        fragment cache hands back the identical string object for a
        repeated node, so the dict lookup reuses Python's cached string
        hash.  Cached trees are pristine; callers get deep clones because
        assembly re-parents them.

        Only the cache-*miss* path is instrumented (span + histogram):
        a warm hit is one dict lookup, and per-fragment instrumentation
        on it would cost more than the work it measures — the obs
        overhead benchmark gates exactly this.
        """
        if self._tree_cache is None:
            return self._traced_build_fragment_tree(xml)
        self._check_epoch()
        cached = self._tree_cache.get(xml)
        if cached is not None:
            counters.add("tree_cache_hits")
            return cached.clone()
        counters.add("tree_cache_misses")
        tree = self._traced_build_fragment_tree(xml)
        self._tree_cache[xml] = tree
        return tree.clone()

    def _traced_build_fragment_tree(self, xml: str) -> Element:
        obs = self._obs
        if obs is None or not obs.enabled:
            return self._build_fragment_tree(xml)
        with obs.tracer.span("decrypt_fragment") as span:
            tree = self._build_fragment_tree(xml)
        obs.metrics.observe("chunk_decrypt_seconds", span.finish())
        return tree

    def _build_fragment_tree(self, xml: str) -> Element:
        root = parse_fragment(xml)
        root = self._resolve_encrypted_root(root)
        self._decrypt_placeholders(root)
        remove_decoys(root)
        return root

    def _check_epoch(self) -> None:
        """Flush the decrypted caches when the scheme epoch moved on."""
        if self._hosted.epoch != self._cache_epoch:
            self.flush_caches()
            self._cache_epoch = self._hosted.epoch

    def flush_caches(self) -> None:
        """Drop every warm-path cache (plans, trees, blocks, wire blobs).

        Correctness never depends on the caches, so flushing is always
        safe; benchmarks use it to measure cold per-query costs.
        """
        if self._plan_cache is not None:
            self._plan_cache.clear()
        if self._block_cache is not None:
            self._block_cache.clear()
        if self._tree_cache is not None:
            self._tree_cache.clear()
        if self._request_cache is not None:
            self._request_cache.clear()
        if self._response_cache is not None:
            self._response_cache.clear()
        if self._chunk_cache is not None:
            self._chunk_cache.clear()
        if self._verified_payloads is not None:
            self._verified_payloads.clear()
        # The keyring memoizes per-block IV derivations; a "cold" query
        # that skipped those HMACs was not actually cold (found by the
        # flush-coverage audit; see tests/test_parallel_engine.py).
        self._keyring.flush_memoized()

    def _resolve_encrypted_root(self, root: Element) -> Element:
        if root.tag != ENCRYPTED_DATA_TAG:
            return root
        attribute = root.attribute("block-id")
        assert attribute is not None
        payload = bytes.fromhex(root.text_value() or "")
        return self._decrypt_block(int(attribute.value), payload)

    def _decrypt_block(self, block_id: int, payload: bytes) -> Element:
        """Decrypt one block to its plaintext subtree, through the cache.

        The payload is verified against its encrypt-then-MAC tag *before*
        any decryption or cache consultation, so a tampered ciphertext can
        never be masked by a stale cached plaintext.

        The cache keeps a pristine parsed copy per block id (decoys still
        in place — callers strip them from their own copy) and hands out
        deep clones, since the pipeline mutates the returned tree.  A
        scheme-epoch change flushes the whole cache: update operations
        re-encrypt or remove payloads under the *same* block ids.
        """
        if self._block_cache is not None:
            self._check_epoch()
        self._verify_block(block_id, payload)
        if self._block_cache is None:
            return self._decrypt_block_uncached(block_id, payload)
        cached = self._block_cache.get(block_id)
        if cached is not None:
            counters.add("block_cache_hits")
            return cached.clone()
        counters.add("block_cache_misses")
        subtree = self._decrypt_block_uncached(block_id, payload)
        self._block_cache[block_id] = subtree
        return subtree.clone()

    def _decrypt_block_uncached(self, block_id: int, payload: bytes) -> Element:
        iv = self._keyring.block_iv(block_id if self._secure else 0)
        plaintext = cbc_decrypt(self._keyring.block_cipher, iv, payload)
        return parse_fragment(plaintext.decode("utf-8"))

    def _decrypt_placeholders(self, root: Element) -> None:
        placeholders = list(iter_encrypted_blocks(root))
        for placeholder in placeholders:
            subtree = self._decrypt_block(
                placeholder.block_id, placeholder.payload
            )
            placeholder.replace_with(subtree)

    # ------------------------------------------------------------------
    # Post-processing (§6.4, second half)
    # ------------------------------------------------------------------
    def assemble(
        self, decrypted: list[tuple[Fragment, Element]]
    ) -> Document:
        """Rebuild a pruned plaintext document from decrypted fragments.

        Fragments re-attach under skeleton copies of their plaintext
        ancestor chains (merged by the server's stable ancestor ids), so
        absolute paths and depths in the original query keep their meaning.
        """
        whole_document = [
            root for fragment, root in decrypted if not fragment.ancestor_path
        ]
        if whole_document:
            # A fragment rooted at the document root subsumes everything.
            return Document(whole_document[0])

        pruned_root: Element | None = None
        skeleton: dict[int, Element] = {}
        for fragment, root in decrypted:
            path = fragment.ancestor_path
            top_tag, top_id = path[0]
            if pruned_root is None:
                pruned_root = Element(top_tag)
                skeleton[top_id] = pruned_root
            current = skeleton.get(top_id)
            if current is None:
                # Multiple distinct roots cannot happen in one document.
                raise ValueError("fragments disagree on the document root")
            for tag, ancestor_id in path[1:]:
                node = skeleton.get(ancestor_id)
                if node is None:
                    node = Element(tag)
                    skeleton[ancestor_id] = node
                    current.append(node)
                current = node
            current.append(root)
        if pruned_root is None:
            pruned_root = Element(self._root_tag)
        return Document(pruned_root)

    def post_process(
        self,
        query: "str | ast.LocationPath",
        pruned: Document,
    ) -> QueryAnswer:
        """Apply the original query to the pruned plaintext document."""
        nodes = evaluate(pruned, query)
        return QueryAnswer(nodes=nodes, pruned_document=pruned)


def _decrypt_block_payload(task: "tuple[bytes, bytes, bytes]") -> bytes:
    """One ``(key, iv, ciphertext)`` CBC decryption, pool-worker shaped.

    Module-level (and fed plain bytes) so a ``ProcessPoolExecutor`` can
    pickle it; :func:`repro.crypto.aes.aes128_for_key` memoizes the key
    expansion per process, so a warm worker pays it once.
    """
    key, iv, payload = task
    from repro.crypto.aes import aes128_for_key

    return cbc_decrypt(aes128_for_key(key), iv, payload)
