"""Ring-buffer slow-query log: the top-N slowest queries, with context.

Keeps the N worst queries *by total wall time* seen since startup (or
the last reset), each with its stage breakdown and the fault/retry
story from the netsim layer — enough to answer "why was this one slow"
(a naive fallback? three retries across a lossy channel? just a big
candidate set?) without re-running anything.

Bounded: a min-heap of size ``capacity`` evicts the fastest entry when
a slower query arrives, so memory stays O(capacity) under any traffic.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import TYPE_CHECKING, Any

from repro.obs.span import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.system import QueryTrace


class SlowLogEntry:
    """One logged query: scalar trace view + span tree + fault story."""

    __slots__ = (
        "query",
        "total_s",
        "stages",
        "attempts",
        "retries",
        "integrity_failures",
        "drops",
        "backoff_s",
        "fell_back",
        "naive",
        "plan",
        "fallback_reason",
        "failed",
        "answer_count",
        "span",
        "sequence",
    )

    def __init__(
        self,
        trace: "QueryTrace",
        span: Span | None,
        failed: bool,
        sequence: int,
    ) -> None:
        self.query = trace.query
        self.total_s = trace.total_s
        self.stages = {
            "translate": trace.translate_client_s,
            "server": trace.server_s,
            "transfer": trace.transfer_s,
            "decrypt": trace.decrypt_client_s,
            "postprocess": trace.postprocess_client_s,
        }
        self.attempts = trace.attempts
        self.retries = trace.retries
        self.integrity_failures = trace.integrity_failures
        self.drops = trace.drops
        self.backoff_s = trace.backoff_s
        self.fell_back = trace.fell_back
        self.naive = trace.naive
        self.plan = getattr(trace, "plan", "twig")
        self.fallback_reason = getattr(trace, "fallback_reason", None)
        self.failed = failed
        self.answer_count = trace.answer_count
        self.span = span
        self.sequence = sequence

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "query": self.query,
            "total_s": self.total_s,
            "stages": dict(self.stages),
            "attempts": self.attempts,
            "retries": self.retries,
            "integrity_failures": self.integrity_failures,
            "drops": self.drops,
            "backoff_s": self.backoff_s,
            "fell_back": self.fell_back,
            "naive": self.naive,
            "plan": self.plan,
            "fallback_reason": self.fallback_reason,
            "failed": self.failed,
            "answer_count": self.answer_count,
        }
        if self.span is not None:
            out["span"] = self.span.as_dict()
        return out

    def render(self) -> str:
        flags = []
        if self.failed:
            flags.append("FAILED")
        if self.fell_back:
            flags.append("fell-back")
        if self.naive:
            flags.append("naive")
        if self.plan not in ("twig", "naive"):
            flags.append(f"plan={self.plan}")
        if self.fallback_reason:
            flags.append(f"reason={self.fallback_reason!r}")
        if self.retries:
            flags.append(f"retries={self.retries}")
        if self.integrity_failures:
            flags.append(f"integrity_failures={self.integrity_failures}")
        if self.drops:
            flags.append(f"drops={self.drops}")
        if self.backoff_s:
            flags.append(f"backoff={self.backoff_s * 1000:.1f}ms")
        flag_text = f"  [{' '.join(flags)}]" if flags else ""
        stage_text = " ".join(
            f"{name}={seconds * 1000:.2f}ms"
            for name, seconds in self.stages.items()
        )
        return (
            f"{self.total_s * 1000:8.2f}ms  {self.query}{flag_text}\n"
            f"          {stage_text}"
        )


class SlowQueryLog:
    """Thread-safe bounded top-N log keyed on query wall time."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Min-heap of (total_s, sequence, entry): the root is the
        # *fastest* logged query, i.e. the eviction candidate.  The
        # sequence number breaks ties so entries never compare.
        self._heap: list[tuple[float, int, SlowLogEntry]] = []
        self._sequence = itertools.count()

    def record(
        self,
        trace: "QueryTrace",
        span: Span | None = None,
        failed: bool = False,
    ) -> None:
        with self._lock:
            sequence = next(self._sequence)
            entry = SlowLogEntry(trace, span, failed, sequence)
            item = (entry.total_s, sequence, entry)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif self._heap[0][0] < entry.total_s:
                heapq.heapreplace(self._heap, item)

    def entries(self) -> list[SlowLogEntry]:
        """Logged queries, slowest first (ties: most recent first)."""
        with self._lock:
            items = list(self._heap)
        return [
            entry
            for _, _, entry in sorted(
                items, key=lambda item: (-item[0], -item[1])
            )
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def as_dicts(self) -> list[dict[str, Any]]:
        return [entry.as_dict() for entry in self.entries()]

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "slow-query log: empty"
        header = (
            f"slow-query log — {len(entries)} slowest "
            f"(capacity {self.capacity})"
        )
        return "\n".join([header] + [entry.render() for entry in entries])
