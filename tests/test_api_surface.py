"""Small API-surface tests for corners not covered elsewhere."""

import pytest

from repro.xmldb.node import Attribute, Element
from repro.xmldb.serializer import serialize


class TestLazyPackageExports:
    def test_top_level_reexports(self):
        import repro

        assert repro.SecurityConstraint.parse("//a")
        assert repro.EncryptionScheme
        assert repro.SecureXMLSystem

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.nonexistent  # noqa: B018


class TestSerializerDebugForms:
    def test_bare_attribute_debug_form(self):
        attribute = Attribute("k", "v")
        assert serialize(attribute) == "@k='v'"

    def test_indented_nested_blocks(self):
        from repro.xmldb.node import EncryptedBlockNode

        root = Element("a")
        root.append(EncryptedBlockNode(1, b"\x00"))
        pretty = serialize(root, indent=True)
        assert "EncryptedData" in pretty
        assert pretty.count("\n") >= 2


class TestKeyringAuxiliary:
    def test_field_prf_per_field(self):
        from repro.crypto.keyring import ClientKeyring

        keyring = ClientKeyring(b"k" * 16)
        assert keyring.field_prf("a")(b"m") != keyring.field_prf("b")(b"m")
        assert keyring.field_prf("a")(b"m") == keyring.field_prf("a")(b"m")


class TestAggregateModuleCorners:
    def test_combine_without_plan_rejected(self):
        from repro.core.aggregates import ServerAggregate, combine_min_max
        from repro.crypto.ope import OrderPreservingEncryption

        reply = ServerAggregate(ciphertext=5, plaintext=None, scanned_entries=1)
        with pytest.raises(ValueError):
            combine_min_max(
                reply, None, OrderPreservingEncryption(b"k" * 16), "min"
            )

    def test_combine_empty_reply(self):
        from repro.core.aggregates import ServerAggregate, combine_min_max
        from repro.crypto.ope import OrderPreservingEncryption

        reply = ServerAggregate(
            ciphertext=None, plaintext=None, scanned_entries=0
        )
        assert combine_min_max(
            reply, None, OrderPreservingEncryption(b"k" * 16), "max"
        ) is None

    def test_server_min_max_rejects_count(self, healthcare_doc, healthcare_scs):
        from repro.core.aggregates import server_min_max
        from repro.core.system import SecureXMLSystem

        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        translated = system.client.translate("//SSN")
        with pytest.raises(ValueError):
            server_min_max(
                translated,
                system.hosted.structural_index,
                system.hosted.value_index,
                "count",
            )


class TestStatsAuxiliary:
    def test_iter_value_leaves(self, healthcare_doc):
        from repro.xmldb.stats import iter_value_leaves

        leaves = list(iter_value_leaves(healthcare_doc))
        assert len(leaves) == len(list(healthcare_doc.leaves()))


class TestNegativeLiterals:
    def test_lexer_negative_number(self):
        from repro.xpath.lexer import tokenize

        tokens = tokenize("[x>-5.5]")
        numbers = [t.value for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["-5.5"]

    def test_hyphenated_names_still_work(self):
        from repro.xpath.parser import parse_xpath

        path = parse_xpath("//foo-bar")
        assert path.steps[-1].test.name == "foo-bar"

    def test_negative_comparison_evaluates(self):
        from repro.xmldb.parser import parse_document
        from repro.xpath.evaluator import evaluate

        doc = parse_document("<r><t>-3</t><t>2</t></r>")
        assert [n.text_value() for n in evaluate(doc, "//t[.>-4]")] == [
            "-3",
            "2",
        ]


class TestSchemeSizeAccounting:
    def test_size_counts_decoys(self, healthcare_doc, healthcare_scs):
        from repro.core.scheme import build_scheme

        scheme = build_scheme(healthcare_doc, healthcare_scs, "opt")
        plain_nodes = sum(
            root.subtree_size()
            for root in scheme.block_roots(healthcare_doc)
        )
        assert scheme.size(healthcare_doc) > plain_nodes  # decoys included
