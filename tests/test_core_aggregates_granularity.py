"""Granularity semantics of server-side MIN/MAX (the documented caveat).

At coarse block granularity the server's fold can see occurrences that
share a matched block with the real matches.  That makes the server result
a fold over a *superset*: for MIN it can only be ≤ the exact answer, for
MAX only ≥ — never silently wrong in the unsafe direction.  These tests
pin down that bounded-error contract on every scheme.
"""

import pytest

from repro.core.system import SecureXMLSystem


def _as_number(value):
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, value)


@pytest.mark.parametrize("kind", ["opt", "app", "sub", "top"])
class TestSupersetBounds:
    def test_min_is_lower_bound(self, kind, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        covered = [
            f for f in sorted(system.hosted.field_plans)
            if not f.startswith("@")
        ]
        for field in covered[:2]:
            query = f"//{field}"
            exact = system.aggregate(query, "min", mode="exact")
            server = system.aggregate(query, "min", mode="server")
            if exact is None:
                continue
            assert server is not None
            assert _as_number(server) <= _as_number(exact), (kind, field)

    def test_max_is_upper_bound(self, kind, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        covered = [
            f for f in sorted(system.hosted.field_plans)
            if not f.startswith("@")
        ]
        for field in covered[:2]:
            query = f"//{field}"
            exact = system.aggregate(query, "max", mode="exact")
            server = system.aggregate(query, "max", mode="server")
            if exact is None:
                continue
            assert server is not None
            assert _as_number(server) >= _as_number(exact), (kind, field)

    def test_unrestricted_query_always_exact(self, kind, nasa_doc, nasa_scs):
        """With no structural restriction the superset IS the match set."""
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        covered = [
            f for f in sorted(system.hosted.field_plans)
            if not f.startswith("@")
        ]
        for field in covered[:1]:
            for func in ("min", "max"):
                exact = system.aggregate(f"//{field}", func, mode="exact")
                server = system.aggregate(f"//{field}", func, mode="server")
                assert server == exact, (kind, field, func)


class TestPerNodeGranularityExactness:
    def test_opt_restricted_queries_exact(self, nasa_doc, nasa_scs):
        """Per-node blocks (opt) make even restricted folds exact."""
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme="opt")
        query = "//author[age>40]/last"
        if "last" not in system.hosted.field_plans:
            pytest.skip("cover changed")
        exact = system.aggregate(query, "min", mode="exact")
        server = system.aggregate(query, "min", mode="server")
        assert server == exact
