"""Replica sets: R identical servers per shard, with failover.

Replication in this model is *identical state* — every replica of a
shard is a :class:`~repro.cluster.shard.ShardServer` over the same
hosted database with the same placement, reached over its own sealed
channel (optionally a :class:`~repro.netsim.faults.FaultyChannel`).  A
shard exchange walks the replicas round-robin: a retryable failure
(integrity violation or dropped transfer — exactly the monolithic
:data:`_RETRYABLE` set) triggers failover to the next replica with the
retry policy's modelled backoff, and only when every replica has been
tried ``max_attempts`` times does the shard surface
:class:`ClusterDegradedError`.  That error is a
:class:`~repro.core.system.QueryFailedError`, so the system-level
invariant is unchanged: a query returns the exact answer or a typed
error, never a silent wrong one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.integrity import (
    FreshnessError,
    IntegrityError,
    RollbackDetectedError,
)
from repro.core.system import QueryFailedError
from repro.netsim.channel import Channel
from repro.netsim.faults import TransferDropped
from repro.perf import counters
from repro.perf.counters import PerfCounters

from repro.cluster.shard import ShardServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.system import QueryTrace, RetryPolicy
    from repro.obs import Observability

#: Failures that trigger failover to the next replica (the same set the
#: monolithic retry loop treats as transient).
_RETRYABLE = (IntegrityError, TransferDropped)


class ClusterDegradedError(QueryFailedError):
    """Every replica of a needed shard failed; the query cannot complete."""


@dataclass
class Replica:
    """One server instance of a shard, with its own channel."""

    replica_id: int
    server: ShardServer
    channel: Channel


@dataclass
class ShardStats:
    """Cumulative per-shard accounting the admin view renders."""

    shard_id: int
    exchanges: int = 0
    failovers: int = 0
    degraded: int = 0
    fragments_returned: int = 0
    blocks_shipped: int = 0
    epoch_bumps: int = 0
    server_s: float = 0.0
    transfer_s: float = 0.0
    #: Replicas demoted for serving rolled-back / stale state.
    demotions: int = 0
    #: Demoted replicas resynced and re-admitted to the rotation.
    resyncs: int = 0
    #: Largest commit-epoch lag ever observed from a stale replica.
    max_epoch_lag: int = 0

    def as_row(self) -> dict[str, object]:
        return {
            "shard": self.shard_id,
            "exchanges": self.exchanges,
            "failovers": self.failovers,
            "degraded": self.degraded,
            "demotions": self.demotions,
            "resyncs": self.resyncs,
            "epoch_lag": self.max_epoch_lag,
            "fragments": self.fragments_returned,
            "blocks": self.blocks_shipped,
            "epoch_bumps": self.epoch_bumps,
            "t_server": self.server_s,
            "t_transfer": self.transfer_s,
        }


class ReplicaSet:
    """The R replicas of one shard plus the failover exchange loop."""

    def __init__(
        self,
        shard_id: int,
        replicas: list[Replica],
        policy: "RetryPolicy",
        obs: "Observability",
    ) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.shard_id = shard_id
        self.replicas = replicas
        self.policy = policy
        self._obs = obs
        self.stats = ShardStats(shard_id)
        #: This shard's own counter registry (the global one still gets
        #: every increment; this one isolates the shard's share).
        self.perf = PerfCounters()
        #: replica_ids currently benched for serving stale state; they
        #: are skipped by the rotation until resynced and re-admitted.
        self._demoted: set[int] = set()

    def exchange(
        self,
        request_blob: bytes,
        trace: "QueryTrace",
        rng: random.Random,
        naive: bool = False,
        verify=None,
    ) -> tuple[bytes, float]:
        """One sealed request/response against this shard, with failover.

        Returns ``(sealed_response, shard_seconds)`` where the seconds
        are everything this shard cost — successful exchange time plus
        the modelled backoff of any failed attempts — which is what the
        coordinator's makespan model maxes over.  Raises
        :class:`ClusterDegradedError` once every replica has exhausted
        the policy's attempt budget.

        ``verify`` (the coordinator passes the client's
        ``check_freshness``) runs on the sealed response *inside* the
        loop, so a replica serving a rolled-back snapshot is identified
        while we still know which replica answered: it is demoted from
        the rotation, the exchange fails over to the freshest peer, and
        once any replica answers fresh the benched ones are resynced
        (caches flushed, recorded channel state cleared) and re-admitted.
        """
        budget = self.policy.max_attempts * len(self.replicas)
        spent = 0.0
        last_error: Exception | None = None
        last_fault: str | None = None
        for attempt in range(budget):
            replica = self._pick_replica(attempt)
            if attempt > 0:
                delay = self.policy.backoff_for(attempt - 1, rng)
                trace.backoff_s += delay
                spent += delay
                if self._obs.enabled:
                    # Modelled, not slept — mirror the monolithic retry
                    # loop so span totals reconcile with ``backoff_s``.
                    span = self._obs.tracer.begin(
                        "backoff", shard=self.shard_id, failover=attempt
                    )
                    span.set_duration(delay)
                    self._obs.metrics.observe("retry_backoff_seconds", delay)
            try:
                sealed, elapsed = self._attempt(
                    replica, request_blob, trace, naive
                )
                if verify is not None:
                    verify(sealed)
                if self._demoted:
                    self._readmit_demoted()
                return sealed, spent + elapsed
            except _RETRYABLE as exc:
                last_error = exc
                last_fault = getattr(
                    replica.channel, "last_fault_kind", None
                )
                counters.add("cluster_failovers")
                self.perf.add("cluster_failovers")
                self.stats.failovers += 1
                trace.cluster_failovers += 1
                if isinstance(exc, FreshnessError):
                    counters.add("freshness_failures")
                    trace.freshness_failures += 1
                    self._demote(replica, exc)
                if isinstance(exc, IntegrityError):
                    counters.add("integrity_failures")
                    trace.integrity_failures += 1
                else:
                    trace.drops += 1
        counters.add("cluster_degraded")
        self.perf.add("cluster_degraded")
        self.stats.degraded += 1
        detail = f"last error {type(last_error).__name__}"
        if last_fault is not None:
            detail += f", last fault {last_fault}"
        raise ClusterDegradedError(
            f"shard {self.shard_id}: all {len(self.replicas)} replicas "
            f"failed after {budget} attempts ({detail}): {last_error}"
        ) from last_error

    def _pick_replica(self, attempt: int) -> Replica:
        """Round-robin over non-demoted replicas.

        If *every* replica is benched the full rotation is used anyway —
        a demoted replica answering is strictly better than giving up
        without spending the attempt budget.
        """
        active = [
            replica for replica in self.replicas
            if replica.replica_id not in self._demoted
        ] or self.replicas
        return active[attempt % len(active)]

    def _demote(self, replica: Replica, exc: FreshnessError) -> None:
        """Bench a replica that served rolled-back / stale state."""
        if replica.replica_id not in self._demoted:
            self._demoted.add(replica.replica_id)
            counters.add("replica_demotions")
            self.perf.add("replica_demotions")
            self.stats.demotions += 1
        lag = exc.epoch_lag
        self.stats.max_epoch_lag = max(self.stats.max_epoch_lag, lag)
        if isinstance(exc, RollbackDetectedError):
            counters.add("rollback_detected")
            self.perf.add("rollback_detected")
        if self._obs.enabled:
            self._obs.metrics.observe("shard_epoch_lag", float(lag))

    def _readmit_demoted(self) -> None:
        """Resync benched replicas off the fresh state and re-admit them.

        Runs after a *confirmed-fresh* exchange: each benched replica's
        server caches are flushed (so nothing sealed at the old epoch
        survives) and its channel's recorded snapshot store is cleared
        (the modelled replica has caught up).  Only then does it rejoin
        the rotation.
        """
        for replica in self.replicas:
            if replica.replica_id not in self._demoted:
                continue
            replica.server.flush_caches()
            resync = getattr(replica.channel, "resync", None)
            if resync is not None:
                resync()
            counters.add("replica_resyncs")
            self.perf.add("replica_resyncs")
            self.stats.resyncs += 1
        self._demoted.clear()

    def _attempt(
        self,
        replica: Replica,
        request_blob: bytes,
        trace: "QueryTrace",
        naive: bool,
    ) -> tuple[bytes, float]:
        """One replica round trip: request over, evaluate, response back."""
        tracer = self._obs.tracer
        elapsed = 0.0
        with tracer.span(
            "shard", shard=self.shard_id, replica=replica.replica_id
        ):
            blob, seconds = replica.channel.transfer(
                "client->server", "query", request_blob
            )
            trace.transfer_s += seconds
            self.stats.transfer_s += seconds
            elapsed += seconds

            with tracer.span("server", shard=self.shard_id) as span:
                if naive:
                    sealed = replica.server.ship_all_wire(blob)
                else:
                    sealed = replica.server.answer_wire(blob)
            seconds = span.finish()
            trace.server_s += seconds
            self.stats.server_s += seconds
            elapsed += seconds

            sealed, seconds = replica.channel.transfer(
                "server->client", "answer", sealed
            )
            trace.transfer_s += seconds
            self.stats.transfer_s += seconds
            elapsed += seconds
        counters.add("shard_exchanges")
        self.perf.add("shard_exchanges")
        self.stats.exchanges += 1
        if self._obs.enabled:
            self._obs.metrics.observe("shard_exchange_seconds", elapsed)
        return sealed, elapsed

    # ------------------------------------------------------------------
    # Maintenance fan-out
    # ------------------------------------------------------------------
    def bump_epoch(self) -> None:
        """Invalidate every replica's caches (a routed update hit us)."""
        for replica in self.replicas:
            replica.server.shard_epoch += 1
        counters.add("shard_epoch_bumps")
        self.perf.add("shard_epoch_bumps")
        self.stats.epoch_bumps += 1

    def flush_caches(self) -> None:
        for replica in self.replicas:
            replica.server.flush_caches()

    def owns_root(self) -> bool:
        return self.replicas[0].server.owns_root()

    def total_bytes(self) -> int:
        return sum(replica.channel.total_bytes() for replica in self.replicas)
