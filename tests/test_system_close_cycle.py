"""`close()` → query → `close()` cycles keep the system fully coherent.

`SecureXMLSystem.close()` shuts the worker pool down but the system stays
usable — the pool restarts lazily on the next query.  These tests pin the
whole surface across such cycles: answers, `last_trace`, the answer memo,
the perf counters and the observability context all keep working.
"""

import pytest

from repro.core.system import SecureXMLSystem
from repro.perf import counters

QUERY = "//patient/SSN"


@pytest.fixture
def system(healthcare_doc, healthcare_scs):
    system = SecureXMLSystem.host(healthcare_doc, healthcare_scs, parallel=2)
    yield system
    system.close()


class TestCloseQueryCycles:
    def test_query_after_close_restarts_the_pool(self, system):
        baseline = system.query(QUERY).canonical()
        system.close()
        assert system.query(QUERY).canonical() == baseline
        system.close()
        assert system.query(QUERY).canonical() == baseline

    def test_close_is_idempotent(self, system):
        system.close()
        system.close()
        assert system.query(QUERY) is not None

    def test_last_trace_coherent_across_cycles(self, system):
        system.query(QUERY)
        first = system.last_trace
        system.close()
        system.query("//pname")
        second = system.last_trace
        assert first is not second
        assert second.query == "//pname"
        assert second.attempts >= 1
        if second.span is not None:
            assert second.span.duration_s is not None

    def test_answer_memo_survives_close(self, system):
        system.execute_many([QUERY])
        system.close()
        before = counters.snapshot()
        system.execute_many([QUERY])
        delta = counters.delta_since(before)
        assert delta.get("answer_cache_hits", 0) == 1
        # The memo hit's trace reports zero timings — nothing ran.
        assert system.last_trace.server_s == 0.0

    def test_execute_many_after_close(self, system):
        queries = [QUERY, "//pname", QUERY]
        baseline = [a.canonical() for a in system.execute_many(queries)]
        system.close()
        again = [a.canonical() for a in system.execute_many(queries)]
        assert again == baseline
        assert len(system.last_batch_traces) == len(queries)

    def test_counters_keep_accumulating_across_cycles(self, system):
        before = counters.snapshot()
        system.query(QUERY)
        system.close()
        system.flush_caches()
        system.query(QUERY)
        delta = counters.delta_since(before)
        # Two cold executions: the second cycle's decrypt work is counted
        # even though the pool was restarted in between.
        assert delta.get("blocks_decrypted", 0) > 0

    def test_observability_keeps_recording_across_cycles(self, system):
        system.query(QUERY)
        system.close()
        system.query("//pname")
        obs = system.observability()
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["query_seconds"]["count"] == 2
        assert len(obs.slow_log) == 2

    def test_serial_system_close_is_harmless(
        self, healthcare_doc, healthcare_scs
    ):
        serial = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        serial.close()
        assert serial.query(QUERY) is not None
        serial.close()


class TestClusterCloseCycles:
    """The same contract through the coordinator's shard pools."""

    @pytest.fixture
    def cluster_system(self, healthcare_doc, healthcare_scs):
        from repro.cluster import ClusterConfig

        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            parallel=2,
            cluster=ClusterConfig(shards=2, replicas=2),
        )
        yield system
        system.close()

    def test_query_after_close_restarts(self, cluster_system):
        baseline = cluster_system.query(QUERY).canonical()
        cluster_system.close()
        assert cluster_system.query(QUERY).canonical() == baseline
        cluster_system.close()
        assert cluster_system.query(QUERY).canonical() == baseline

    def test_close_is_idempotent(self, cluster_system):
        cluster_system.close()
        cluster_system.close()
        assert cluster_system.query(QUERY) is not None

    def test_shard_servers_share_one_pool(self, cluster_system):
        """Every replica rides the system pool — nothing leaks per shard."""
        pools = {
            id(replica.server._pool)
            for replica_set in cluster_system.coordinator.replica_sets
            for replica in replica_set.replicas
        }
        assert len(pools) == 1

    def test_trace_coherent_across_cycles(self, cluster_system):
        cluster_system.query(QUERY)
        assert cluster_system.last_trace.cluster_shards == 2
        cluster_system.close()
        cluster_system.query("//pname")
        trace = cluster_system.last_trace
        assert trace.query == "//pname"
        assert trace.cluster_shards == 2

    def test_execute_many_after_close(self, cluster_system):
        queries = [QUERY, "//pname", QUERY]
        baseline = [
            a.canonical() for a in cluster_system.execute_many(queries)
        ]
        cluster_system.close()
        again = [
            a.canonical() for a in cluster_system.execute_many(queries)
        ]
        assert again == baseline


class TestConcurrentClose:
    """Satellite of PR 8: `close()` is safe under concurrency.

    A serving drain can race an explicit `close()` (or another drain),
    so the teardown must tolerate being entered from several threads at
    once — and still leave the system usable afterwards.
    """

    def test_threaded_double_close(self, system):
        import threading

        system.query(QUERY)
        errors = []

        def closer():
            try:
                system.close()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert system.query(QUERY) is not None

    def test_threaded_close_on_cluster_system(
        self, healthcare_doc, healthcare_scs
    ):
        import threading

        from repro.cluster import ClusterConfig

        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            parallel=2,
            cluster=ClusterConfig(shards=2, replicas=2),
        )
        system.query(QUERY)
        errors = []

        def closer():
            try:
                system.close()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert system.query(QUERY) is not None
        system.close()

    def test_remote_system_close_races_server_drain(
        self, healthcare_doc, healthcare_scs
    ):
        """The drain-vs-close race the serving layer actually hits."""
        import threading

        from repro.serving import ServingServer, remote_system

        local = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        server = ServingServer()
        server.register_tenant("t0", local)
        remote = remote_system(local, server.start(), "t0")
        remote.query(QUERY)
        errors = []

        def run(target):
            try:
                target()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(remote.close,)),
            threading.Thread(target=run, args=(server.drain,)),
            threading.Thread(target=run, args=(remote.close,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        server.stop()
        assert errors == []
