"""Measurement harness for the §7 experiments.

Runs query classes against hosted systems, averages per-stage traces the
way the paper does ("all values reported are the average of 5 trials after
dropping the maximum and minimum"), computes the §7.4 saving ratios, and
formats rows as fixed-width tables that the benchmark suite prints —
these printed tables are the reproduction's counterparts of the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import QueryTrace, SecureXMLSystem


@dataclass
class QueryClassResult:
    """Averaged stage costs for one (scheme, query-class) cell."""

    scheme: str
    query_class: str
    server_s: float
    decrypt_s: float
    postprocess_s: float
    transfer_bytes: float
    blocks: float
    query_count: int
    #: perf-counter deltas accumulated while this cell ran (cache
    #: traffic, blocks decrypted, key expansions — see repro.perf)
    perf: dict[str, int] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.server_s + self.decrypt_s + self.postprocess_s


def trimmed_mean(values: list[float]) -> float:
    """Mean after dropping one max and one min (the paper's §7.1 protocol).

    Falls back to the plain mean when there are fewer than 3 samples.
    """
    if not values:
        return 0.0
    if len(values) < 3:
        return sum(values) / len(values)
    trimmed = sorted(values)[1:-1]
    return sum(trimmed) / len(trimmed)


def average_traces(traces: list[QueryTrace]) -> dict[str, float]:
    """Trimmed-mean of every stage across traces."""
    return {
        "t_server": trimmed_mean([t.server_s for t in traces]),
        "t_decrypt": trimmed_mean([t.decrypt_client_s for t in traces]),
        "t_post": trimmed_mean([t.postprocess_client_s for t in traces]),
        "t_translate": trimmed_mean([t.translate_client_s for t in traces]),
        "t_transfer": trimmed_mean([t.transfer_s for t in traces]),
        "bytes": trimmed_mean([float(t.transfer_bytes) for t in traces]),
        "blocks": trimmed_mean([float(t.blocks_returned) for t in traces]),
        "t_total": trimmed_mean([t.total_s for t in traces]),
    }


def run_query_class(
    system: SecureXMLSystem,
    query_class: str,
    queries: list[str],
    naive: bool = False,
    cold: bool = False,
) -> QueryClassResult:
    """Run a query set and return the averaged stage breakdown.

    ``cold=True`` flushes the warm-path caches before every query so the
    result reflects independent executions (the paper's measurement
    protocol), not cross-query amortization.

    Counter deltas come from the system's observability context (its
    :class:`~repro.obs.MetricsRegistry`) rather than from poking the
    global counter module — the harness sees exactly what the exporters
    export.
    """
    metrics = system.observability().metrics
    before = metrics.counter_values()
    traces: list[QueryTrace] = []
    for query in queries:
        if cold:
            system.flush_caches()
        if naive:
            system.naive_query(query)
        else:
            system.query(query)
        assert system.last_trace is not None
        traces.append(system.last_trace)
    averaged = average_traces(traces)
    return QueryClassResult(
        scheme=system.scheme.kind,
        query_class=query_class,
        server_s=averaged["t_server"],
        decrypt_s=averaged["t_decrypt"],
        postprocess_s=averaged["t_post"],
        transfer_bytes=averaged["bytes"],
        blocks=averaged["blocks"],
        query_count=len(queries),
        perf=metrics.counters_delta(before),
    )


def counter_report(delta: dict[str, int]) -> str:
    """Render nonzero perf-counter deltas as a fixed-width table.

    Companion to the stage tables: where those say how long a stage
    took, this says what the hot paths actually did (blocks decrypted,
    key expansions) and how the caches traded (hits vs. misses).
    """
    rows = [
        [name, value] for name, value in sorted(delta.items()) if value
    ]
    if not rows:
        return "perf counters: all zero"
    return format_table(["counter", "count"], rows, title="perf counters")


def saving_ratio(baseline_seconds: float, improved_seconds: float) -> float:
    """The §7.4 saving ratio S = (T_baseline − T_improved) / T_baseline."""
    if baseline_seconds <= 0:
        return 0.0
    return (baseline_seconds - improved_seconds) / baseline_seconds


def format_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Fixed-width text table (the benchmark suite's figure output)."""
    rendered = [
        [
            f"{cell:.4f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
