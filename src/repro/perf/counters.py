"""Global performance-counter registry.

One process-wide :class:`PerfCounters` instance (:data:`counters`) is
incremented from the hot paths themselves — the AES key schedule, the CBC
decryptor, and every cache layer.  Nothing here imports the rest of the
package (the crypto layer imports *us*).

Since the parallel query engine landed, hot paths run on worker threads,
so every mutation goes through :meth:`PerfCounters.add`, which serializes
the read-modify-write under one process-wide lock.  A bare ``counters.x
+= 1`` is *not* safe under concurrency (the interpreter can preempt
between the read and the write, losing increments) and is kept only for
single-threaded test scaffolding; library code must use ``add``.  Reads
(:meth:`snapshot`, :meth:`delta_since`, :meth:`hit_rate`) take the same
lock, so a snapshot is a consistent cut even while workers increment.

Process-backend accounting rule
-------------------------------

Increments made inside a ``ProcessPoolExecutor`` worker mutate the *child
process's* registry and would otherwise be lost.  The worker pool closes
that gap at join: each process-backend task snapshots the child registry
around the work and returns its per-task delta alongside the result, and
:meth:`WorkerPool.map_ordered <repro.core.parallel.WorkerPool.map_ordered>`
folds the deltas into this registry via :meth:`PerfCounters.merge`.  Work
counters (``blocks_decrypted``, cache traffic, …) therefore report equal
totals for the thread and process backends on the same workload.

The one deliberate exception is ``key_expansions``: the AES key schedule
is memoized *per process*, so every worker process pays (and reports) its
own expansion where the thread backend pays one.  That is a true account
of work done — process isolation really does re-expand the key — so the
deltas are merged as-is rather than normalized away.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Cumulative operation and cache-traffic counts.

    ``*_hits`` / ``*_misses`` pairs cover one cache layer each:

    * ``plan`` — the client's translated-query plan cache;
    * ``fragment`` — the server's serialized-fragment cache;
    * ``block`` — the client's decrypted-block cache;
    * ``tree`` — the client's fully decrypted fragment-tree cache
      (parse + block decryption + decoy stripping, one level above the
      block cache);
    * ``interval`` — the structural index's per-tag sorted low-bound
      arrays used by descendant joins;
    * ``answer`` — the parallel engine's completed-exchange memo
      (epoch-gated final answers, cloned per hit);
    * ``columnar`` — the structural index's flat plane snapshot (the
      columnar backend's join representation, dropped on epoch bumps).
    """

    key_expansions: int = 0
    blocks_encrypted: int = 0
    blocks_decrypted: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    fragment_cache_hits: int = 0
    fragment_cache_misses: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    tree_cache_hits: int = 0
    tree_cache_misses: int = 0
    interval_cache_hits: int = 0
    interval_cache_misses: int = 0
    epoch_invalidations: int = 0
    # --- untrusted-server hardening (fault channel / integrity / retry) ---
    faults_dropped: int = 0
    faults_corrupted: int = 0
    faults_truncated: int = 0
    faults_duplicated: int = 0
    faults_delayed: int = 0
    #: Channel-level rollback attacks: a recorded stale-but-validly-MACed
    #: response substituted for the fresh one.
    faults_rolled_back: int = 0
    query_retries: int = 0
    integrity_failures: int = 0
    #: Subset of integrity_failures rejected by the freshness envelope
    #: (epoch/Merkle-root verification), not by the MAC itself.
    freshness_failures: int = 0
    #: Freshness failures whose authenticated epoch was *older* than the
    #: client's — a detected rollback to a pre-update snapshot.
    rollback_detected: int = 0
    naive_fallbacks: int = 0
    queries_failed: int = 0
    # --- parallel engine (streaming chunks / worker pool / answer memo) ---
    answer_cache_hits: int = 0
    answer_cache_misses: int = 0
    chunks_streamed: int = 0
    parallel_decrypt_tasks: int = 0
    sharded_filter_runs: int = 0
    # --- cluster (scatter–gather, replica failover, routed updates) ---
    cluster_scatters: int = 0
    cluster_failovers: int = 0
    cluster_degraded: int = 0
    shard_exchanges: int = 0
    shard_epoch_bumps: int = 0
    #: Replicas benched for serving stale state, and benched replicas
    #: resynced + re-admitted after a confirmed-fresh exchange.
    replica_demotions: int = 0
    replica_resyncs: int = 0
    # --- columnar backend (plane snapshot cache / vectorized sweeps) ---
    columnar_cache_hits: int = 0
    columnar_cache_misses: int = 0
    columnar_plane_builds: int = 0
    columnar_join_sweeps: int = 0
    # --- serving layer (socket front door) ---
    serving_connections: int = 0
    serving_requests: int = 0
    serving_streams: int = 0
    serving_updates: int = 0
    #: Requests refused because the bounded in-flight queue was full.
    backpressure_rejections: int = 0
    #: Requests sealed at a just-superseded anchor, accepted after
    #: re-verification against the historical root for their epoch
    #: (bounded ``Server.freshness_window``, serving layer only).
    requests_accepted_in_window: int = 0
    #: Sealed commands rejected by the replay dedup: a blob whose MAC
    #: tag was already applied within the live freshness window.
    serving_replays_rejected: int = 0
    #: Graceful drains completed (in-flight finished, caches flushed,
    #: storage fsynced).
    serving_drains: int = 0
    # --- access-pattern leakage tier (trace recorder / countermeasures) ---
    # Deliberately *not* named ``*_cache_hits``: decoy and padding
    # fetches are cover traffic, not cache traffic, and must never
    # register as a cache layer or skew ``hit_rate()`` — the warm-path
    # hit rates keep describing real work with any LeakagePolicy on.
    #: Block fetches the evaluated answers actually required.
    leakage_real_fetches: int = 0
    #: Decoy block fetches injected by the policy's seeded stream.
    leakage_decoy_fetches: int = 0
    #: Padding fetches added to round trace lengths up to the bucket.
    leakage_pad_fetches: int = 0
    #: Ciphertext bytes read for real fetches (the overhead denominator).
    leakage_real_bytes: int = 0
    #: Ciphertext bytes read for decoy + padding fetches (the numerator).
    leakage_extra_bytes: int = 0
    #: Scatter fan-outs issued in shuffled order.
    leakage_shuffled_scatters: int = 0
    #: Observed traces appended to the recorder.
    leakage_traces_recorded: int = 0

    def add(self, name: str, amount: int = 1) -> None:
        """Thread-safe increment (the only mutation hot paths may use)."""
        with _LOCK:
            setattr(self, name, getattr(self, name) + amount)

    def merge(self, delta: dict[str, int]) -> None:
        """Fold a child process's counter delta into this registry.

        One lock acquisition for the whole delta; unknown names raise
        (a delta can only legitimately contain field names).
        """
        if not delta:
            return
        with _LOCK:
            for name, amount in delta.items():
                if amount:
                    setattr(self, name, getattr(self, name) + amount)

    def cache_layers(self) -> tuple[str, ...]:
        """Names of the cache layers with a hits/misses counter pair."""
        suffix = "_cache_hits"
        return tuple(
            f.name[: -len(suffix)]
            for f in fields(self)
            if f.name.endswith(suffix)
        )

    def snapshot(self) -> dict[str, int]:
        """Current values as a plain dict (safe to hold across resets)."""
        with _LOCK:
            return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        return {
            name: value - before.get(name, 0)
            for name, value in self.snapshot().items()
        }

    def reset(self) -> None:
        """Zero every counter (benchmark isolation)."""
        with _LOCK:
            for f in fields(self):
                setattr(self, f.name, 0)

    def hit_rate(self, cache: str) -> float:
        """Hit rate in [0, 1] for one cache layer (0.0 when untouched).

        Raises :class:`ValueError` naming the known layers for anything
        else — a typo'd layer name must not surface as an
        ``AttributeError`` from the registry's internals.
        """
        known = self.cache_layers()
        if cache not in known:
            raise ValueError(
                f"unknown cache layer {cache!r}; known layers: "
                + ", ".join(known)
            )
        with _LOCK:
            hits = getattr(self, f"{cache}_cache_hits")
            misses = getattr(self, f"{cache}_cache_misses")
        total = hits + misses
        return hits / total if total else 0.0


#: One process-wide reentrant-free lock guarding every counter mutation.
#: Module-level (not a dataclass field) so ``fields()`` iteration, reset
#: and snapshots keep seeing counter attributes only.
_LOCK = threading.Lock()

#: The process-wide registry every hot path increments.
counters = PerfCounters()
