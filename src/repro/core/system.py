"""End-to-end secure XML database system (Figure 1).

:class:`SecureXMLSystem` wires the pieces together: hosting (scheme
construction + encryption + metadata), query translation, server
evaluation, the modelled network channel, and client post-processing.
Every query returns the exact answer plus a :class:`QueryTrace` recording
the per-stage costs that the paper's evaluation (Fig. 9, §7.2, §7.3)
breaks out: translation time on both sides, query processing time on the
server, transfer size/time, decryption time and post-processing time on
the client.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Optional

from repro.core.client import Client, QueryAnswer
from repro.core.columnar import resolve_backend
from repro.core.constraints import SecurityConstraint
from repro.core.encryptor import HostedDatabase, host_database
from repro.core.integrity import (
    FreshnessError,
    IntegrityError,
    RollbackDetectedError,
    TamperedResponseError,
)
from repro.core.leakage import LeakageContext
from repro.core.parallel import ParallelConfig, WorkerPool
from repro.core.scheme import EncryptionScheme, build_scheme
from repro.core.server import Server, ServerResponse
from repro.crypto.keyring import ClientKeyring
from repro.netsim.channel import Channel
from repro.netsim.faults import TransferDropped
from repro.netsim.message import MessageDecodeError, assemble_stream
from repro.obs import Observability, Span
from repro.perf import counters
from repro.xmldb.node import Document
from repro.xpath.compiler import UnsupportedQuery

_DEFAULT_MASTER_KEY = b"repro-demo-master-key-0123456789"

#: Failures the retry loop treats as transient wire/server trouble.
_RETRYABLE = (IntegrityError, TransferDropped)


class QueryFailedError(RuntimeError):
    """A query exhausted its retries (and fallback) without an answer.

    Raised instead of ever returning a possibly-wrong answer: under the
    untrusted-server posture the outcome of a query is always either the
    exact plaintext answer or a typed error.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline parameters for one query exchange.

    Backoff is *modelled* (recorded in the trace and counted against the
    deadline, like the channel's wire time) rather than slept, so chaos
    sweeps with thousands of retries stay fast.  The jitter stream is
    seeded, keeping the whole failure handling deterministic: same seed,
    same faults, same schedule of retries.
    """

    max_attempts: int = 4
    naive_attempts: int = 2
    base_backoff_s: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.5  # each delay is scaled by 1 - jitter*U[0,1)
    deadline_s: float = 30.0
    naive_fallback: bool = True
    seed: int = 0

    def backoff_for(self, retry_index: int, rng: random.Random) -> float:
        """Modelled delay before retry number ``retry_index`` (0-based)."""
        delay = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_multiplier**retry_index,
        )
        return delay * (1.0 - self.jitter * rng.random())


@dataclass
class QueryTrace:
    """Per-stage cost breakdown for one query (the Fig. 9 quantities).

    Since the observability layer landed, the scalar timing fields here
    are a *compatibility view*: each is assigned from the duration of the
    correspondingly named span in :attr:`span` (``translate``, ``server``,
    ``transfer``, ``decrypt``, ``postprocess``, ``backoff``), so
    ``span.total(name)`` and the matching field always reconcile — one
    measurement, two presentations.
    """

    query: str
    naive: bool = False
    translate_client_s: float = 0.0
    server_s: float = 0.0
    transfer_bytes: int = 0
    transfer_s: float = 0.0
    decrypt_client_s: float = 0.0
    postprocess_client_s: float = 0.0
    blocks_returned: int = 0
    fragments_returned: int = 0
    answer_count: int = 0
    candidate_counts: dict[str, int] = dataclass_field(default_factory=dict)
    # --- fault handling (untrusted-server hardening) ---
    attempts: int = 0
    retries: int = 0
    integrity_failures: int = 0
    #: Subset of ``integrity_failures`` that were freshness violations
    #: (rolled-back or stale state rather than byte tampering).
    freshness_failures: int = 0
    drops: int = 0
    fell_back: bool = False
    backoff_s: float = 0.0
    # --- query planning (axis engine) ---
    #: Plan tier that served the query: ``"twig"`` (legacy pattern-tree
    #: lowering), ``"axis"`` (interval-algebra axis engine),
    #: ``"residual"`` (typed document-root plan), or ``"naive"`` when no
    #: server-side plan could run at all.
    plan: str = "twig"
    #: Why the query left the twig fast path — the ``UnsupportedQuery``
    #: (or ``ResidualRequired``) message, or a retry-exhaustion note for
    #: a degraded query.  ``None`` while the twig plan serves.
    fallback_reason: "str | None" = None
    # --- cluster (scatter–gather execution; zero on the monolithic path) ---
    cluster_shards: int = 0
    cluster_failovers: int = 0
    #: Modelled concurrent completion time of the scatter: max over
    #: shards of (server + wire + failover backoff) plus the gather.
    #: ``server_s``/``transfer_s`` stay *sums* over shards so span
    #: reconciliation (``span.total(...)``) keeps working; this field is
    #: the cluster's answer to "how long would N parallel shards take".
    cluster_makespan_s: float = 0.0
    #: Root of the query's span tree (None when tracing is disabled or
    #: the trace came from the answer memo).  Excluded from comparisons
    #: and reprs: two traces of the same exchange stay equal.
    span: "Span | None" = dataclass_field(
        default=None, repr=False, compare=False
    )

    @property
    def client_s(self) -> float:
        """Total client-side time (translate + decrypt + post-process)."""
        return (
            self.translate_client_s
            + self.decrypt_client_s
            + self.postprocess_client_s
        )

    @property
    def total_s(self) -> float:
        """End-to-end query time including modelled wire + backoff time."""
        return self.client_s + self.server_s + self.transfer_s + self.backoff_s

    def as_row(self) -> dict[str, object]:
        """Flat dict for benchmark tables."""
        return {
            "query": self.query,
            "naive": self.naive,
            "t_translate": self.translate_client_s,
            "t_server": self.server_s,
            "t_transfer": self.transfer_s,
            "t_decrypt": self.decrypt_client_s,
            "t_post": self.postprocess_client_s,
            "t_total": self.total_s,
            "bytes": self.transfer_bytes,
            "blocks": self.blocks_returned,
            "answers": self.answer_count,
            "retries": self.retries,
            "fell_back": self.fell_back,
            "plan": self.plan,
            "fallback_reason": self.fallback_reason,
        }


@dataclass
class HostingTrace:
    """Costs of the hosting step (the §7.4 quantities)."""

    scheme_kind: str
    scheme_size_nodes: int
    block_count: int
    encrypt_s: float
    hosted_bytes: int
    plaintext_bytes: int
    decoy_count: int
    index_entries: int
    value_index_entries: int


class SecureXMLSystem:
    """A hosted database plus its owner: the complete Figure 1 pipeline."""

    def __init__(
        self,
        client: Client,
        server: Server,
        hosted: HostedDatabase,
        scheme: EncryptionScheme,
        channel: Channel,
        hosting_trace: HostingTrace,
        keyring: ClientKeyring,
        fast_path: bool = True,
        retry_policy: RetryPolicy | None = None,
        parallel: ParallelConfig | None = None,
        pool: WorkerPool | None = None,
        observability: "Observability | bool | None" = None,
        cluster: "object | None" = None,
        cluster_faults: "object | None" = None,
        backend: "str | None" = None,
        leakage: "object | None" = None,
    ) -> None:
        self.client = client
        self.server = server
        # Resolve once (None → REPRO_BACKEND → "object") so the server,
        # every cluster shard and introspection all agree on one name.
        self.backend = resolve_backend(
            backend if backend is not None else server.backend
        )
        self.hosted = hosted
        self.scheme = scheme
        self.channel = channel
        self.hosting_trace = hosting_trace
        self.last_trace: QueryTrace | None = None
        self.last_batch_traces: list[QueryTrace] = []
        self.retry_policy = retry_policy or RetryPolicy()
        self._backoff_rng = random.Random(self.retry_policy.seed)
        self._keyring = keyring
        self._fast_path = fast_path
        self.parallel = parallel or ParallelConfig(workers=0)
        self._pool = pool if self.parallel.enabled else None
        self._close_lock = threading.Lock()
        # One observability context threads through every layer: the
        # system owns it and wires it into its collaborators, so spans
        # opened deep in the client/server/channel nest under the query
        # span regardless of which layer opened them.
        self._obs = Observability.coerce(observability)
        client._obs = self._obs
        server._obs = self._obs
        channel.obs = self._obs
        if self._pool is not None:
            self._pool.obs = self._obs
        #: epoch-gated completed-exchange memo (parallel engine only):
        #: xpath → (pristine answer, pristine trace).  Hits hand out
        #: clones, so callers can mutate answers freely.
        self._answer_memo: (
            dict[str, tuple[QueryAnswer, QueryTrace]] | None
        ) = ({} if self.parallel.enabled else None)
        self._memo_epoch = hosted.epoch
        # Sharded cluster execution (lazy import: the cluster package
        # imports this module for QueryFailedError).  ``coerce`` returns
        # None for the exact legacy single-server path; otherwise the
        # coordinator replaces the monolithic exchange entirely while
        # ``self.server`` stays available for direct/introspective use.
        from repro.cluster.placement import ClusterConfig

        self.cluster = ClusterConfig.coerce(cluster)
        self._coordinator = None
        if self.cluster is not None:
            from repro.cluster.coordinator import ClusterCoordinator

            self._coordinator = ClusterCoordinator.build(
                hosted,
                keyring,
                self.cluster,
                retry_policy=self.retry_policy,
                obs=self._obs,
                pool=self._pool,
                enable_cache=fast_path,
                min_shard=self.parallel.min_shard,
                channel_template=channel,
                faults=cluster_faults,
                backend=self.backend,
            )
        # Access-pattern leakage tier (see repro.core.leakage): one
        # context shared by the monolithic server and every shard
        # replica, so the attacker harness and the countermeasures see
        # one policy and one recorder.  ``None`` (with REPRO_LEAKAGE
        # unset) leaves every path exactly as before.
        self.leakage = LeakageContext.coerce(leakage)
        if self.leakage is not None:
            server.attach_leakage(self.leakage, observer="server")
            if self._coordinator is not None:
                self._coordinator.attach_leakage(self.leakage)

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    @classmethod
    def host(
        cls,
        document: Document,
        constraints: list[SecurityConstraint],
        scheme: "str | EncryptionScheme" = "opt",
        master_key: bytes = _DEFAULT_MASTER_KEY,
        channel: Channel | None = None,
        secure: bool = True,
        fast_path: bool = True,
        retry_policy: RetryPolicy | None = None,
        parallel: "ParallelConfig | bool | int | None" = None,
        observability: "Observability | bool | None" = None,
        cluster: "object | None" = None,
        cluster_faults: "object | None" = None,
        backend: "str | None" = None,
        leakage: "object | None" = None,
    ) -> "SecureXMLSystem":
        """Encrypt ``document`` under the given scheme and stand up a system.

        ``scheme`` may be one of the §7.1 kinds (``"opt"``, ``"app"``,
        ``"sub"``, ``"top"``), the §4.1 strawman ``"leaf"``, or a prebuilt
        :class:`EncryptionScheme`.  ``secure=False`` hosts without decoys
        and with deterministic block encryption — insecure by design, for
        the attack demonstrations only.  ``fast_path=False`` disables the
        T-table AES and every query cache (seed-equivalent behaviour,
        kept as the baseline for the hot-path benchmarks); the hosted
        bytes are identical either way.

        ``parallel`` configures the parallel query engine (see
        :meth:`ParallelConfig.coerce`): ``None`` reads ``REPRO_WORKERS``,
        ``False`` forces the exact serial pipeline, ``True``/an int/a
        :class:`ParallelConfig` enable the streaming protocol, the shared
        worker pool, sharded server evaluation and the answer memo.
        Answers are byte-identical either way — parallelism changes the
        schedule, never the result.

        ``observability`` wires the tracing/metrics/slow-log context (see
        :class:`~repro.obs.Observability.coerce`): ``None``/``True``
        builds an enabled context, ``False`` a disabled one (spans are
        still timed — the trace fields depend on them — but nothing is
        linked, logged or exported), and an existing instance is shared.

        ``cluster`` shards the hosted database across N server instances
        with scatter–gather execution (see
        :meth:`~repro.cluster.placement.ClusterConfig.coerce`): ``None``
        reads ``REPRO_SHARDS``/``REPRO_REPLICAS``, ``False``/an int
        ``<= 1`` force the exact legacy single-server path, an int
        ``>= 2`` names the shard count, and a ``ClusterConfig`` passes
        through (including ``shards=1``, which exercises the coordinator
        over a single shard).  Answers are byte-identical at any (N, R).
        ``cluster_faults`` injects a :class:`~repro.netsim.faults
        .FaultPolicy` (or a ``(shard, replica) -> policy`` callable) into
        the per-replica channels for failover testing.

        ``backend`` selects the server's join representation (see
        :func:`~repro.core.columnar.resolve_backend`): ``None`` reads
        ``REPRO_BACKEND``, ``"object"`` walks the entry forest,
        ``"columnar"`` sweeps flat plane arrays.  Answers are
        byte-identical either way — the backend changes the
        representation the join runs over, never the result.

        ``leakage`` enables the access-pattern leakage tier (see
        :meth:`~repro.core.leakage.LeakageContext.coerce`): ``None``
        reads ``REPRO_LEAKAGE`` (unset → tier off, zero overhead),
        ``True`` the full countermeasure set, a string a policy spec
        like ``"pad=8,decoys=16,shuffle=1"``, or a
        :class:`~repro.core.leakage.LeakagePolicy`/``LeakageContext``
        directly.  Countermeasures run strictly below the wire, so
        answers stay byte-identical with any policy.
        """
        from repro.xmldb.serializer import serialize

        if isinstance(scheme, str):
            scheme_obj = build_scheme(document, constraints, scheme)
        else:
            scheme_obj = scheme
        keyring = ClientKeyring(master_key, fast_aes=fast_path)
        config = ParallelConfig.coerce(parallel)
        pool = WorkerPool(config) if config.enabled else None

        started = time.perf_counter()
        hosted = host_database(document, scheme_obj, keyring, secure=secure)
        encrypt_seconds = time.perf_counter() - started

        hosting_trace = HostingTrace(
            scheme_kind=scheme_obj.kind,
            scheme_size_nodes=scheme_obj.size(document),
            block_count=hosted.block_count(),
            encrypt_s=encrypt_seconds,
            hosted_bytes=hosted.hosted_size_bytes(),
            plaintext_bytes=len(serialize(document).encode("utf-8")),
            decoy_count=hosted.decoy_count,
            index_entries=len(hosted.structural_index.all_entries()),
            value_index_entries=hosted.value_index.total_entries(),
        )
        return cls(
            client=Client(keyring, hosted, enable_cache=fast_path),
            server=Server(
                hosted,
                enable_cache=fast_path,
                session_keys=keyring.session_keys(),
                pool=pool,
                min_shard=config.min_shard,
                backend=backend,
            ),
            hosted=hosted,
            scheme=scheme_obj,
            channel=channel or Channel(),
            hosting_trace=hosting_trace,
            keyring=keyring,
            fast_path=fast_path,
            retry_policy=retry_policy,
            parallel=config,
            pool=pool,
            observability=observability,
            cluster=cluster,
            cluster_faults=cluster_faults,
            leakage=leakage,
        )

    def observability(self) -> Observability:
        """The system's observability context (tracer, metrics, slow log)."""
        return self._obs

    def flush_caches(self) -> None:
        """Drop every client- and server-side warm-path cache.

        Benchmarks call this between queries to measure cold per-query
        costs (the paper's protocol has no cross-query amortization).
        """
        self.client.flush_caches()
        self.server.flush_caches()
        if self._coordinator is not None:
            self._coordinator.flush_caches()
        if self._answer_memo is not None:
            self._answer_memo.clear()

    @property
    def coordinator(self):
        """The cluster coordinator (``None`` on the single-server path)."""
        return self._coordinator

    @property
    def keyring(self) -> ClientKeyring:
        """The owner's keyring (the serving layer derives session MACs)."""
        return self._keyring

    @property
    def fast_path(self) -> bool:
        """Whether client-side caching was enabled at construction."""
        return self._fast_path

    def close(self) -> None:
        """Shut down the worker pool (idempotent; restarts on next use).

        In cluster mode the coordinator's shard servers share the same
        pool; its close dedups by pool identity, so closing both here is
        safe in any order, any number of times.  The lock makes
        *concurrent* closes safe too: a serving drain can race an
        explicit ``close()`` (or a second drain), and both the
        coordinator teardown and the pool shutdown must not interleave
        with themselves.
        """
        with self._close_lock:
            if self._coordinator is not None:
                self._coordinator.close()
            if self._pool is not None:
                self._pool.close()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, xpath: str) -> QueryAnswer:
        """Answer a query through the secure pipeline; trace in last_trace.

        Queries outside the server-evaluable fragment transparently fall
        back to the naive protocol (still exact, just unpruned).

        The exchange is hardened against an untrusted wire and server:
        every payload crosses the channel as integrity-sealed bytes, a
        failed verification or a dropped transfer is retried with
        exponential backoff (modelled, deterministic — see
        :class:`RetryPolicy`), a repeatedly failing translated query
        degrades to the naive full-shipping path, and a query that cannot
        complete before the deadline raises :class:`QueryFailedError`.
        The outcome is always the exact answer or a typed error — never a
        silent wrong answer.

        With the parallel engine enabled the exchange streams the
        response chunk-by-chunk (decryption overlapping the server's
        serialization) and a completed exchange feeds the epoch-gated
        answer memo, so a repeated query under an unchanged scheme epoch
        is served as a clone without touching the wire.
        """
        memo = self._memo_lookup(xpath)
        if memo is not None:
            answer, trace = memo
            self.last_trace = trace
            return answer
        result = self._run_query(xpath, deferred=False)
        assert isinstance(result, QueryAnswer)
        return result

    def _run_query(
        self, xpath: str, deferred: bool
    ) -> "QueryAnswer | tuple[ServerResponse, QueryTrace]":
        """One full retry-managed query.

        ``deferred=False`` finishes inline and returns the answer (the
        :meth:`query` behaviour).  ``deferred=True`` (the pipelined batch
        path) returns ``(response, trace)`` after a successful exchange
        so the caller can overlap post-processing with the next query's
        server work; queries that complete inline anyway (naive path,
        untranslatable queries) still return the finished answer.

        Opens the query's root span and keeps it ambient for the whole
        run, so every stage span — including those opened by the client,
        server, channel and pool workers — nests under it.  The root is
        finished (and the query folded into the metrics/slow log) by
        :meth:`_finish`, which for a deferred query may run later on a
        pool worker; a query that fails outright is finished and recorded
        here, annotated ``failed``.
        """
        trace = QueryTrace(query=xpath)
        tracer = self._obs.tracer
        root = tracer.begin("query", query=xpath)
        if tracer.enabled:
            trace.span = root
        with tracer.activate(root):
            try:
                return self._run_query_attempts(xpath, trace, deferred)
            except QueryFailedError:
                root.annotate(failed=True)
                root.finish()
                self._obs.record_query(trace, trace.span, failed=True)
                raise

    def _run_query_attempts(
        self, xpath: str, trace: QueryTrace, deferred: bool
    ) -> "QueryAnswer | tuple[ServerResponse, QueryTrace]":
        policy = self.retry_policy
        tracer = self._obs.tracer
        started_wall = time.perf_counter()

        with tracer.span("translate") as span:
            try:
                translated = self.client.translate(xpath)
            except UnsupportedQuery as exc:
                # The planner's residual tier makes this near-unreachable
                # (every parseable query gets *some* server-side plan),
                # but the typed degrade stays: count it and record why.
                translated = None
                trace.plan = "naive"
                trace.fallback_reason = str(exc)
                counters.add("naive_fallbacks")
        trace.translate_client_s = span.finish()
        if translated is not None:
            trace.plan = translated.plan_kind
            trace.fallback_reason = translated.plan_reason

        last_error: Exception | None = None
        if translated is not None:
            for attempt in range(policy.max_attempts):
                self._pre_attempt(attempt, trace, started_wall, policy)
                attempt_span: Span | None = None
                try:
                    with tracer.span(
                        "attempt", number=trace.attempts
                    ) as attempt_span:
                        if self._coordinator is not None:
                            # Cluster path: the coordinator handles its
                            # own replica failover internally; a shard
                            # with no surviving replica surfaces as a
                            # ClusterDegradedError (a QueryFailedError,
                            # not retryable here).
                            response = self._coordinator.scatter_gather(
                                self.client,
                                xpath,
                                translated,
                                trace,
                                self._backoff_rng,
                            )
                            jobs = None
                        elif self._pool is not None:
                            response, jobs = self._secure_exchange_stream(
                                xpath, translated, trace, prefetch=not deferred
                            )
                        else:
                            response = self._secure_exchange(
                                xpath, translated, trace
                            )
                            jobs = None
                    if deferred:
                        return response, trace
                    return self._finish(xpath, response, trace, jobs)
                except _RETRYABLE as exc:
                    last_error = self._record_failure(exc, trace)
                    if attempt_span is not None:
                        attempt_span.annotate(error=type(exc).__name__)
            if not policy.naive_fallback:
                counters.add("queries_failed")
                raise QueryFailedError(
                    f"query failed after {trace.attempts} attempts "
                    f"({self._failure_detail(trace, last_error)}): "
                    f"{last_error}"
                ) from last_error
            trace.fell_back = True
            trace.plan = "naive"
            trace.fallback_reason = (
                f"retries exhausted after {trace.attempts} attempts: "
                f"{last_error}"
            )
            counters.add("naive_fallbacks")

        for attempt in range(policy.naive_attempts):
            self._pre_attempt(
                attempt if translated is None else attempt + 1,
                trace,
                started_wall,
                policy,
            )
            attempt_span = None
            try:
                with tracer.span(
                    "attempt", number=trace.attempts, naive=True
                ) as attempt_span:
                    return self._finish_naive(xpath, trace)
            except _RETRYABLE as exc:
                last_error = self._record_failure(exc, trace)
                if attempt_span is not None:
                    attempt_span.annotate(error=type(exc).__name__)
        counters.add("queries_failed")
        raise QueryFailedError(
            f"query failed after {trace.attempts} attempts "
            f"({self._failure_detail(trace, last_error)}): {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    # Answer memo (parallel engine)
    # ------------------------------------------------------------------
    def _memo_lookup(
        self, xpath: str
    ) -> "tuple[QueryAnswer, QueryTrace] | None":
        """Serve a repeated query from the completed-exchange memo.

        Returns a fresh answer clone plus a trace copying every
        non-timing field of the original exchange (timing fields stay
        zero — nothing ran).  ``None`` when the memo is disabled, stale
        (epoch moved) or cold for this query.
        """
        if self._answer_memo is None:
            return None
        self._check_memo_epoch()
        stored = self._answer_memo.get(xpath)
        if stored is None:
            counters.add("answer_cache_misses")
            return None
        counters.add("answer_cache_hits")
        answer, trace = stored
        hit_trace = replace(
            trace,
            translate_client_s=0.0,
            server_s=0.0,
            transfer_s=0.0,
            decrypt_client_s=0.0,
            postprocess_client_s=0.0,
            backoff_s=0.0,
            cluster_makespan_s=0.0,
            candidate_counts=dict(trace.candidate_counts),
            span=None,
        )
        return answer.clone(), hit_trace

    def _memo_store(
        self, xpath: str, answer: QueryAnswer, trace: QueryTrace
    ) -> None:
        """Memoize a completed exchange (skipping naive/fallback answers).

        Naive answers hold the whole database — pinning (and cloning)
        one per query string would bloat the heap while the naive path
        is supposed to stay the honest cost baseline.
        """
        if self._answer_memo is None or trace.naive or trace.fell_back:
            return
        self._check_memo_epoch()
        if xpath not in self._answer_memo:
            # ``span=None``: memoizing the span tree would pin every
            # stored query's spans for the memo's lifetime.
            self._answer_memo[xpath] = (
                answer.clone(),
                replace(
                    trace,
                    candidate_counts=dict(trace.candidate_counts),
                    span=None,
                ),
            )

    def _check_memo_epoch(self) -> None:
        if self._memo_epoch != self.hosted.epoch:
            assert self._answer_memo is not None
            self._answer_memo.clear()
            self._memo_epoch = self.hosted.epoch

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------
    def _pre_attempt(
        self,
        attempt: int,
        trace: QueryTrace,
        started_wall: float,
        policy: RetryPolicy,
    ) -> None:
        """Apply backoff before a retry and enforce the per-query deadline.

        The deadline covers real client/server CPU time plus the modelled
        wire and backoff time accumulated so far, so a hung-wire scenario
        fails fast instead of wedging the caller.
        """
        if attempt > 0:
            delay = policy.backoff_for(attempt - 1, self._backoff_rng)
            trace.backoff_s += delay
            counters.add("query_retries")
            trace.retries += 1
            if self._obs.enabled:
                # Backoff is modelled, not slept — the span carries the
                # modelled delay so totals reconcile with ``backoff_s``.
                span = self._obs.tracer.begin("backoff", retry=trace.retries)
                span.set_duration(delay)
                self._obs.metrics.observe("retry_backoff_seconds", delay)
        elapsed = (
            time.perf_counter() - started_wall
            + trace.backoff_s
            + trace.transfer_s
        )
        if elapsed > policy.deadline_s:
            counters.add("queries_failed")
            raise QueryFailedError(
                f"query deadline of {policy.deadline_s}s exceeded after "
                f"{trace.attempts} attempts"
            )
        trace.attempts += 1

    def _record_failure(
        self, exc: Exception, trace: QueryTrace
    ) -> Exception:
        if isinstance(exc, IntegrityError):
            counters.add("integrity_failures")
            trace.integrity_failures += 1
            if isinstance(exc, FreshnessError):
                counters.add("freshness_failures")
                trace.freshness_failures += 1
                if isinstance(exc, RollbackDetectedError):
                    counters.add("rollback_detected")
        else:
            trace.drops += 1
        return exc

    def _failure_detail(
        self, trace: QueryTrace, last_error: Exception | None
    ) -> str:
        """One-line diagnosis for QueryFailedError messages.

        Names the last error type and — when the channel is a fault
        injector — the last fault kind it applied, so a chaos-suite
        failure is attributable from the error text alone.
        """
        detail = (
            f"{trace.integrity_failures} integrity failures "
            f"({trace.freshness_failures} freshness), {trace.drops} drops"
        )
        if last_error is not None:
            detail += f", last error {type(last_error).__name__}"
        kind = getattr(self.channel, "last_fault_kind", None)
        if kind is not None:
            detail += f", last fault {kind}"
        return detail

    def _secure_exchange(
        self, xpath: str, translated, trace: QueryTrace
    ) -> ServerResponse:
        """One sealed request/response round trip over the channel."""
        tracer = self._obs.tracer
        with tracer.span("seal"):
            request = self.client.seal_request(translated, cache_key=xpath)
        request, seconds = self.channel.transfer(
            "client->server", "query", request
        )
        trace.transfer_s += seconds

        with tracer.span("server") as span:
            sealed = self.server.answer_wire(request)
        trace.server_s += span.finish()

        sealed, seconds = self.channel.transfer(
            "server->client", "answer", sealed
        )
        trace.transfer_s += seconds
        with tracer.span("verify"):
            response = self.client.open_response(sealed)
        trace.candidate_counts = response.candidate_counts
        return response

    def _secure_exchange_stream(
        self,
        xpath: str,
        translated,
        trace: QueryTrace,
        prefetch: bool,
    ) -> "tuple[ServerResponse, list[tuple[object, Future]] | None]":
        """One sealed round trip with a chunked (streamed) response.

        Each chunk crosses the channel and is verified the moment it
        arrives; with ``prefetch`` (single-query mode, thread pool) the
        fragments of a verified chunk are handed to the pool right away,
        so the client decrypts chunk ``i`` while the server — driven by
        the next generator pull — is still joining and sealing chunk
        ``i+1``.  Sequencing is validated by :func:`assemble_stream`: a
        dropped, duplicated or reordered chunk surfaces as the usual
        retryable integrity error, never as a silently reordered answer.
        """
        tracer = self._obs.tracer
        with tracer.span("seal"):
            request = self.client.seal_request(translated, cache_key=xpath)
        request, seconds = self.channel.transfer(
            "client->server", "query", request
        )
        trace.transfer_s += seconds

        pool = self._pool
        assert pool is not None
        fan_out = prefetch and pool.backend == "thread" and pool.workers >= 2
        stream = self.server.answer_wire_stream(
            request, chunk_fragments=self.parallel.chunk_fragments
        )
        chunks = []
        jobs: "list[tuple[object, Future]] | None" = [] if fan_out else None
        while True:
            with tracer.span("server") as span:
                sealed = next(stream, None)
            trace.server_s += span.finish()
            if sealed is None:
                break
            sealed, seconds = self.channel.transfer(
                "server->client", "answer", sealed
            )
            trace.transfer_s += seconds
            with tracer.span("verify"):
                chunk = self.client.open_chunk(sealed)
            chunks.append(chunk)
            if jobs is not None and chunk.kind == "fragments":
                counters.add("parallel_decrypt_tasks", len(chunk.fragments))
                jobs.extend(
                    (
                        fragment,
                        pool.submit(self.client.decrypt_fragment, fragment.xml),
                    )
                    for fragment in chunk.fragments
                )
        try:
            response = assemble_stream(chunks)
        except MessageDecodeError as exc:
            raise TamperedResponseError(str(exc)) from exc
        trace.candidate_counts = response.candidate_counts
        return response, jobs

    def execute_many(self, xpaths: list[str]) -> list[QueryAnswer]:
        """Answer a batch of queries through the secure pipeline.

        The batched entry point is where the hot-path caches pay off:
        within one batch (and across batches on the same system),
        repeated XPath strings reuse translated plans, repeated ship
        nodes reuse serialized fragments, and repeated blocks skip
        decryption entirely.  Per-query traces for the whole batch are
        kept in :attr:`last_batch_traces`, in input order (``last_trace``
        ends up holding the final query's trace, as with single
        :meth:`query` calls).

        With the parallel engine enabled the batch is *pipelined*: every
        exchange still runs sequentially on the calling thread (so the
        channel sees the same deterministic transfer order regardless of
        worker count), but post-processing is deferred to the pool and
        overlaps the next query's server work, duplicates within the
        batch are served from the answer memo, and results are gathered
        back into input order.
        """
        if self._pool is None:
            answers: list[QueryAnswer] = []
            traces: list[QueryTrace] = []
            for xpath in xpaths:
                answers.append(self.query(xpath))
                assert self.last_trace is not None
                traces.append(self.last_trace)
            self.last_batch_traces = traces
            return answers
        return self._execute_many_pipelined(xpaths)

    def _execute_many_pipelined(
        self, xpaths: list[str]
    ) -> list[QueryAnswer]:
        pool = self._pool
        assert pool is not None
        total = len(xpaths)
        answers: "list[QueryAnswer | None]" = [None] * total
        traces: "list[QueryTrace | None]" = [None] * total
        pending: dict[int, tuple[Future, QueryTrace]] = {}
        inflight: dict[str, int] = {}

        def drain(index: int) -> None:
            future, trace = pending.pop(index)
            inflight.pop(xpaths[index], None)
            try:
                answers[index] = future.result()
                traces[index] = trace
            except _RETRYABLE:
                # The deferred finish failed *after* its retry loop
                # closed (e.g. a block failed verification); re-run the
                # whole query inline with a fresh attempt budget — the
                # outcome stays exact-answer-or-typed-error.
                answers[index] = self.query(xpaths[index])
                traces[index] = self.last_trace

        for index, xpath in enumerate(xpaths):
            prior = inflight.get(xpath)
            if prior is not None:
                # A duplicate of a still-pending query: settle the first
                # occurrence now so the memo can serve this one.
                drain(prior)
            memo = self._memo_lookup(xpath)
            if memo is not None:
                answers[index], traces[index] = memo
                continue
            defer = pool.backend == "thread"
            result = self._run_query(xpath, deferred=defer)
            if isinstance(result, QueryAnswer):
                # Finished inline: naive/untranslatable queries, or a
                # process-backed pool (bound methods don't pickle — the
                # process backend parallelizes inside ``_finish``, via
                # the bulk block-decrypt path, not across queries).
                answers[index] = result
                traces[index] = self.last_trace
                continue
            response, trace = result
            future = pool.submit(
                self._finish, xpath, response, trace, None, False
            )
            pending[index] = (future, trace)
            inflight[xpath] = index
        for index in sorted(pending):
            drain(index)

        done_traces = [trace for trace in traces if trace is not None]
        assert len(done_traces) == total
        self.last_batch_traces = done_traces
        self.last_trace = done_traces[-1] if done_traces else None
        return [answer for answer in answers if answer is not None]

    def aggregate(
        self, xpath: str, func: str, mode: str = "exact"
    ):
        """Aggregate the values selected by ``xpath`` (§6.4).

        ``mode="exact"`` runs the secure pipeline and folds the plaintext
        answers client-side — always correct, required for COUNT/SUM/AVG
        (splitting and scaling make them unevaluable server-side, as the
        paper notes).

        ``mode="server"`` (min/max only) performs the paper's
        no-decryption protocol: the server folds over the B-tree value
        index restricted to the structurally matched blocks and returns a
        single extreme ciphertext, which the client inverts through its
        OPE key.  Exact at per-node block granularity; at coarser
        granularities it may see unmatched occurrences sharing a matched
        block (the design's inherent caveat — see
        :mod:`repro.core.aggregates`).
        """
        from repro.core.aggregates import (
            combine_min_max,
            fold_exact,
            server_min_max,
        )

        if mode == "exact":
            answer = self.query(xpath)
            if func == "count":
                # COUNT counts answer *nodes* (XPath semantics), not leaf
                # values — internal elements count too.
                return len(answer)
            return fold_exact(answer.values(), func)
        if mode != "server":
            raise ValueError(f"unknown aggregation mode {mode!r}")
        if func not in ("min", "max"):
            raise ValueError(
                "server-side aggregation supports only min/max; "
                f"{func!r} requires decryption (use mode='exact')"
            )
        translated = self.client.translate(xpath)
        reply = server_min_max(
            translated,
            self.hosted.structural_index,
            self.hosted.value_index,
            func,
        )
        field = _output_field(xpath)
        plan = self.hosted.field_plans.get(field) if field else None
        return combine_min_max(reply, plan, self._keyring.ope, func)

    # ------------------------------------------------------------------
    # Incremental updates (extension; paper §8 item 3)
    # ------------------------------------------------------------------
    def insert_element(self, parent_xpath: str, tag: str, value: str) -> None:
        """Insert ``<tag>value</tag>`` under the unique match of the path.

        New leaves of sensitive tags become their own encryption blocks
        (with decoys, fresh DSI interval drawn in the parent's gap, and a
        field-granular OPESS/B-tree rebuild); other tags stay plaintext.
        See :mod:`repro.core.updates` for scope and the security caveat.
        """
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(parent_xpath))
        engine.insert_element(entry, tag, value)
        self._route_update(entry)
        self._refresh_client()

    def delete_element(self, xpath: str) -> None:
        """Delete the unique subtree matched by ``xpath``."""
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(xpath))
        self._route_update(entry)
        engine.delete_element(entry)
        self._refresh_client()

    def update_value(self, xpath: str, new_value: str) -> None:
        """Rewrite the value of the unique leaf matched by ``xpath``."""
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(xpath))
        engine.update_value(entry, new_value)
        self._route_update(entry)
        self._refresh_client()

    def _route_update(self, entry) -> None:
        """Bump only the shards a change at ``entry`` can reach.

        No-op on the single-server path (the monolithic server's epoch
        check already flushes on ``hosted.bump_epoch()``).  Routed
        *before* a delete so the entry's ancestor links are still live,
        and after insert/value updates (the resolved entry — the insert's
        parent — is untouched by the engine there).
        """
        if self._coordinator is not None:
            self._coordinator.invalidate_entry(entry)

    def _refresh_client(self) -> None:
        """Rebuild the client translator after hosted-state mutation."""
        self.client = Client(
            self._keyring,
            self.hosted,
            enable_cache=self._fast_path,
            obs=self._obs,
        )

    def naive_query(self, xpath: str) -> QueryAnswer:
        """Answer a query with the §7.3 naive baseline (ship everything)."""
        trace = QueryTrace(query=xpath)
        trace.attempts = 1
        tracer = self._obs.tracer
        root = tracer.begin("query", query=xpath, naive=True)
        if tracer.enabled:
            trace.span = root
        with tracer.activate(root):
            return self._finish_naive(xpath, trace)

    def _finish_naive(self, xpath: str, trace: QueryTrace) -> QueryAnswer:
        trace.naive = True
        if self._coordinator is not None:
            # The naive protocol has no sharded form; the coordinator
            # routes it to the root-owning shard's replica set.
            response = self._coordinator.naive_exchange(
                self.client, xpath, trace, self._backoff_rng
            )
            return self._finish(xpath, response, trace)
        tracer = self._obs.tracer
        with tracer.span("seal"):
            request = self.client.seal_naive_request(xpath)
        request, seconds = self.channel.transfer(
            "client->server", "query", request
        )
        trace.transfer_s += seconds

        with tracer.span("server") as span:
            sealed = self.server.ship_all_wire(request)
        trace.server_s += span.finish()

        sealed, seconds = self.channel.transfer(
            "server->client", "answer", sealed
        )
        trace.transfer_s += seconds
        with tracer.span("verify"):
            response = self.client.open_response(sealed)
        return self._finish(xpath, response, trace)

    def _finish(
        self,
        xpath: str,
        response: ServerResponse,
        trace: QueryTrace,
        jobs: "list[tuple[object, Future]] | None" = None,
        use_pool: bool = True,
    ) -> QueryAnswer:
        """Decrypt, assemble and re-evaluate — the client's §6.4 half.

        ``jobs`` carries fragment decryptions already in flight (the
        streaming prefetch); they are gathered in stream order, so the
        decrypted list is identical to the serial one.  ``use_pool=False``
        keeps all work on the calling thread — the pipelined batch path
        runs ``_finish`` itself on a pool worker, and fanning out from
        inside a worker could deadlock a saturated pool.
        """
        trace.blocks_returned = response.blocks_shipped
        trace.fragments_returned = len(response.fragments)
        trace.transfer_bytes = response.size_bytes()

        tracer = self._obs.tracer
        # The deferred batch path runs ``_finish`` on a pool worker where
        # no span is ambient — re-activate the query's root so the stage
        # spans land under it regardless of which thread finishes.
        with tracer.activate(trace.span):
            with tracer.span("decrypt") as span:
                if jobs is not None and len(jobs) == len(response.fragments):
                    decrypted = [
                        (fragment, future.result())
                        for fragment, future in jobs
                    ]
                else:
                    decrypted = self.client.decrypt_fragments(
                        response, pool=self._pool if use_pool else None
                    )
            trace.decrypt_client_s = span.finish()

            with tracer.span("postprocess") as span:
                pruned = self.client.assemble(decrypted)
                answer = self.client.post_process(xpath, pruned)
            trace.postprocess_client_s = span.finish()

        trace.answer_count = len(answer)
        root = trace.span
        if root is not None:
            root.annotate(answers=trace.answer_count)
            root.finish()
        self.last_trace = trace
        self._memo_store(xpath, answer, trace)
        self._obs.record_query(trace, root)
        return answer


def _output_field(xpath: str) -> Optional[str]:
    """Field name of a query's output node (tag or ``@name``), if any."""
    from repro.xpath import ast
    from repro.xpath.parser import parse_xpath

    path = parse_xpath(xpath)
    for step in reversed(path.steps):
        if step.axis == ast.AXIS_ATTRIBUTE:
            return f"@{step.test.name}"
        if step.axis in (ast.AXIS_SELF,):
            continue
        if step.test.is_wildcard:
            return None
        return step.test.name
    return None
