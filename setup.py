"""Legacy setup shim.

The environment has no `wheel` package, so PEP 660 editable installs fail;
`pip install -e . --no-build-isolation --no-use-pep517` uses this file
instead.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
