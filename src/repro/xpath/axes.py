"""Interval algebra and lowering for the full thirteen-axis XPath set.

The paper's twig compiler (:mod:`repro.xpath.compiler`) covers the
downward fragment: child / descendant / descendant-or-self / attribute
edges.  DSI intervals carry strictly more information than that — the
``(low, high)`` pair of an entry, together with the precomputed parent
pointers, decides *every* XPath 1.0 axis relation:

=====================  =====================================================
axis ``y`` of ``x``    interval predicate over DSI entries
=====================  =====================================================
descendant             ``x.low < y.low`` and ``y.high < x.high``
child                  descendant and ``parent(y) is x``
ancestor               ``y.low < x.low`` and ``x.high < y.high``
parent                 ``y is parent(x)``
self                   ``y is x``
descendant-or-self     descendant or self
ancestor-or-self       ancestor or self
following              ``y.low > x.high``
preceding              ``y.high < x.low``
following-sibling      ``parent(y) is parent(x)`` and ``y.low > x.high``
preceding-sibling      ``parent(y) is parent(x)`` and ``y.high < x.low``
attribute              child restricted to attribute entries
namespace              empty in this data model (documents carry none)
=====================  =====================================================

Entries are *grouped* (one interval can cover a run of adjacent same-tag
siblings), so the matchers evaluate relaxed threshold forms of the order
predicates — e.g. *following* keeps ``y`` when ``y.high > min(x.low)``
over the anchor set.  Every exact instance-level pair satisfies the
relaxed entry-level test (entry bounds contain instance bounds), so the
server's match sets are sound supersets and the client restores
exactness by re-running the original query over the pruned document,
exactly as in the downward-only protocol.

:func:`compile_axis_pattern` lowers an arbitrary location path into the
same :class:`~repro.xpath.compiler.PatternTree` shape the twig matchers
consume, generalizing the edge vocabulary to the full axis set.  Reverse
axes need no special output handling: ``//b/ancestor::x`` becomes the
pattern ``b → x`` with an *ancestor* edge, the bottom-up phase filters
``b`` by the inverse (descendant) test and the top-down phase keeps the
``x`` entries with a surviving ``b`` strictly inside them.  The compiler
also computes the **ship set** — every pattern node whose full surviving
match set must be shipped for the client to finish exactly — replacing
the legacy single-ship-node rule, which is only sufficient when all
edges point downward.

Degenerate shapes no pattern can express (relative paths, a reverse or
order axis as the very first step, positional predicates inside
non-downward predicate branches, …) raise :class:`ResidualRequired`;
the planner then falls back to :func:`residual_pattern`, which ships
the whole document through the standard sealed-fragment path — still a
typed server-side plan, never the naive protocol.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.xpath import ast
from repro.xpath.compiler import PatternNode, PatternTree, UnsupportedQuery


class ResidualRequired(UnsupportedQuery):
    """The query needs the whole document client-side (residual plan)."""


#: Pattern edges whose matches stay inside the pattern parent's subtree
#: closure — a ship node above them covers them.  ``self`` qualifies: its
#: matches are the parent's own matches.
DOWNWARD_EDGES = frozenset(
    {
        "child",
        "descendant",
        "descendant-or-self",
        "attribute",
        "attribute-descendant",
        "self",
        "root-child",
        "root-descendant",
    }
)

#: Pattern edges that climb toward the root.
UPWARD_EDGES = frozenset({"parent", "ancestor", "ancestor-or-self"})

#: Pattern edges that move sideways in document order.
ORDER_EDGES = frozenset(
    {"following", "preceding", "following-sibling", "preceding-sibling"}
)

#: The rewrite at the heart of the engine: a pattern edge is *checked*
#: bottom-up with its inverse axis (filter the parent's candidates by the
#: child's matches) and top-down with the forward axis, so reverse axes
#: run on the same two-phase join as the downward twig.
INVERSE_EDGE = {
    "child": "parent",
    "attribute": "parent",
    "descendant": "ancestor",
    "attribute-descendant": "ancestor",
    "descendant-or-self": "ancestor-or-self",
    "self": "self",
    "parent": "child",
    "ancestor": "descendant",
    "ancestor-or-self": "descendant-or-self",
    "following": "preceding",
    "preceding": "following",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
}


# ----------------------------------------------------------------------
# Interval-algebra threshold helpers (shared by both matcher backends)
# ----------------------------------------------------------------------


def order_bounds(
    intervals: Iterable[tuple[float, float]],
) -> Optional[tuple[float, float]]:
    """``(min low, max high)`` over an interval set, or None when empty.

    These two scalars decide the relaxed *following*/*preceding* tests:
    ``y`` can follow some anchor iff ``y.high > min_low`` and can precede
    some anchor iff ``y.low < max_high``.
    """
    min_low: Optional[float] = None
    max_high: Optional[float] = None
    for low, high in intervals:
        if min_low is None or low < min_low:
            min_low = low
        if max_high is None or high > max_high:
            max_high = high
    if min_low is None or max_high is None:
        return None
    return (min_low, max_high)


def sibling_bounds(
    items: Iterable[tuple[object, float, float]],
) -> dict[object, tuple[float, float]]:
    """Per-parent ``(min low, max high)`` from (parent, low, high) triples.

    The sibling-axis tests are the order-axis tests scoped to one parent:
    ``y`` can follow a sibling anchor iff ``y.high > bounds[parent].low``.
    """
    bounds: dict[object, tuple[float, float]] = {}
    for parent, low, high in items:
        current = bounds.get(parent)
        if current is None:
            bounds[parent] = (low, high)
        else:
            bounds[parent] = (min(current[0], low), max(current[1], high))
    return bounds


def can_follow(low: float, high: float, min_anchor_low: float) -> bool:
    """Relaxed *following* membership for a (possibly grouped) entry."""
    return high > min_anchor_low


def can_precede(low: float, high: float, max_anchor_high: float) -> bool:
    """Relaxed *preceding* membership for a (possibly grouped) entry."""
    return low < max_anchor_high


# ----------------------------------------------------------------------
# Generalized lowering: any location path -> PatternTree + ship set
# ----------------------------------------------------------------------


def compile_axis_pattern(path: ast.LocationPath) -> PatternTree:
    """Lower an absolute location path over the full axis vocabulary."""
    if not path.absolute:
        raise ResidualRequired(
            "relative query evaluates against the whole document"
        )
    spine: list[PatternNode] = []
    _compile_axis_steps(path.steps, spine, at_root=True)
    if not spine:
        raise ResidualRequired("query selects the document node itself")
    output = spine[-1]
    output.is_output = True
    tree = PatternTree(
        roots=[spine[0]], output=output, spine_root=spine[0]
    )
    tree.ship_roots = _ship_set(spine)
    return tree


def _compile_axis_steps(
    steps: tuple[ast.Step, ...],
    spine: list[PatternNode],
    at_root: bool,
) -> None:
    """Materialize pattern nodes for a step chain onto ``spine``."""
    pending_descendant = False

    def attach(node: PatternNode) -> None:
        if not spine:
            if at_root:
                node.axis = _root_edge(node.axis)
        else:
            spine[-1].children.append(node)
        spine.append(node)

    def materialize_pending() -> None:
        # A '//' that cannot fold into the next edge becomes an explicit
        # wildcard descendant-or-self node (from the document node that
        # set is simply "every element").
        attach(PatternNode(test="*", axis="descendant-or-self"))

    for step in steps:
        is_bare_wildcard = step.test.is_wildcard and not step.predicates
        if step.axis == ast.AXIS_DESCENDANT_OR_SELF and is_bare_wildcard:
            pending_descendant = True
            continue
        if step.axis == ast.AXIS_SELF and is_bare_wildcard:
            if pending_descendant:
                # 'a//.' — the trailing '.' forces the '//' to surface.
                materialize_pending()
                pending_descendant = False
            continue

        if step.axis == ast.AXIS_NAMESPACE:
            raise ResidualRequired("namespace axis (no namespace nodes)")

        if step.axis == ast.AXIS_CHILD:
            axis = "descendant" if pending_descendant else "child"
            test = step.test.name
        elif step.axis == ast.AXIS_DESCENDANT:
            axis = "descendant"
            test = step.test.name
        elif step.axis == ast.AXIS_DESCENDANT_OR_SELF:
            # dos ∘ dos = dos, so a pending '//' folds in unchanged.
            axis = "descendant-or-self"
            test = step.test.name
        elif step.axis == ast.AXIS_ATTRIBUTE:
            axis = (
                "attribute-descendant" if pending_descendant else "attribute"
            )
            test = f"@{step.test.name}"
        else:
            # Upward, order and named-self axes: a pending '//' cannot
            # fold into the edge, so it materializes first.
            if pending_descendant:
                materialize_pending()
            axis = step.axis
            test = step.test.name
        pending_descendant = False

        if not spine and at_root and axis == "attribute-descendant":
            # '//@x': anchor the attribute edge at an explicit wildcard
            # element node (every attribute's owner is an element).
            materialize_pending()
            axis = "attribute"
        if not spine and at_root and axis not in (
            "child",
            "descendant",
            "descendant-or-self",
        ):
            # From the virtual document node only downward element steps
            # select anything a pattern can anchor ('/..', '/self::x',
            # '/following::x', '/@x' are degenerate).
            raise ResidualRequired(
                f"axis {step.axis!r} from the document node"
            )
        if axis in ORDER_EDGES and spine and spine[-1].is_attribute:
            # Order axes anchored at attribute nodes have evaluator
            # semantics the interval relaxation does not model.
            raise ResidualRequired(
                f"axis {step.axis!r} anchored at an attribute"
            )

        node = PatternNode(test=test, axis=axis)
        attach(node)
        _attach_axis_predicates(node, step.predicates)

    if pending_descendant:
        materialize_pending()


def _root_edge(axis: str) -> str:
    if axis in ("descendant", "descendant-or-self"):
        # From the document node descendant-or-self::x is any x at all
        # (the document node never matches an element test).
        return "root-descendant"
    return "root-child"


def _attach_axis_predicates(
    node: PatternNode, predicates: tuple[ast.Predicate, ...]
) -> None:
    if any(isinstance(p.expr, ast.Position) for p in predicates):
        # Positional steps lower to a bare name-test node: XPath applies
        # predicates sequentially, so any server-side narrowing of the
        # candidate list (even by another predicate of the same step)
        # could shift positions in the list the client indexes.  The
        # complete per-parent candidate set ships instead.
        node.position_sensitive = True
        return
    for predicate in predicates:
        expr = predicate.expr
        if isinstance(expr, ast.Exists):
            node.children.append(_compile_axis_branch(expr.path))
        elif isinstance(expr, ast.Comparison):
            if _is_self_comparison(expr.path):
                _add_constraint(node, expr)
            else:
                branch = _compile_axis_branch(expr.path)
                leaf = branch
                while leaf.children:
                    leaf = leaf.children[-1]
                _add_constraint(leaf, expr)
                node.children.append(branch)
        else:  # pragma: no cover - parser produces only the above
            raise ResidualRequired(f"unsupported predicate {expr!r}")


def _compile_axis_branch(path: ast.LocationPath) -> PatternNode:
    """Lower a predicate path into a pattern branch.

    Positional predicates inside the branch are *stripped*: dropping a
    filter only relaxes the existence test (sound superset), and the
    client re-evaluates the original predicate over complete shipped
    subtrees.  That re-evaluation is only exact when the branch stays
    inside its holder's fragment, so a branch that both leaves the
    subtree and carries positions is residual.
    """
    if path.absolute:
        raise ResidualRequired(
            "absolute predicate path needs the whole document"
        )
    stripped, had_position = _strip_positions(path)
    branch_spine: list[PatternNode] = []
    _compile_axis_steps(stripped.steps, branch_spine, at_root=False)
    if not branch_spine:
        raise ResidualRequired("empty predicate path")
    branch = branch_spine[0]
    if had_position and not _all_downward(branch):
        raise ResidualRequired(
            "positional predicate on a non-downward branch"
        )
    return branch


def _strip_positions(
    path: ast.LocationPath,
) -> tuple[ast.LocationPath, bool]:
    had_position = False
    steps: list[ast.Step] = []
    for step in path.steps:
        kept = tuple(
            p for p in step.predicates
            if not isinstance(p.expr, ast.Position)
        )
        if len(kept) != len(step.predicates):
            had_position = True
            step = ast.Step(step.axis, step.test, kept)
        steps.append(step)
    return ast.LocationPath(path.absolute, tuple(steps)), had_position


def _is_self_comparison(path: ast.LocationPath) -> bool:
    return (
        not path.absolute
        and len(path.steps) == 1
        and path.steps[0].axis == ast.AXIS_SELF
        and path.steps[0].test.is_wildcard
        and not path.steps[0].predicates
    )


def _add_constraint(node: PatternNode, expr: ast.Comparison) -> None:
    if node.value_constraint is None:
        node.value_constraint = (expr.op, expr.literal)
        return
    # Second constraint on the same node: hang it off a self-edge twin —
    # the matcher intersects the parent's set with the twin's
    # value-filtered set, which is the conjunction.
    twin = PatternNode(test=node.test, axis="self")
    twin.value_constraint = (expr.op, expr.literal)
    node.children.append(twin)


def _all_downward(branch: PatternNode) -> bool:
    return all(n.axis in DOWNWARD_EDGES for n in branch.walk())


# ----------------------------------------------------------------------
# Ship-set selection
# ----------------------------------------------------------------------


def _ship_set(spine: list[PatternNode]) -> list[PatternNode]:
    """Every pattern node whose surviving matches must ship.

    The legacy rule ships one spine node and relies on all deeper
    pattern nodes matching *inside* its fragments.  That containment
    breaks as soon as an edge points upward or sideways, so the axis
    engine ships a union: the spine suffix from the first *interesting*
    node down, plus every node of a predicate branch that leaves its
    holder's subtree.  Interesting means the node carries a constraint
    or branch or positional flag, or sits on a non-downward edge —
    everything above the cut is a pure downward name-test chain the
    client re-verifies from fragment skeletons alone.
    """
    spine_children = {
        id(spine[i]): spine[i + 1] for i in range(len(spine) - 1)
    }

    def branches(node: PatternNode) -> list[PatternNode]:
        onward = spine_children.get(id(node))
        return [c for c in node.children if c is not onward]

    cut = len(spine) - 1
    for index, node in enumerate(spine):
        edge_in = node.axis
        onward = spine_children.get(id(node))
        interesting = (
            node.value_constraint is not None
            or node.position_sensitive
            or bool(branches(node))
            or edge_in not in DOWNWARD_EDGES
            or (onward is not None and onward.axis not in DOWNWARD_EDGES)
        )
        if interesting:
            cut = index
            break

    ship: list[PatternNode] = list(spine[cut:])
    for node in spine:
        for branch in branches(node):
            if not _all_downward(branch):
                ship.extend(branch.walk())
    return ship


# ----------------------------------------------------------------------
# Residual plan
# ----------------------------------------------------------------------


def residual_pattern() -> PatternTree:
    """Ship-the-document plan for queries no pattern can express.

    A single wildcard root-child node matches exactly the document root
    entry, so the server ships one fragment — the whole tree — through
    the standard sealed path (integrity, freshness and leakage
    countermeasures all apply) and the client evaluates the original
    query over it.  Same transfer cost as the naive protocol, but typed,
    counted, and on the hardened wire.
    """
    root = PatternNode(test="*", axis="root-child")
    root.is_output = True
    tree = PatternTree(roots=[root], output=root, spine_root=root)
    tree.ship_roots = [root]
    return tree
