"""Vernam (one-time pad) cipher and the deterministic tag cipher.

The paper encrypts element tags in the DSI index table with the Vernam
cipher "because of its perfect security property" (§5.1.1), and translates
query tags "with the same keys used for the construction of DSI index table"
(§6.1).  Two classes realise this:

:class:`VernamCipher`
    The textbook one-time pad over bytes.  Perfectly secure when the pad is
    uniform and never reused; used directly in the security test-suite to
    demonstrate the perfect-security argument of Theorem 4.1.

:class:`DeterministicTagCipher`
    The keyed tag-name encoding used operationally.  Each distinct tag is
    XOR-ed with a pad derived (by a PRF) from the secret key and the tag's
    identity, then armoured into an uppercase alphanumeric token like the
    paper's ``U84573``.  Determinism is what lets the server look translated
    query tags up in the DSI index table; one-wayness doesn't matter to the
    client, which keeps a plaintext↔token map for display purposes.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256
from repro.crypto.prf import PRF

_TOKEN_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


class VernamCipher:
    """The classic one-time pad: ``ciphertext = plaintext XOR pad``."""

    @staticmethod
    def encrypt(plaintext: bytes, pad: bytes) -> bytes:
        """XOR the plaintext with a pad of at least equal length."""
        if len(pad) < len(plaintext):
            raise ValueError("one-time pad must be at least as long as the message")
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    @staticmethod
    def decrypt(ciphertext: bytes, pad: bytes) -> bytes:
        """Identical to encryption (XOR is an involution)."""
        return VernamCipher.encrypt(ciphertext, pad)


class DeterministicTagCipher:
    """Keyed deterministic encryption of tag names into opaque tokens."""

    def __init__(self, key: bytes, token_length: int = 10) -> None:
        if token_length < 4:
            raise ValueError("token length must be at least 4")
        self._prf = PRF(key)
        self._token_length = token_length
        self._known: dict[str, str] = {}
        self._reverse: dict[str, str] = {}

    def encrypt_tag(self, tag: str) -> str:
        """Map a tag (or ``@attribute`` name) to its ciphertext token."""
        cached = self._known.get(tag)
        if cached is not None:
            return cached
        plaintext = tag.encode("utf-8")
        pad = self._pad_for(tag, len(plaintext))
        masked = VernamCipher.encrypt(plaintext, pad)
        token = self._armor(masked + self._prf(b"tag-tail:" + plaintext)[:4])
        self._known[tag] = token
        self._reverse[token] = tag
        return token

    def decrypt_tag(self, token: str) -> str:
        """Invert a token previously produced by this cipher instance.

        Only the client calls this, and only for tokens it created — the
        plaintext map is part of the client's private state, never shipped
        to the server.
        """
        try:
            return self._reverse[token]
        except KeyError:
            raise ValueError(f"unknown tag token {token!r}") from None

    def known_tags(self) -> dict[str, str]:
        """Copy of the plaintext → token map accumulated so far."""
        return dict(self._known)

    def _pad_for(self, tag: str, length: int) -> bytes:
        pad = b""
        counter = 0
        seed = b"tag-pad:" + tag.encode("utf-8")
        while len(pad) < length:
            pad += self._prf(seed + counter.to_bytes(4, "big"))
            counter += 1
        return pad[:length]

    def _armor(self, data: bytes) -> str:
        """Encode bytes into a fixed-length uppercase alphanumeric token."""
        value = int.from_bytes(hmac_sha256(data, b"armor"), "big")
        chars: list[str] = []
        for _ in range(self._token_length):
            value, remainder = divmod(value, len(_TOKEN_ALPHABET))
            chars.append(_TOKEN_ALPHABET[remainder])
        return "".join(chars)
