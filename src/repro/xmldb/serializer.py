"""Serialization of document trees back to XML text.

The serializer is the exact inverse of :mod:`repro.xmldb.parser` on the
supported subset, which the property-based round-trip tests rely on.
Encrypted-block placeholders are written in a W3C XML-Encryption-like wire
shape (an ``EncryptedData`` element carrying the block id and the hex-encoded
ciphertext), mirroring the per-block envelope overhead the paper discusses in
§7.4 when comparing scheme output sizes.
"""

from __future__ import annotations

from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Node,
    Text,
)
from repro.xmldb.parser import ENCRYPTED_DATA_TAG


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(node: "Node | Document", indent: bool = False) -> str:
    """Render a node or document as an XML string.

    With ``indent=True`` a human-readable two-space-indented layout is
    produced; the compact form (the default) is byte-stable and is what the
    encryptor and the size-based attack model measure.
    """
    if isinstance(node, Document):
        node = node.root
    pieces: list[str] = []
    _write(node, pieces, 0, indent)
    return "".join(pieces)


def serialized_size(node: "Node | Document") -> int:
    """Size in bytes of the compact UTF-8 serialization.

    This is the quantity the paper's size-based attacker observes
    (Definition 3.1 condition (1) uses ``|E(D)|``).
    """
    return len(serialize(node).encode("utf-8"))


def _write(node: Node, pieces: list[str], level: int, indent: bool) -> None:
    pad = "  " * level if indent else ""
    newline = "\n" if indent else ""

    if isinstance(node, Text):
        pieces.append(f"{pad}{_escape_text(node.value)}{newline}")
        return

    if isinstance(node, EncryptedBlockNode):
        pieces.append(
            f'{pad}<{ENCRYPTED_DATA_TAG} block-id="{node.block_id}">'
            f"{node.payload.hex()}</{ENCRYPTED_DATA_TAG}>{newline}"
        )
        return

    if isinstance(node, Attribute):
        # Attributes are serialized by their owning element; a bare attribute
        # is rendered in the XPath-style @name=value debug form.
        pieces.append(f"{pad}@{node.name}={node.value!r}{newline}")
        return

    assert isinstance(node, Element)
    attribute_text = "".join(
        f' {attribute.name}="{_escape_attribute(attribute.value)}"'
        for attribute in node.attributes
    )
    if not node.children:
        pieces.append(f"{pad}<{node.tag}{attribute_text}/>{newline}")
        return

    if node.is_leaf_element:
        # Keep leaf values inline even when indenting so values survive the
        # parser's whitespace stripping unchanged.
        child = node.children[0]
        assert isinstance(child, Text)
        pieces.append(
            f"{pad}<{node.tag}{attribute_text}>"
            f"{_escape_text(child.value)}</{node.tag}>{newline}"
        )
        return

    pieces.append(f"{pad}<{node.tag}{attribute_text}>{newline}")
    for child in node.children:
        _write(child, pieces, level + 1, indent)
    pieces.append(f"{pad}</{node.tag}>{newline}")
