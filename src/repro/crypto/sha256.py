"""SHA-256, implemented from the FIPS 180-4 specification.

This is the root primitive of the reproduction's crypto stack: HMAC, the
PRF/PRG, key derivation and the order-preserving encryption function are all
built on it.  The test suite cross-checks the implementation against
``hashlib.sha256`` on fixed vectors and hypothesis-generated inputs.

The implementation favours clarity over speed (it is pure Python); the hot
paths of the system cache derived keys so the hash is not a bottleneck.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

#: First 32 bits of the fractional parts of the cube roots of the first
#: 64 primes (FIPS 180-4 §4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

#: Initial hash state: first 32 bits of the fractional parts of the square
#: roots of the first 8 primes (FIPS 180-4 §5.3.3).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    """One round of the SHA-256 compression function on a 64-byte block."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK32
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK32
        h = g
        g = f
        f = e
        e = (d + temp1) & _MASK32
        d = c
        c = b
        b = a
        a = (temp1 + temp2) & _MASK32

    return (
        (state[0] + a) & _MASK32,
        (state[1] + b) & _MASK32,
        (state[2] + c) & _MASK32,
        (state[3] + d) & _MASK32,
        (state[4] + e) & _MASK32,
        (state[5] + f) & _MASK32,
        (state[6] + g) & _MASK32,
        (state[7] + h) & _MASK32,
    )


def sha256(message: bytes) -> bytes:
    """Compute the SHA-256 digest of ``message`` (32 bytes)."""
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("sha256 expects bytes")

    # Merkle–Damgård padding: 0x80, zeros, 64-bit big-endian bit length.
    bit_length = len(message) * 8
    padded = bytes(message) + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", bit_length)

    state = _H0
    for offset in range(0, len(padded), 64):
        state = _compress(state, padded[offset : offset + 64])
    return struct.pack(">8I", *state)


def sha256_hex(message: bytes) -> str:
    """Hex digest convenience wrapper."""
    return sha256(message).hex()
