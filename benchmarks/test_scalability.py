"""Scalability sweep: how costs grow with document size.

The paper ran 25 MB and 50 MB documents; our absolute scale is smaller,
so instead of two points we sweep the generator and check the *growth
shape*: hosting cost and index sizes grow linearly in document size, and
selective (opt) query cost grows sublinearly relative to the naive
baseline — the gap that justifies the whole design widens with data.
"""

import time

from repro.bench.harness import format_table, trimmed_mean
from repro.core.system import SecureXMLSystem
from repro.workloads.nasa import build_nasa_database, nasa_constraints

from conftest import write_result

SIZES = (20, 40, 80)


def _measure(dataset_count: int) -> dict:
    document = build_nasa_database(dataset_count=dataset_count, seed=3)
    constraints = nasa_constraints()
    started = time.perf_counter()
    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    host_seconds = time.perf_counter() - started

    queries = [
        "//dataset/title",
        "//author[age>50]/last",
        "//dataset[.//publisher='CDS']/title",
    ]
    ours = []
    naive = []
    for query in queries:
        # cold: compare independent executions of both protocols; warm
        # caches would let the naive path amortize its whole-database
        # decrypt across the query list.
        system.flush_caches()
        system.query(query)
        ours.append(system.last_trace.total_s)
        system.flush_caches()
        system.naive_query(query)
        naive.append(system.last_trace.total_s)
    return {
        "nodes": document.size(),
        "host_s": host_seconds,
        "hosted_bytes": system.hosting_trace.hosted_bytes,
        "index_entries": system.hosting_trace.index_entries,
        "ours_s": trimmed_mean(ours),
        "naive_s": trimmed_mean(naive),
    }


def test_scalability_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: [_measure(size) for size in SIZES], rounds=1, iterations=1
    )
    rows = [
        [
            size,
            result["nodes"],
            result["host_s"],
            result["hosted_bytes"],
            result["index_entries"],
            result["ours_s"],
            result["naive_s"],
            result["ours_s"] / max(result["naive_s"], 1e-9),
        ]
        for size, result in zip(SIZES, results)
    ]
    table = format_table(
        ["datasets", "nodes", "host (s)", "hosted B", "DSI entries",
         "ours (s)", "naive (s)", "ratio"],
        rows,
        "Scalability — NASA-like document sweep, opt scheme",
    )
    write_result("scalability_sweep", table)

    small, _, large = results
    node_growth = large["nodes"] / small["nodes"]
    # Hosting and metadata grow roughly linearly (within 2x of node growth).
    assert large["host_s"] < small["host_s"] * node_growth * 2
    assert large["index_entries"] < small["index_entries"] * node_growth * 1.2
    # The advantage over naive persists at every scale (the ratio moves
    # with the match-set fraction of each query; it is not monotone at
    # these sizes, but selective evaluation stays clearly ahead).
    for result in results:
        assert result["ours_s"] < 0.6 * result["naive_s"]
