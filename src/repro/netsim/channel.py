"""A modelled network channel between client and server.

The paper ran on a 100 Mbps LAN and found transmission time "negligible
comparing with other time factors" (§7.2); we reproduce the experiments on
one host, so instead of measuring a real wire we *model* it: every payload
that crosses the channel is counted, and the modelled wall time is

    latency + bytes * 8 / bandwidth

with the paper's 100 Mbps as the default.  Benchmarks report this modelled
transfer time alongside the measured CPU times, which keeps the Fig. 9-style
breakdowns faithful (transfer is indeed negligible at LAN speeds) while
still letting the harness explore slower links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

#: The two documented transfer directions; anything else is a caller bug.
DIRECTIONS = ("client->server", "server->client")


@dataclass(frozen=True)
class TransferRecord:
    """One payload crossing the channel."""

    direction: str  # "client->server" or "server->client"
    label: str
    size_bytes: int
    modelled_seconds: float


@dataclass
class Channel:
    """Byte/latency accounting for one client↔server session."""

    bandwidth_bits_per_second: float = 100_000_000.0  # the paper's 100 Mbps
    latency_seconds: float = 0.0002
    transfers: list[TransferRecord] = field(default_factory=list)
    #: Observability context (set by the owning system).  Each completed
    #: :meth:`transfer` emits a ``transfer`` span carrying the *modelled*
    #: seconds (``set_duration`` — nothing here sleeps) under whatever
    #: span the caller has open, plus a ``transfer_seconds`` histogram
    #: sample.  ``repr=False`` keeps channel reprs byte-for-byte stable.
    obs: "Observability | None" = field(default=None, repr=False, compare=False)

    def send(self, direction: str, label: str, size_bytes: int) -> float:
        """Record a transfer; returns the modelled wire time in seconds."""
        if direction not in DIRECTIONS:
            raise ValueError(
                f"unknown transfer direction {direction!r}; "
                f"expected one of {DIRECTIONS}"
            )
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        seconds = (
            self.latency_seconds
            + size_bytes * 8.0 / self.bandwidth_bits_per_second
        )
        self.transfers.append(
            TransferRecord(direction, label, size_bytes, seconds)
        )
        return seconds

    def transfer(
        self, direction: str, label: str, payload: bytes
    ) -> tuple[bytes, float]:
        """Carry an actual payload across the wire.

        The base channel is a perfect wire: it accounts for the bytes and
        returns the payload unchanged.  :class:`~repro.netsim.faults
        .FaultyChannel` overrides this to drop, delay, corrupt, truncate
        or duplicate the payload — which is why the query pipeline ships
        real bytes through here rather than just sizes.
        """
        seconds = self.send(direction, label, len(payload))
        self.observe_transfer(direction, label, len(payload), seconds)
        return payload, seconds

    def observe_transfer(
        self, direction: str, label: str, size_bytes: int, seconds: float
    ) -> None:
        """Record one completed transfer with the observability context.

        The span duration is the transfer's *modelled* wire time, so span
        totals reconcile exactly with ``QueryTrace.transfer_s`` (which
        accumulates the same numbers).  Dropped transfers never get here
        — their modelled time never reaches the trace either.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        span = obs.tracer.begin(
            "transfer", direction=direction, label=label, bytes=size_bytes
        )
        span.set_duration(seconds)
        obs.metrics.observe("transfer_seconds", seconds)

    def total_bytes(self, direction: str | None = None) -> int:
        """Bytes moved, optionally filtered by direction."""
        return sum(
            record.size_bytes
            for record in self.transfers
            if direction is None or record.direction == direction
        )

    def total_seconds(self, direction: str | None = None) -> float:
        """Modelled wire time, optionally filtered by direction."""
        return sum(
            record.modelled_seconds
            for record in self.transfers
            if direction is None or record.direction == direction
        )

    def reset(self) -> None:
        """Clear the transfer log (benchmarks do this between queries)."""
        self.transfers.clear()


@dataclass
class NullChannel(Channel):
    """A channel that neither accounts nor models time.

    The serving layer moves the transfer boundary out of the system and
    onto the socket: the remote client's
    :class:`~repro.serving.transport.AsyncFaultTransport` carries (and
    bills, and optionally faults) the actual bytes.  The
    :class:`~repro.core.system.SecureXMLSystem` wrapped around that
    transport still routes every exchange through ``self.channel``, so
    it gets this no-op — otherwise each payload would be billed twice
    and every fault schedule would draw twice per transfer.
    """

    def send(self, direction: str, label: str, size_bytes: int) -> float:
        if direction not in DIRECTIONS:
            raise ValueError(
                f"unknown transfer direction {direction!r}; "
                f"expected one of {DIRECTIONS}"
            )
        return 0.0

    def transfer(
        self, direction: str, label: str, payload: bytes
    ) -> tuple[bytes, float]:
        return payload, self.send(direction, label, len(payload))
