"""Tests for saving and loading hosted systems."""

import json
import os

import pytest

from repro.core.client import canonical_node
from repro.core.storage import load_system, save_system
from repro.core.system import SecureXMLSystem
from repro.xpath.evaluator import evaluate

MASTER = b"storage-test-master-key-32bytes!"

QUERIES = (
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
)


@pytest.fixture
def saved(tmp_path, healthcare_doc, healthcare_scs):
    system = SecureXMLSystem.host(
        healthcare_doc, healthcare_scs, scheme="opt", master_key=MASTER
    )
    directory = str(tmp_path / "hosting")
    save_system(system, directory)
    return system, directory


class TestRoundTrip:
    def test_files_written(self, saved):
        _, directory = saved
        for name in ("hosted.xml", "server_meta.json", "client_state.json"):
            assert os.path.exists(os.path.join(directory, name))

    def test_queries_match_original(self, saved, healthcare_doc):
        original, directory = saved
        loaded = load_system(directory, MASTER)
        for query in QUERIES:
            expected = sorted(
                canonical_node(n) for n in evaluate(healthcare_doc, query)
            )
            assert loaded.query(query).canonical() == expected, query

    def test_loaded_metadata_matches(self, saved):
        original, directory = saved
        loaded = load_system(directory, MASTER)
        assert loaded.hosted.block_count() == original.hosted.block_count()
        assert loaded.hosted.encrypted_tags == original.hosted.encrypted_tags
        assert loaded.hosted.field_tokens == original.hosted.field_tokens
        assert len(loaded.hosted.structural_index.all_entries()) == len(
            original.hosted.structural_index.all_entries()
        )

    def test_aggregates_after_load(self, saved):
        _, directory = saved
        loaded = load_system(directory, MASTER)
        assert loaded.aggregate("//patient/age", "avg") == 37.5
        assert loaded.aggregate("//SSN", "min", mode="server") == (
            loaded.aggregate("//SSN", "min")
        )

    def test_updates_after_load(self, saved, healthcare_doc):
        _, directory = saved
        loaded = load_system(directory, MASTER)
        loaded.update_value("//patient[pname='Betty']/SSN", "555555")
        answer = loaded.query("//patient[SSN='555555']/pname")
        assert answer.values() == ["Betty"]

    def test_save_load_save_stable(self, saved, tmp_path):
        _, directory = saved
        loaded = load_system(directory, MASTER)
        second_directory = str(tmp_path / "hosting2")
        save_system(loaded, second_directory)
        reloaded = load_system(second_directory, MASTER)
        assert reloaded.query("//SSN").canonical() == loaded.query(
            "//SSN"
        ).canonical()


class TestKeySeparation:
    def test_wrong_master_key_cannot_decrypt(self, saved):
        _, directory = saved
        intruder = load_system(directory, b"wrong-key-wrong-key-wrong-key-!!")
        # Wrong key -> wrong tag tokens -> the index lookup misses and the
        # intruder sees nothing...
        assert intruder.query("//insurance").canonical() == []
        # ...and actually touching the ciphertext (the naive path decrypts
        # every block) fails outright.
        with pytest.raises(Exception):
            intruder.naive_query("//insurance")

    def test_server_files_hold_no_sensitive_plaintext(self, saved):
        original, directory = saved
        with open(os.path.join(directory, "hosted.xml")) as f:
            hosted_xml = f.read()
        with open(os.path.join(directory, "server_meta.json")) as f:
            meta_text = f.read()
        for field, plan in original.hosted.field_plans.items():
            for value in plan.ordered_values:
                assert f">{value}<" not in hosted_xml
                assert f'"{value}"' not in meta_text

    def test_client_state_is_the_sensitive_file(self, saved):
        """Documents the trust boundary: client_state.json stays home."""
        _, directory = saved
        with open(os.path.join(directory, "client_state.json")) as f:
            client_state = json.load(f)
        assert "occurrences" in client_state  # plaintext values live here


class TestVersioning:
    def test_bad_version_rejected(self, saved):
        _, directory = saved
        path = os.path.join(directory, "server_meta.json")
        with open(path) as f:
            meta = json.load(f)
        meta["version"] = 999
        with open(path, "w") as f:
            json.dump(meta, f)
        with pytest.raises(ValueError):
            load_system(directory, MASTER)
