"""Tests for the hosting pipeline (§4.1 + §5 metadata construction)."""

import pytest

from repro.core.decoy import DECOY_TAG
from repro.core.encryptor import host_database
from repro.core.scheme import build_scheme
from repro.crypto.keyring import ClientKeyring
from repro.crypto.modes import cbc_decrypt
from repro.xmldb.node import Element, EncryptedBlockNode
from repro.xmldb.parser import parse_fragment
from repro.xmldb.serializer import serialize


def host(document, constraints, kind="opt", key=b"k" * 16):
    keyring = ClientKeyring(key)
    scheme = build_scheme(document, constraints, kind)
    return host_database(document, scheme, keyring), keyring, scheme


class TestHostedTree:
    def test_block_roots_replaced(self, healthcare_doc, healthcare_scs):
        hosted, _, scheme = host(healthcare_doc, healthcare_scs)
        placeholders = [
            node
            for node in hosted.hosted_root.iter()
            if isinstance(node, EncryptedBlockNode)
        ]
        assert len(placeholders) == len(scheme.block_root_ids)

    def test_top_scheme_root_is_placeholder(self, healthcare_doc, healthcare_scs):
        hosted, _, _ = host(healthcare_doc, healthcare_scs, "top")
        assert isinstance(hosted.hosted_root, EncryptedBlockNode)

    def test_no_plaintext_sensitive_values_in_hosted(
        self, healthcare_doc, healthcare_scs
    ):
        hosted, _, _ = host(healthcare_doc, healthcare_scs)
        hosted_xml = serialize(hosted.hosted_root)
        # Insurance data (node SC) must be invisible.  Values are matched
        # in their serialized leaf form (bare digit strings could collide
        # with hex ciphertext by chance).
        assert "policy#" not in hosted_xml
        assert ">34221<" not in hosted_xml
        assert 'coverage="1000000"' not in hosted_xml
        # Covered association endpoints too.
        for field in hosted.field_plans:
            for value in hosted.field_plans[field].ordered_values:
                assert f">{value}<" not in hosted_xml

    def test_original_document_untouched(self, healthcare_doc, healthcare_scs):
        before = serialize(healthcare_doc)
        host(healthcare_doc, healthcare_scs)
        assert serialize(healthcare_doc) == before

    def test_blocks_decrypt_to_original_plus_decoys(
        self, healthcare_doc, healthcare_scs
    ):
        hosted, keyring, scheme = host(healthcare_doc, healthcare_scs)
        for block_id, payload in hosted.blocks.items():
            plaintext = cbc_decrypt(
                keyring.block_cipher, keyring.block_iv(block_id), payload
            )
            subtree = parse_fragment(plaintext.decode("utf-8"))
            assert isinstance(subtree, Element)
            decoys = list(subtree.find_elements(DECOY_TAG))
            assert decoys, "every block carries at least one decoy"

    def test_equal_subtrees_encrypt_differently(self):
        """The decoy effect: the two diarrhea leaves differ as ciphertext."""
        from repro.core.constraints import SecurityConstraint
        from repro.xmldb.parser import parse_document

        doc = parse_document(
            "<r><t><d>diarrhea</d><n>a</n></t><t><d>diarrhea</d><n>b</n></t></r>"
        )
        constraints = [SecurityConstraint.parse("//t:(/d, /n)")]
        hosted, _, _ = host(doc, constraints)
        payloads = list(hosted.blocks.values())
        assert len(payloads) >= 2
        assert len(set(payloads)) == len(payloads)

    def test_deterministic_given_key(self, healthcare_doc, healthcare_scs):
        first, _, _ = host(healthcare_doc, healthcare_scs, key=b"a" * 16)
        second, _, _ = host(healthcare_doc, healthcare_scs, key=b"a" * 16)
        assert first.blocks == second.blocks
        assert serialize(first.hosted_root) == serialize(second.hosted_root)

    def test_key_changes_everything(self, healthcare_doc, healthcare_scs):
        first, _, _ = host(healthcare_doc, healthcare_scs, key=b"a" * 16)
        second, _, _ = host(healthcare_doc, healthcare_scs, key=b"b" * 16)
        assert first.blocks != second.blocks


class TestClientKnowledge:
    def test_tag_classification(self, healthcare_doc, healthcare_scs):
        hosted, _, _ = host(healthcare_doc, healthcare_scs)
        assert "insurance" in hosted.encrypted_tags
        assert "patient" in hosted.plaintext_keys
        assert "hospital" in hosted.plaintext_keys
        assert "@coverage" in hosted.encrypted_tags

    def test_field_plans_cover_encrypted_leaves(
        self, healthcare_doc, healthcare_scs
    ):
        hosted, _, scheme = host(healthcare_doc, healthcare_scs)
        assert "policy#" in hosted.field_plans  # inside insurance blocks
        assert "@coverage" in hosted.field_plans
        for field in scheme.covered_fields:
            assert field in hosted.field_plans

    def test_plaintext_fields_have_no_plans(self, healthcare_doc, healthcare_scs):
        hosted, _, _ = host(healthcare_doc, healthcare_scs)
        assert "age" not in hosted.field_plans  # age stays plaintext (opt)

    def test_field_tokens_match_tag_cipher(self, healthcare_doc, healthcare_scs):
        hosted, keyring, _ = host(healthcare_doc, healthcare_scs)
        for field, token in hosted.field_tokens.items():
            assert token == keyring.tag_cipher.encrypt_tag(field)

    def test_decoy_count_positive(self, healthcare_doc, healthcare_scs):
        hosted, _, _ = host(healthcare_doc, healthcare_scs)
        assert hosted.decoy_count > 0


class TestServerVisibleState:
    def test_plaintext_entries_annotated(self, healthcare_doc, healthcare_scs):
        hosted, _, _ = host(healthcare_doc, healthcare_scs)
        age_entries = hosted.structural_index.lookup("age")
        assert len(age_entries) == 2
        assert sorted(e.plaintext_value for e in age_entries) == ["35", "40"]
        assert all(e.hosted_node is not None for e in age_entries)

    def test_encrypted_entries_not_annotated(self, healthcare_doc, healthcare_scs):
        hosted, keyring, _ = host(healthcare_doc, healthcare_scs)
        token = keyring.tag_cipher.encrypt_tag("insurance")
        for entry in hosted.structural_index.lookup(token):
            assert entry.plaintext_value is None
            assert entry.hosted_node is None

    def test_value_index_only_covers_encrypted_fields(
        self, healthcare_doc, healthcare_scs
    ):
        hosted, keyring, _ = host(healthcare_doc, healthcare_scs)
        age_token = keyring.tag_cipher.encrypt_tag("age")
        assert hosted.value_index.tree_for(age_token) is None

    def test_hosted_size_smaller_for_opt_than_sub(
        self, healthcare_doc, healthcare_scs
    ):
        opt_hosted, _, _ = host(healthcare_doc, healthcare_scs, "opt")
        sub_hosted, _, _ = host(healthcare_doc, healthcare_scs, "sub")
        assert opt_hosted.hosted_size_bytes() <= sub_hosted.hosted_size_bytes()

    def test_reserved_tag_rejected(self, healthcare_scs):
        from repro.xmldb.builder import TreeBuilder

        builder = TreeBuilder("r")
        builder.leaf(DECOY_TAG, "x")
        doc = builder.document()
        with pytest.raises(ValueError):
            host(doc, [])
