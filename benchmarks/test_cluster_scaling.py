"""E-cluster — scatter–gather throughput and failover latency.

Sweeps the shard count over the XMark workload with every point on the
coordinator path (``ClusterConfig(shards=1)`` is the baseline — same
scatter–gather machinery, one shard), so the headline compares sharding
itself rather than coordinator overhead.  The throughput metric is the
**modelled warm makespan**: per query, the slowest shard's server+wire
time plus the gather merge, i.e. what a deployment with genuinely
parallel shard servers would observe.  The channel is pinned to 10 Mbps
so answer shipping — the term sharding actually divides — dominates the
fixed per-exchange latency.

A failover series then injects seeded drop faults into replica 0 of
every shard (replication factor 2) and records the makespan and backoff
cost of riding through them; answers must stay byte-identical at every
fault rate.

Results land in ``benchmarks/results/`` (human-readable) and
machine-readable ``BENCH_cluster.json`` at the repository root.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.cluster import ClusterConfig
from repro.core.system import SecureXMLSystem
from repro.netsim.channel import Channel
from repro.netsim.faults import FaultPolicy
from repro.perf import counters
from repro.workloads.xmark import xmark_constraints
from repro.xpath.compiler import UnsupportedQuery

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_cluster.json")
MASTER_KEY = b"cluster!benchmark-master-key-001"

#: shard counts swept — all through the coordinator, so 1 is the cluster
#: baseline rather than the legacy monolithic path
SHARD_SWEEP = (1, 2, 4)

#: finer groups than the default smooth out per-query fragment skew
GROUPS_PER_SHARD = 8

#: narrow enough that shipped bytes dominate the fixed per-leg latency
BANDWIDTH_BPS = 10_000_000.0

#: seeded drop rates injected into replica 0 for the failover series
FAULT_RATES = (0.0, 0.25, 0.5)

_REPORT: dict[str, object] = {
    "trials": BENCH_TRIALS,
    "bandwidth_bps": BANDWIDTH_BPS,
    "groups_per_shard": GROUPS_PER_SHARD,
}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _channel() -> Channel:
    return Channel(bandwidth_bits_per_second=BANDWIDTH_BPS)


@pytest.fixture(scope="module")
def cluster_queries(xmark_doc, xmark_queries):
    """Server-evaluable multi-match queries from the shared workload.

    Qm/Ql answers are many independent fragments, so ownership divides
    their shipped bytes across shards.  Qs container fetches such as
    ``/site/people`` return the whole subtree as ONE fragment — an
    indivisible unit that a fragment-sharded cluster cannot split, so
    they scale at exactly 1.0x by construction and are covered by the
    correctness suite rather than the scaling sweep.
    """
    probe = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    unique = []
    for query_class in ("Qm", "Ql"):
        for query in xmark_queries[query_class]:
            try:
                probe.client.translate(query)
            except UnsupportedQuery:
                continue
            if query not in unique:
                unique.append(query)
    assert unique, "workload produced no server-evaluable queries"
    return unique


@pytest.fixture(scope="module")
def swept_clusters(xmark_doc):
    """One hosted cluster per swept shard count, identical hosted bytes."""
    constraints = xmark_constraints()
    systems = {
        shards: SecureXMLSystem.host(
            xmark_doc,
            constraints,
            scheme="opt",
            master_key=MASTER_KEY,
            cluster=ClusterConfig(
                shards=shards, groups_per_shard=GROUPS_PER_SHARD
            ),
            channel=_channel(),
        )
        for shards in SHARD_SWEEP
    }
    yield systems
    for system in systems.values():
        system.close()


def _makespan_pass(system, queries) -> tuple[list[str], float]:
    """Run the batch once; return canonical answers + summed makespan."""
    canonical = []
    makespan = 0.0
    for query in queries:
        canonical.append(system.query(query).canonical())
        makespan += system.last_trace.cluster_makespan_s
    return canonical, makespan


def test_cluster_warm_throughput(swept_clusters, cluster_queries, xmark_doc):
    """4 shards deliver ≥2× the 1-shard warm scatter–gather throughput."""
    queries = cluster_queries
    monolithic = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    reference = [monolithic.query(query).canonical() for query in queries]

    sweep: list[dict[str, float]] = []
    for shards, system in swept_clusters.items():
        # Cold pass: first contact, also warms the shard caches — and the
        # byte-identity gate: a throughput win that changed an answer
        # would be a bug, not a result.
        started = time.perf_counter()
        canonical, cold_makespan = _makespan_pass(system, queries)
        cold_wall_s = time.perf_counter() - started
        assert canonical == reference, (
            f"{shards}-shard answers diverged from the monolithic server"
        )

        gc.collect()
        gc.disable()
        try:
            wall_samples = []
            for _ in range(BENCH_TRIALS):
                started = time.perf_counter()
                canonical, warm_makespan = _makespan_pass(system, queries)
                wall_samples.append(time.perf_counter() - started)
        finally:
            gc.enable()
        assert canonical == reference

        sweep.append(
            {
                "shards": shards,
                "cold_makespan_s": cold_makespan,
                "warm_makespan_s": warm_makespan,
                "warm_wall_s": trimmed_mean(wall_samples),
                "warm_queries_per_model_s": len(queries) / warm_makespan,
                "cold_wall_s": cold_wall_s,
            }
        )

    baseline = sweep[0]
    for point in sweep:
        point["warm_speedup_vs_one_shard"] = (
            baseline["warm_makespan_s"] / point["warm_makespan_s"]
        )

    rows = [
        [
            f"{p['shards']} shard(s)",
            p["cold_makespan_s"],
            p["warm_makespan_s"],
            p["warm_queries_per_model_s"],
            p["warm_speedup_vs_one_shard"],
        ]
        for p in sweep
    ]
    write_result(
        "cluster_scaling",
        format_table(
            ["cluster", "t_cold", "t_warm", "q/s warm", "speedup"],
            rows,
            f"Scatter–gather scaling — {len(queries)} XMark queries, "
            f"modelled makespan at {BANDWIDTH_BPS / 1e6:.0f} Mbps",
        ),
    )
    _REPORT["throughput_vs_shards"] = {
        "query_count": len(queries),
        "sweep": sweep,
    }
    _write_report()

    at_four = next(p for p in sweep if p["shards"] == 4)
    assert at_four["warm_speedup_vs_one_shard"] >= 2.0, (
        f"warm speedup {at_four['warm_speedup_vs_one_shard']:.2f}x below "
        "the 2x acceptance floor"
    )


def test_cluster_failover_latency(xmark_doc, cluster_queries):
    """Makespan/backoff cost of riding over a flaky primary, per rate."""
    queries = cluster_queries
    constraints = xmark_constraints()
    series: list[dict[str, float]] = []
    reference: list[list[str]] | None = None

    for rate in FAULT_RATES:

        def faults(shard_id: int, replica_id: int, _rate=rate):
            if replica_id != 0 or _rate == 0.0:
                return None
            return FaultPolicy.symmetric(
                seed=1000 + shard_id, drop=_rate
            )

        system = SecureXMLSystem.host(
            xmark_doc,
            constraints,
            scheme="opt",
            master_key=MASTER_KEY,
            cluster=ClusterConfig(
                shards=2, replicas=2, groups_per_shard=GROUPS_PER_SHARD
            ),
            channel=_channel(),
            cluster_faults=faults,
        )
        try:
            canonical, _ = _makespan_pass(system, queries)  # warm caches
            canonical, makespan = _makespan_pass(system, queries)
            if reference is None:
                reference = canonical
            else:
                assert canonical == reference, (
                    f"answers diverged at fault rate {rate}"
                )
            failovers = sum(
                rs.stats.failovers for rs in system.coordinator.replica_sets
            )
            series.append(
                {
                    "drop_rate": rate,
                    "warm_makespan_s": makespan,
                    "failovers": failovers,
                }
            )
        finally:
            system.close()

    baseline = series[0]["warm_makespan_s"]
    for point in series:
        point["makespan_overhead"] = point["warm_makespan_s"] / baseline

    write_result(
        "cluster_failover",
        format_table(
            ["drop rate", "t_warm", "failovers", "overhead"],
            [
                [f"{p['drop_rate']:.2f}", p["warm_makespan_s"],
                 p["failovers"], p["makespan_overhead"]]
                for p in series
            ],
            "Failover latency — 2 shards x 2 replicas, seeded drops on "
            "replica 0",
        ),
    )
    _REPORT["failover_latency"] = {"series": series}
    _write_report()

    flaky = [p for p in series if p["drop_rate"] > 0]
    assert any(p["failovers"] > 0 for p in flaky), (
        "fault injection never triggered a failover"
    )


def test_cluster_exercises_new_machinery(swept_clusters, cluster_queries):
    """The sweep actually drove the scatter–gather path (not a no-op)."""
    system = swept_clusters[4]
    before = counters.snapshot()
    for query in cluster_queries:
        system.query(query)
    delta = counters.delta_since(before)
    assert delta["cluster_scatters"] > 0, "no query went through a scatter"
    assert delta["shard_exchanges"] >= 4 * delta["cluster_scatters"], (
        "scatters did not fan out to every shard"
    )
    _REPORT["machinery"] = {
        "warm_batch_delta": {k: v for k, v in delta.items() if v},
    }
    _write_report()
