"""Simulated client↔server channel: byte/latency accounting, wire message
codecs, and deterministic fault injection for chaos testing."""

from repro.netsim.channel import (
    DIRECTIONS,
    Channel,
    NullChannel,
    TransferRecord,
)
from repro.netsim.faults import (
    FaultEvent,
    FaultPolicy,
    FaultRates,
    FaultyChannel,
    TransferDropped,
)
from repro.netsim.message import MessageDecodeError

__all__ = [
    "Channel",
    "DIRECTIONS",
    "FaultEvent",
    "FaultPolicy",
    "FaultRates",
    "FaultyChannel",
    "MessageDecodeError",
    "NullChannel",
    "TransferDropped",
    "TransferRecord",
]
