"""AES-128 block cipher, implemented from the FIPS-197 specification.

Used (through the modes in :mod:`repro.crypto.modes`) to encrypt the
serialized subtrees that become encryption blocks (§4.1).  The S-box is
derived programmatically from its definition — multiplicative inverse in
GF(2⁸) followed by the affine transform — rather than hard-coded, and the
whole cipher is validated against the FIPS-197 Appendix C test vector in the
test suite.
"""

from __future__ import annotations


def _gf_multiply(a: int, b: int) -> int:
    """Multiply two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high_bit = a & 0x80
        a = (a << 1) & 0xFF
        if high_bit:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2⁸) (0 maps to 0, per the S-box spec)."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_multiply(result, base)
        base = _gf_multiply(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the forward and inverse S-boxes from first principles."""
    forward = bytearray(256)
    for value in range(256):
        inverse = _gf_inverse(value)
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        transformed = 0
        for bit in range(8):
            bit_value = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= bit_value << bit
        forward[value] = transformed
    backward = bytearray(256)
    for value, substituted in enumerate(forward):
        backward[substituted] = value
    return bytes(forward), bytes(backward)


_SBOX, _INV_SBOX = _build_sbox()

# Precomputed GF(2^8) multiplication tables for the MixColumns constants.
# Table lookups replace per-byte _gf_multiply loops in the hot path; the
# tables themselves are still derived from the from-scratch field
# arithmetic above.
_MUL = {
    constant: bytes(_gf_multiply(value, constant) for value in range(256))
    for constant in (2, 3, 9, 11, 13, 14)
}

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


class AES128:
    """AES with a 128-bit key: 10 rounds over a 4×4 byte state."""

    BLOCK_SIZE = 16
    KEY_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(bytes(key))

    # ------------------------------------------------------------------
    # Key schedule
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS-197 §5.2 key expansion to 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]                     # RotWord
                word = [_SBOX[b] for b in word]                # SubWord
                word[0] ^= _RCON[i // 4 - 1]
            words.append([w ^ p for w, p in zip(word, words[i - 4])])
        round_keys = []
        for round_index in range(11):
            flat: list[int] = []
            for word in words[round_index * 4 : round_index * 4 + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # ------------------------------------------------------------------
    # Round transformations (state is a flat list of 16 bytes,
    # column-major as in the spec: state[row + 4*col]).
    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            row_bytes = [state[row + 4 * col] for col in range(4)]
            row_bytes = row_bytes[row:] + row_bytes[:row]
            for col in range(4):
                state[row + 4 * col] = row_bytes[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            row_bytes = [state[row + 4 * col] for col in range(4)]
            row_bytes = row_bytes[-row:] + row_bytes[:-row]
            for col in range(4):
                state[row + 4 * col] = row_bytes[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        mul2, mul3 = _MUL[2], _MUL[3]
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            state[col + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            state[col + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            state[col + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        mul9, mul11, mul13, mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
            state[col + 1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
            state[col + 2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
            state[col + 3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]

    # ------------------------------------------------------------------
    # Public block interface
    # ------------------------------------------------------------------
    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != self.BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, 10):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != self.BLOCK_SIZE:
            raise ValueError("ciphertext block must be 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for round_index in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
