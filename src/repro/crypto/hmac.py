"""HMAC-SHA256 per RFC 2104, over our from-scratch SHA-256.

Used as the keyed PRF underlying key derivation, the deterministic tag
cipher's keystream, and the order-preserving encryption function's gap
generator.  Cross-checked against the standard library ``hmac`` module in
the test suite.

:func:`hmac_sha256_fast` computes the *same function* through the
C-backed ``hashlib`` — the integrity envelope MACs every wire payload and
every encryption block, and the from-scratch SHA-256 costs microseconds
per byte, which would dominate the hot query path.  The two
implementations are asserted byte-identical in the test suite, so the
fast variant is an implementation detail, not a different primitive.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac

from repro.crypto.sha256 import sha256

_BLOCK_SIZE = 64  # SHA-256 block size in bytes


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message) (32 bytes)."""
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError("hmac key must be bytes")
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("hmac message must be bytes")

    key = bytes(key)
    if len(key) > _BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(_BLOCK_SIZE, b"\x00")

    inner_pad = bytes(byte ^ 0x36 for byte in key)
    outer_pad = bytes(byte ^ 0x5C for byte in key)
    return sha256(outer_pad + sha256(inner_pad + bytes(message)))


def hmac_sha256_fast(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256(key, message) via ``hashlib`` (hot-path variant).

    Byte-identical to :func:`hmac_sha256`; used where the MAC runs over
    whole wire payloads on every query.
    """
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError("hmac key must be bytes")
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("hmac message must be bytes")
    return _stdlib_hmac.new(bytes(key), bytes(message), hashlib.sha256).digest()


def derive_key(master: bytes, label: str, *context: str) -> bytes:
    """Derive a 32-byte subkey from a master secret.

    A simple HKDF-expand-style derivation: the label and context strings are
    length-prefixed so distinct derivations can never collide
    (``derive_key(k, "a", "bc") != derive_key(k, "ab", "c")``).
    """
    material = _length_prefixed(label.encode("utf-8"))
    for item in context:
        material += _length_prefixed(item.encode("utf-8"))
    return hmac_sha256(master, material)


def _length_prefixed(data: bytes) -> bytes:
    return len(data).to_bytes(4, "big") + data
