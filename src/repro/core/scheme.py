"""Encryption schemes (§3.1, §4) and the four granularities of §7.1.

An encryption scheme is "an identification of those elements that are to be
encrypted": here, the set of block-root elements, each of which becomes one
encryption block.  The module provides the secure-scheme construction of
Theorem 4.1 plus the four scheme families the experiments compare:

* ``opt``  — block per covered node, cover chosen by the exact solver;
* ``app``  — same, cover chosen by Clarkson's greedy 2-approximation;
* ``sub``  — blocks rooted at the *parents* of the ``opt`` blocks;
* ``top``  — the whole document as a single block.

All four enforce the SCs (they encrypt at least the covered nodes, with
decoys); they differ in granularity, which is exactly the efficiency axis
the evaluation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.xmldb.node import Document, Element
from repro.core.constraint_graph import _encryptable, build_constraint_graph
from repro.core.constraints import SecurityConstraint
from repro.core.optimal import clarkson_greedy_cover, exact_min_cover

SCHEME_KINDS = ("opt", "app", "sub", "top", "leaf")


@dataclass(frozen=True)
class EncryptionScheme:
    """A set of encryption-block roots over a specific document.

    ``block_root_ids`` are document-order node ids, valid for the document
    the scheme was built from.  The set is normalized: no root is a
    descendant of another (nested choices merge into the outermost root).
    """

    kind: str
    block_root_ids: frozenset[int]
    covered_fields: frozenset[str] = field(default_factory=frozenset)

    def block_roots(self, document: Document) -> list[Element]:
        """Resolve ids to elements, in document order."""
        roots = []
        for node_id in sorted(self.block_root_ids):
            node = document.node_by_id(node_id)
            assert isinstance(node, Element)
            roots.append(node)
        return roots

    def size(self, document: Document) -> int:
        """Scheme size |S| per Definition 4.1: Σ block sizes incl. decoys."""
        total = 0
        for root in self.block_roots(document):
            leaf_count = sum(
                1
                for node in root.iter()
                if isinstance(node, Element) and node.is_leaf_element
            )
            total += root.subtree_size() + max(leaf_count, 1)
        return total

    def encrypts_everything(self, document: Document) -> bool:
        return self.block_root_ids == {document.root.node_id}


def _normalize_roots(document: Document, roots: list[Element]) -> frozenset[int]:
    """Drop roots nested inside other roots; return id set."""
    ids = {root.node_id for root in roots}
    keep: set[int] = set()
    for root in roots:
        if any(
            ancestor.node_id in ids for ancestor in root.ancestors()
        ):
            continue
        keep.add(root.node_id)
    return frozenset(keep)


def _covered_elements(
    document: Document,
    constraints: list[SecurityConstraint],
    cover_algorithm: Callable,
) -> tuple[list[Element], set[str]]:
    """Elements to encrypt: node-type targets + association cover bindings."""
    elements: list[Element] = []
    seen: set[int] = set()

    def add(element: Element) -> None:
        if id(element) not in seen:
            seen.add(id(element))
            elements.append(element)

    for constraint in constraints:
        if not constraint.is_association:
            for node in constraint.context_nodes(document):
                add(node)

    graph = build_constraint_graph(document, constraints)
    cover = cover_algorithm(graph) if graph.edges else set()
    for field_name in sorted(cover):
        for element in graph.bindings[field_name]:
            add(element)
    return elements, set(cover)


def opt_scheme(
    document: Document, constraints: list[SecurityConstraint]
) -> EncryptionScheme:
    """The optimal secure scheme: exact minimum-weight cover (§4.2)."""
    elements, cover = _covered_elements(document, constraints, exact_min_cover)
    return EncryptionScheme(
        "opt", _normalize_roots(document, elements), frozenset(cover)
    )


def app_scheme(
    document: Document, constraints: list[SecurityConstraint]
) -> EncryptionScheme:
    """The approximate scheme: Clarkson's greedy cover (§4.2, §7.1)."""
    elements, cover = _covered_elements(
        document, constraints, clarkson_greedy_cover
    )
    return EncryptionScheme(
        "app", _normalize_roots(document, elements), frozenset(cover)
    )


def sub_scheme(
    document: Document, constraints: list[SecurityConstraint]
) -> EncryptionScheme:
    """Blocks at the parents of the ``opt`` blocks (§7.1's "sub" scheme)."""
    base = opt_scheme(document, constraints)
    parents: list[Element] = []
    seen: set[int] = set()
    for root in base.block_roots(document):
        parent = root.parent if root.parent is not None else root
        assert isinstance(parent, Element)
        if id(parent) not in seen:
            seen.add(id(parent))
            parents.append(parent)
    return EncryptionScheme(
        "sub", _normalize_roots(document, parents), base.covered_fields
    )


def top_scheme(
    document: Document, constraints: list[SecurityConstraint] | None = None
) -> EncryptionScheme:
    """The whole document as one encryption block (§7.1's "top" scheme)."""
    fields: frozenset[str] = frozenset()
    if constraints:
        graph = build_constraint_graph(document, constraints)
        fields = frozenset(graph.weights)
    return EncryptionScheme(
        "top", frozenset({document.root.node_id}), fields
    )


def naive_leaf_scheme(
    document: Document, constraints: list[SecurityConstraint]
) -> EncryptionScheme:
    """The §4.1 strawman: encrypt every sensitive leaf individually.

    "If the client plainly encrypts each disease and age element
    individually, the encrypted value of leukemia will have the same
    number of occurrence as before encryption ... the attacker can easily
    identify the plaintext values and infer the classified association."

    This scheme encrypts *both* endpoints of every association SC (and all
    node-SC targets) as per-leaf blocks.  It only yields the insecure
    behaviour when hosted with ``secure=False`` (no decoys, deterministic
    block encryption); it exists so the attack experiments can run against
    real ciphertext rather than a simulated histogram.
    """
    elements: list[Element] = []
    seen: set[int] = set()
    for constraint in constraints:
        if constraint.is_association:
            bound = []
            for which in (1, 2):
                bound.extend(constraint.endpoint_nodes(document, which))
        else:
            bound = list(constraint.context_nodes(document))
        for node in bound:
            element = _encryptable(node)
            if id(element) not in seen:
                seen.add(id(element))
                elements.append(element)
    fields = frozenset(
        constraint.endpoint_field(which)
        for constraint in constraints
        if constraint.is_association
        for which in (1, 2)
    )
    return EncryptionScheme(
        "leaf", _normalize_roots(document, elements), fields
    )


def build_scheme(
    document: Document,
    constraints: list[SecurityConstraint],
    kind: str,
) -> EncryptionScheme:
    """Factory dispatching on the §7.1 scheme names (plus "leaf", §4.1)."""
    if kind == "opt":
        return opt_scheme(document, constraints)
    if kind == "app":
        return app_scheme(document, constraints)
    if kind == "sub":
        return sub_scheme(document, constraints)
    if kind == "top":
        return top_scheme(document, constraints)
    if kind == "leaf":
        return naive_leaf_scheme(document, constraints)
    raise ValueError(f"unknown scheme kind {kind!r}; expected one of {SCHEME_KINDS}")
