"""NASA-like synthetic astronomy dataset (the paper's real data stand-in).

The paper's real dataset is the NASA astronomy database from the UW XML
repository (``datasets/dataset`` records with author names, titles,
publishers, dates...).  The original file is not redistributable here, so
this seeded generator reproduces the structural shape and the tags of the
Figure 8(b) constraint graph: ``initial``, ``last``, ``date``,
``publisher``, ``age``, ``title``, ``city``.
"""

from __future__ import annotations

from repro.core.constraints import SecurityConstraint, parse_constraints
from repro.crypto.prf import DeterministicRandom
from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Document

#: Association SCs matching the Figure 8(b) constraint-graph shape: every
#: edge touches ``initial`` or ``last``, so the optimal cover is
#: {initial, last} — the cover the paper reports for its opt scheme.
NASA_CONSTRAINTS = [
    "//author:(/initial, /last)",
    "//dataset:(//initial, //date)",
    "//dataset:(//last, //publisher)",
    "//dataset:(//last, /title)",
    "//dataset:(//initial, //age)",
    "//dataset:(//last, //city)",
]

_LAST_NAMES = [
    "Hubble", "Kepler", "Leavitt", "Payne", "Rubin", "Sagan", "Tombaugh",
    "Cannon", "Herschel", "Somerville", "Burnell", "Chandra",
]
_PUBLISHERS = [
    "ADC", "CDS", "NSSDC", "HEASARC", "IPAC",
]
_CITIES = ["Greenbelt", "Strasbourg", "Pasadena", "Baltimore", "Cambridge"]
_SUBJECTS = [
    "photometry", "astrometry", "spectroscopy", "radial velocities",
    "proper motions", "variable stars", "galaxy clusters",
]


def build_nasa_database(
    dataset_count: int = 150, seed: int = 2
) -> Document:
    """Generate a deterministic NASA-like document (~20 nodes per dataset)."""
    rng = DeterministicRandom(
        seed.to_bytes(8, "big").rjust(16, b"\x00"), "nasa"
    )
    builder = TreeBuilder("datasets")
    for index in range(dataset_count):
        _add_dataset(builder, rng, index)
    return builder.document()


def _add_dataset(
    builder: TreeBuilder, rng: DeterministicRandom, index: int
) -> None:
    with builder.element("dataset", subject=rng.choice(_SUBJECTS)):
        builder.leaf(
            "title",
            f"{rng.choice(_SUBJECTS).title()} catalogue {index}",
        )
        builder.leaf("altname", f"CAT-{rng.randint(100, 999)}")
        with builder.element("history"):
            with builder.element("creation"):
                # Skewed dates: most catalogues cluster in a few years.
                year = 1970 + (
                    rng.randint(0, 5)
                    if rng.randint(1, 10) <= 7
                    else rng.randint(6, 40)
                )
                builder.leaf("date", f"{year}-{rng.randint(1, 12):02d}")
        with builder.element("reference"):
            with builder.element("source"):
                with builder.element("journal"):
                    for _ in range(1 + rng.randint(0, 2)):
                        with builder.element("author"):
                            builder.leaf(
                                "initial",
                                chr(ord("A") + rng.randint(0, 25)),
                            )
                            builder.leaf("last", rng.choice(_LAST_NAMES))
                            builder.leaf("age", str(25 + rng.randint(0, 50)))
        with builder.element("distribution"):
            builder.leaf("publisher", rng.choice(_PUBLISHERS))
            builder.leaf("city", rng.choice(_CITIES))
            builder.leaf("size", str(rng.randint(1, 5000)))


def nasa_constraints() -> list[SecurityConstraint]:
    """The Figure 8(b)-shaped SC set."""
    return parse_constraints(NASA_CONSTRAINTS)
