"""Tests for encryption schemes (§4, §7.1) and decoys (§4.1)."""

import pytest

from repro.core.decoy import (
    DECOY_TAG,
    assert_no_reserved_tags,
    inject_decoys,
    remove_decoys,
)
from repro.core.scheme import (
    EncryptionScheme,
    app_scheme,
    build_scheme,
    opt_scheme,
    sub_scheme,
    top_scheme,
)
from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Document, Element, Text
from repro.xmldb.parser import parse_document
from repro.xpath.evaluator import evaluate


class TestSchemeConstruction:
    def test_opt_covers_all_constraints(self, healthcare_doc, healthcare_scs):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        roots = scheme.block_roots(healthcare_doc)
        tags = sorted({root.tag for root in roots})
        # insurance elements (node SC) plus one endpoint per association.
        assert "insurance" in tags
        assert scheme.covered_fields  # some cover was chosen

    def test_opt_encrypts_insurance_nodes(self, healthcare_doc, healthcare_scs):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        insurance_nodes = evaluate(healthcare_doc, "//insurance")
        root_ids = scheme.block_root_ids
        assert all(node.node_id in root_ids for node in insurance_nodes)

    def test_cover_is_valid_for_associations(
        self, healthcare_doc, healthcare_scs
    ):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        cover = scheme.covered_fields
        for constraint in healthcare_scs:
            if constraint.is_association:
                endpoints = {
                    constraint.endpoint_field(1),
                    constraint.endpoint_field(2),
                }
                assert endpoints & cover, str(constraint)

    def test_app_is_valid_cover_too(self, healthcare_doc, healthcare_scs):
        scheme = app_scheme(healthcare_doc, healthcare_scs)
        for constraint in healthcare_scs:
            if constraint.is_association:
                endpoints = {
                    constraint.endpoint_field(1),
                    constraint.endpoint_field(2),
                }
                assert endpoints & scheme.covered_fields

    def test_opt_size_at_most_app(self, healthcare_doc, healthcare_scs):
        optimal = opt_scheme(healthcare_doc, healthcare_scs)
        approximate = app_scheme(healthcare_doc, healthcare_scs)
        assert optimal.size(healthcare_doc) <= approximate.size(healthcare_doc)

    def test_sub_blocks_are_parents_of_opt(self, healthcare_doc, healthcare_scs):
        base = opt_scheme(healthcare_doc, healthcare_scs)
        parent = sub_scheme(healthcare_doc, healthcare_scs)
        parent_ids = parent.block_root_ids
        for root in base.block_roots(healthcare_doc):
            assert any(
                ancestor.node_id in parent_ids
                for ancestor in [root] + list(root.ancestors())
            )

    def test_top_is_single_root_block(self, healthcare_doc, healthcare_scs):
        scheme = top_scheme(healthcare_doc, healthcare_scs)
        assert scheme.block_root_ids == {healthcare_doc.root.node_id}
        assert scheme.encrypts_everything(healthcare_doc)

    def test_scheme_ordering_by_size(self, healthcare_doc, healthcare_scs):
        """|opt| <= |app| <= |top|: granularity monotonicity (§7.4)."""
        sizes = {
            kind: build_scheme(healthcare_doc, healthcare_scs, kind).size(
                healthcare_doc
            )
            for kind in ("opt", "app", "top")
        }
        assert sizes["opt"] <= sizes["app"] <= sizes["top"]

    def test_build_scheme_rejects_unknown(self, healthcare_doc, healthcare_scs):
        with pytest.raises(ValueError):
            build_scheme(healthcare_doc, healthcare_scs, "huge")

    def test_roots_normalized_no_nesting(self, healthcare_doc, healthcare_scs):
        for kind in ("opt", "app", "sub", "top"):
            scheme = build_scheme(healthcare_doc, healthcare_scs, kind)
            roots = scheme.block_roots(healthcare_doc)
            for root in roots:
                assert not any(
                    other is not root and other.is_ancestor_of(root)
                    for other in roots
                )

    def test_attribute_endpoint_encrypts_owner(self):
        doc = parse_document(
            "<r><item cost='5'><name>x</name></item>"
            "<item cost='6'><name>y</name></item></r>"
        )
        from repro.core.constraints import SecurityConstraint

        constraints = [SecurityConstraint.parse("//item:(/name, /@cost)")]
        scheme = opt_scheme(doc, constraints)
        roots = scheme.block_roots(doc)
        assert all(root.tag in ("name", "item") for root in roots)


class TestDecoys:
    def _stream(self):
        return DeterministicRandom(b"d" * 16, "test")

    def test_decoy_added_to_each_leaf(self):
        root = parse_document(
            "<treat><disease>flu</disease><doctor>Who</doctor></treat>"
        ).root
        count = inject_decoys(root, self._stream())
        assert count == 2
        for leaf_tag in ("disease", "doctor"):
            leaf = next(root.find_elements(leaf_tag))
            decoy_children = [
                c for c in leaf.children
                if isinstance(c, Element) and c.tag == DECOY_TAG
            ]
            assert len(decoy_children) == 1

    def test_leafless_block_gets_one_decoy(self):
        root = Element("empty")
        count = inject_decoys(root, self._stream())
        assert count == 1
        assert root.children[0].tag == DECOY_TAG

    def test_decoys_are_random_values(self):
        first = Element("a")
        first.append(Text("v"))
        wrapper = Element("w")
        wrapper.append(first)
        second = wrapper.clone()
        stream = self._stream()
        inject_decoys(wrapper, stream)
        inject_decoys(second, stream)
        decoy_1 = next(wrapper.find_elements(DECOY_TAG)).text_value()
        decoy_2 = next(second.find_elements(DECOY_TAG)).text_value()
        assert decoy_1 != decoy_2  # stream advances: same subtree, new salt

    def test_remove_decoys_restores_leaves(self):
        root = parse_document(
            "<treat><disease>flu</disease><doctor>Who</doctor></treat>"
        ).root
        original = [n.text_value() for n in root.children]
        inject_decoys(root, self._stream())
        assert root.children[0].text_value() is None  # no longer simple leaf
        removed = remove_decoys(root)
        assert removed == 2
        assert [n.text_value() for n in root.children] == original

    def test_reserved_tag_guard(self):
        doc = Document(Element(DECOY_TAG))
        with pytest.raises(ValueError):
            assert_no_reserved_tags(doc)

    def test_decoy_roundtrip_via_serialization(self):
        from repro.xmldb.parser import parse_fragment
        from repro.xmldb.serializer import serialize

        root = parse_document("<a><b>v</b></a>").root
        inject_decoys(root, self._stream())
        reparsed = parse_fragment(serialize(root))
        remove_decoys(reparsed)
        assert serialize(reparsed) == "<a><b>v</b></a>"
