"""The paper's contribution: secure encryption schemes, metadata and querying.

Module map (paper section in parentheses):

* :mod:`repro.core.constraints` — security constraints (§3.2)
* :mod:`repro.core.constraint_graph` — the tag/association graph (§4.2, Fig. 8)
* :mod:`repro.core.optimal` — optimal & approximate vertex-cover solvers (§4.2)
* :mod:`repro.core.scheme` — encryption schemes: top/sub/app/opt (§4, §7.1)
* :mod:`repro.core.decoy` — encryption decoys (§4.1)
* :mod:`repro.core.encryptor` — block extraction and AES encryption (§4.1)
* :mod:`repro.core.dsi` — the DSI structural index + block table (§5.1)
* :mod:`repro.core.opess` — order-preserving encryption with splitting and
  scaling, and the B-tree value index (§5.2)
* :mod:`repro.core.translate` — client-side query translation (§6.1)
* :mod:`repro.core.structural_join` — interval pattern matching (§6.2)
* :mod:`repro.core.server` — the untrusted server (§6.2)
* :mod:`repro.core.client` — the data owner (§6.1, §6.4)
* :mod:`repro.core.system` — the end-to-end façade with per-stage tracing
"""
