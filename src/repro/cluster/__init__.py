"""Sharded, replicated server cluster with scatter–gather execution.

The cluster layer partitions a hosted database across N server instances
by DSI interval group (deterministic, seed-stable placement; replication
factor R) and runs every query as a scatter–gather over the existing
sealed netsim channels, reassembling answers byte-identical to the
single-server path.  See ``docs/CLUSTER.md`` for the design.
"""

from repro.cluster.coordinator import ClusterCoordinator, ShardEpochs
from repro.cluster.placement import (
    ClusterConfig,
    GroupPlacement,
    PlacementMap,
    build_placement,
)
from repro.cluster.replication import (
    ClusterDegradedError,
    Replica,
    ReplicaSet,
    ShardStats,
)
from repro.cluster.shard import ShardServer, ShardView

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterDegradedError",
    "GroupPlacement",
    "PlacementMap",
    "Replica",
    "ReplicaSet",
    "ShardEpochs",
    "ShardServer",
    "ShardStats",
    "ShardView",
    "build_placement",
]
