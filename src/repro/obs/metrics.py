"""Metrics registry: counters + latency histograms, with two exporters.

Wraps the process-wide :data:`repro.perf.counters` registry (counters
stay global — the crypto layer increments them without any handle on a
system object) and adds per-registry latency histograms for the stages
the paper's §7 experiments care about: whole-query latency, per-chunk
fragment decryption, retry backoff, and modelled wire transfer.

Exporters:

* :meth:`MetricsRegistry.to_json` — a plain dict for tests, the bench
  harness, and ``repro stats --format json``;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format 0.0.4 (``# HELP``/``# TYPE`` headers, ``_total`` counters,
  ``_bucket{le=...}``/``_sum``/``_count`` histograms), linted by
  :func:`lint_prometheus` in CI.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Iterable

from repro.perf import counters as _global_counters
from repro.perf.counters import PerfCounters

#: Log-spaced upper bounds (seconds) covering 0.1ms .. 10s — wide enough
#: for both a warm memo hit and a naive ship-everything fallback.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Histograms every registry carries, with their HELP strings.
HISTOGRAMS: dict[str, str] = {
    "query_seconds": "End-to-end secure query latency (client wall time).",
    "chunk_decrypt_seconds": "Per-fragment decrypt+strip time on the client.",
    "retry_backoff_seconds": "Modelled backoff before each query retry.",
    "transfer_seconds": "Modelled wire time per channel transfer.",
    "cluster_scatter_seconds": "Scatter phase: all shard exchanges of one query.",
    "cluster_gather_seconds": "Gather phase: merge of the partial responses.",
    "shard_exchange_seconds": "One shard's server + wire time within a scatter.",
    "plane_build_seconds": "Columnar DSI plane build time (entries → flat arrays).",
    # Unitless lag (commits, not seconds) — recorded when a replica is
    # demoted for serving stale state, so the distribution shows how far
    # behind stale replicas were when caught.
    "shard_epoch_lag": "Commit-epoch lag of a replica demoted for staleness.",
    "serving_request_seconds": (
        "Socket request latency: admission to last response frame."
    ),
    # Unitless depth (requests, not seconds) — sampled at each admission
    # decision, so the distribution shows how full the bounded in-flight
    # queue runs under load.
    "serving_queue_depth": "In-flight queue depth sampled at admission.",
    # Unitless count (block fetches, not seconds) — one sample per
    # evaluated query and observer, so the distribution shows how well
    # padding flattens per-query fetch counts (real + decoy + pad).
    "leakage_fetch_blocks": "Block fetches one evaluated query drove.",
}

#: Per-histogram bucket overrides for unitless metrics whose values do
#: not fit the log-spaced seconds scale.
HISTOGRAM_BUCKETS: dict[str, tuple[float, ...]] = {
    "serving_queue_depth": (
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    ),
    "leakage_fetch_blocks": (
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    ),
}

#: Gauges every registry carries (instantaneous values, set not
#: incremented), with their HELP strings.
GAUGES: dict[str, str] = {
    "serving_connections": "Currently open serving-layer connections.",
    "serving_inflight": "Requests currently admitted and executing.",
}

#: Labeled counter families (name → HELP).  Kept deliberately small —
#: every label value mints a new time series, so only the per-tenant
#: request counter (bounded by the tenant registry) lives here.
LABELED_COUNTERS: dict[str, str] = {
    "serving_tenant_requests": "Requests handled, by serving tenant.",
}

_PROM_PREFIX = "repro_"


class Histogram:
    """Fixed-bucket latency histogram (cumulative, Prometheus-style).

    Not thread-safe by itself; :class:`MetricsRegistry` serializes
    :meth:`observe` under its own lock.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                repr(bound): cumulative
                for bound, cumulative in zip(self.buckets, self.bucket_counts)
            },
        }


class MetricsRegistry:
    """Counters (global) + histograms (per registry), exportable."""

    def __init__(self, perf: PerfCounters | None = None) -> None:
        self._perf = perf if perf is not None else _global_counters
        self._lock = threading.Lock()
        self._histograms = self._fresh_histograms()
        self._gauges: dict[str, float] = {name: 0.0 for name in GAUGES}
        #: family → {canonical label string → count}.
        self._labeled: dict[str, dict[str, int]] = {
            name: {} for name in LABELED_COUNTERS
        }

    @staticmethod
    def _fresh_histograms() -> dict[str, Histogram]:
        return {
            name: Histogram(HISTOGRAM_BUCKETS.get(name, DEFAULT_BUCKETS))
            for name in HISTOGRAMS
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one latency sample into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            raise ValueError(
                f"unknown histogram {name!r}; known: "
                + ", ".join(sorted(self._histograms))
            )
        with self._lock:
            histogram.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous gauge value."""
        if name not in GAUGES:
            raise ValueError(
                f"unknown gauge {name!r}; known: " + ", ".join(sorted(GAUGES))
            )
        with self._lock:
            self._gauges[name] = float(value)

    def inc_labeled(self, name: str, amount: int = 1, **labels: str) -> None:
        """Increment one series of a labeled counter family.

        The label set is canonicalized (sorted keys) so
        ``inc_labeled("x", a="1", b="2")`` and the reversed keyword order
        address the same series.
        """
        family = self._labeled.get(name)
        if family is None:
            raise ValueError(
                f"unknown labeled counter {name!r}; known: "
                + ", ".join(sorted(self._labeled))
            )
        key = ",".join(
            f'{label}="{value}"' for label, value in sorted(labels.items())
        )
        with self._lock:
            family[key] = family.get(key, 0) + amount

    # ------------------------------------------------------------------
    # Counter passthrough (so callers stop poking the global directly)
    # ------------------------------------------------------------------
    def counter_values(self) -> dict[str, int]:
        return self._perf.snapshot()

    def counters_delta(self, before: dict[str, int]) -> dict[str, int]:
        return self._perf.delta_since(before)

    def hit_rate(self, cache: str) -> float:
        return self._perf.hit_rate(cache)

    def snapshot(self) -> dict[str, Any]:
        """Counters + histograms (+ gauges/labeled series) as one dict."""
        with self._lock:
            histograms = {
                name: histogram.as_dict()
                for name, histogram in self._histograms.items()
            }
            gauges = dict(self._gauges)
            labeled = {
                name: dict(series) for name, series in self._labeled.items()
            }
        return {
            "counters": self._perf.snapshot(),
            "histograms": histograms,
            "gauges": gauges,
            "labeled": labeled,
        }

    def reset_histograms(self) -> None:
        with self._lock:
            self._histograms = self._fresh_histograms()
            self._gauges = {name: 0.0 for name in GAUGES}
            self._labeled = {name: {} for name in LABELED_COUNTERS}

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        counter_values = self._perf.snapshot()
        for name in sorted(counter_values):
            metric = f"{_PROM_PREFIX}{name}_total"
            lines.append(f"# HELP {metric} Cumulative count of {name}.")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter_values[name]}")
        with self._lock:
            for name in sorted(self._labeled):
                metric = f"{_PROM_PREFIX}{name}_total"
                lines.append(f"# HELP {metric} {LABELED_COUNTERS[name]}")
                lines.append(f"# TYPE {metric} counter")
                for key in sorted(self._labeled[name]):
                    sample = f"{metric}{{{key}}}" if key else metric
                    lines.append(f"{sample} {self._labeled[name][key]}")
            for name in sorted(self._gauges):
                metric = f"{_PROM_PREFIX}{name}"
                lines.append(f"# HELP {metric} {GAUGES[name]}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(
                    f"{metric} {_format_value(self._gauges[name])}"
                )
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                metric = f"{_PROM_PREFIX}{name}"
                lines.append(f"# HELP {metric} {HISTOGRAMS[name]}")
                lines.append(f"# TYPE {metric} histogram")
                for bound, cumulative in zip(
                    histogram.buckets, histogram.bucket_counts
                ):
                    lines.append(
                        f'{metric}_bucket{{le="{_format_le(bound)}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{metric}_bucket{{le="+Inf"}} {histogram.count}'
                )
                lines.append(f"{metric}_sum {_format_value(histogram.sum)}")
                lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _format_le(bound: float) -> str:
    text = f"{bound:.10f}".rstrip("0")
    return text + "0" if text.endswith(".") else text


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# Exposition-format lint (CI gate) and parse-back (round-trip tests)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'  # optional labels
    r" -?[0-9.eE+-]+(Inf|NaN)?$"  # value (incl. 7.9e-05-style floats)
)


def lint_prometheus(text: str) -> list[str]:
    """Return format violations ([] when the exposition is clean).

    Checks the rules CI enforces: one metric per line, no blank lines,
    every sample preceded by ``# HELP`` and ``# TYPE`` headers for its
    family, headers in HELP-then-TYPE order, and samples matching the
    exposition-format grammar.
    """
    problems: list[str] = []
    helped: set[str] = set()
    typed: set[str] = set()
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append(f"line {number}: blank line")
            continue
        if line != line.strip():
            problems.append(f"line {number}: leading/trailing whitespace")
            line = line.strip()
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {number}: HELP without docstring")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {number}: bad TYPE line")
                continue
            name = parts[2]
            if name not in helped:
                problems.append(f"line {number}: TYPE {name} before HELP")
            typed.add(name)
            continue
        if line.startswith("#"):
            problems.append(f"line {number}: unknown comment {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = _family_of(name)
        if family not in typed:
            problems.append(
                f"line {number}: sample {name} without # TYPE header"
            )
    return problems


def _family_of(sample_name: str) -> str:
    """Map a sample name to its metric family name.

    Histogram samples ``x_bucket``/``x_sum``/``x_count`` belong to family
    ``x``; everything else (including ``*_total`` counters, which are
    exposed under their full name here) is its own family.
    """
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_prometheus(text: str) -> dict[str, float]:
    """Sample name+labels → value, for exporter round-trip tests."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        samples[key] = float(raw)
    return samples
