"""Block cipher modes of operation and PKCS#7 padding.

Encryption blocks (serialized subtrees) are encrypted with AES-128-CBC and a
deterministic per-block IV derived from the block id — the hosted database
must be reproducible from the client keyring, and CBC with distinct IVs keeps
equal plaintext subtrees from producing equal ciphertexts (the same goal the
paper's decoys serve at the value level, here at the byte level).  CTR mode
is provided for keystream-style uses.
"""

from __future__ import annotations

from repro.crypto.aes import AES128

BLOCK = AES128.BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK) -> bytes:
    """Append PKCS#7 padding (always at least one byte)."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in (0, 256)")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length]) * pad_length


def pkcs7_unpad(data: bytes, block_size: int = BLOCK) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise ValueError("invalid padded data length")
    pad_length = data[-1]
    if not 0 < pad_length <= block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_length:] != bytes([pad_length]) * pad_length:
        raise ValueError("corrupt padding")
    return data[:-pad_length]


def cbc_encrypt(cipher: AES128, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (padded internally with PKCS#7)."""
    if len(iv) != BLOCK:
        raise ValueError("IV must be one cipher block")
    padded = pkcs7_pad(plaintext)
    previous = iv
    out = bytearray()
    for offset in range(0, len(padded), BLOCK):
        block = bytes(
            p ^ c for p, c in zip(padded[offset : offset + BLOCK], previous)
        )
        encrypted = cipher.encrypt_block(block)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher: AES128, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and remove PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise ValueError("IV must be one cipher block")
    if len(ciphertext) % BLOCK != 0:
        raise ValueError("ciphertext length must be a multiple of the block size")
    previous = iv
    out = bytearray()
    for offset in range(0, len(ciphertext), BLOCK):
        block = ciphertext[offset : offset + BLOCK]
        decrypted = cipher.decrypt_block(block)
        out.extend(d ^ p for d, p in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """CTR-mode keystream XOR (encryption and decryption are the same op)."""
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    out = bytearray()
    counter = 0
    for offset in range(0, len(data), BLOCK):
        keystream = cipher.encrypt_block(nonce + counter.to_bytes(8, "big"))
        chunk = data[offset : offset + BLOCK]
        out.extend(d ^ k for d, k in zip(chunk, keystream))
        counter += 1
    return bytes(out)
