"""Fuzz/robustness tests: hostile inputs fail cleanly, never corrupt state.

A library that hosts other people's data must reject malformed input with
typed errors — never crash with internal exceptions or accept garbage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import SecurityConstraint
from repro.core.system import SecureXMLSystem
from repro.xmldb.parser import XMLParseError, parse_document
from repro.xpath.lexer import XPathSyntaxError
from repro.xpath.parser import parse_xpath


class TestParserFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=120, deadline=None)
    def test_xml_parser_never_crashes(self, text):
        """Arbitrary text either parses or raises XMLParseError."""
        try:
            document = parse_document(text)
        except XMLParseError:
            return
        except (ValueError, OverflowError) as error:
            # Numeric character references can overflow chr(); they must
            # still surface as clean ValueErrors.
            assert "chr" in str(error) or isinstance(error, XMLParseError)
            return
        assert document.root is not None

    @given(st.text(max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_xpath_parser_never_crashes(self, text):
        try:
            parse_xpath(text)
        except XPathSyntaxError:
            pass

    @given(st.text(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_constraint_parser_never_crashes(self, text):
        try:
            SecurityConstraint.parse(text)
        except XPathSyntaxError:
            pass

    @given(st.binary(min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_block_decryption_rejects_garbage(self, junk):
        from repro.crypto.keyring import ClientKeyring
        from repro.crypto.modes import cbc_decrypt

        from repro.xmldb.parser import XMLParseError, parse_fragment

        keyring = ClientKeyring(b"f" * 16)
        try:
            plaintext = cbc_decrypt(
                keyring.block_cipher, keyring.block_iv(1), junk
            )
        except ValueError:
            return  # unaligned length or bad padding: the common case
        # Random bytes survive the PKCS#7 check with probability ~2^-8;
        # even then they cannot decode/parse as a block subtree — the
        # contract is "error out, never fabricate data".
        with pytest.raises((XMLParseError, UnicodeDecodeError, ValueError)):
            parse_fragment(plaintext.decode("utf-8"))


class TestSystemRobustness:
    @pytest.fixture
    def system(self, healthcare_doc, healthcare_scs):
        return SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )

    def test_malformed_query_raises_cleanly(self, system):
        with pytest.raises(XPathSyntaxError):
            system.query("//[broken")

    def test_query_after_error_still_works(self, system):
        with pytest.raises(XPathSyntaxError):
            system.query("///")
        answer = system.query("//SSN")
        assert len(answer) == 2

    def test_empty_constraint_list_hosts_everything_plaintext(
        self, healthcare_doc
    ):
        system = SecureXMLSystem.host(healthcare_doc, [], scheme="opt")
        assert system.hosted.block_count() == 0
        assert len(system.query("//SSN")) == 2

    def test_constraint_matching_nothing(self, healthcare_doc):
        constraints = [SecurityConstraint.parse("//nonexistent")]
        system = SecureXMLSystem.host(
            healthcare_doc, constraints, scheme="opt"
        )
        assert system.hosted.block_count() == 0

    def test_single_node_document(self):
        from repro.xmldb.parser import parse_document

        document = parse_document("<only>x</only>")
        system = SecureXMLSystem.host(document, [], scheme="top")
        assert system.query("/only").values() == ["x"]

    def test_deep_chain_document(self):
        xml = "<a0>" * 1 + "".join(f"<a{i}>" for i in range(1, 12))
        xml += "v"
        xml += "".join(f"</a{i}>" for i in range(11, 0, -1)) + "</a0>"
        document = parse_document(xml)
        system = SecureXMLSystem.host(document, [], scheme="opt")
        assert system.query("//a11").values() == ["v"]

    def test_wide_document(self):
        from repro.xmldb.builder import TreeBuilder

        builder = TreeBuilder("r")
        for index in range(300):
            builder.leaf("item", str(index))
        document = builder.document()
        system = SecureXMLSystem.host(document, [], scheme="opt")
        assert len(system.query("//item")) == 300
