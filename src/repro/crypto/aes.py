"""AES-128 block cipher, implemented from the FIPS-197 specification.

Used (through the modes in :mod:`repro.crypto.modes`) to encrypt the
serialized subtrees that become encryption blocks (§4.1).  The S-box is
derived programmatically from its definition — multiplicative inverse in
GF(2⁸) followed by the affine transform — rather than hard-coded, and the
whole cipher is validated against the FIPS-197 Appendix C test vector in the
test suite.

Two equivalent code paths exist:

* the **spec path** (:meth:`AES128.encrypt_block_spec` /
  :meth:`AES128.decrypt_block_spec`, and :class:`ReferenceAES128`) — a
  direct transcription of the FIPS-197 round functions over a 16-byte
  state list, kept as the readable reference and the baseline for the
  hot-path benchmarks;
* the **T-table fast path** (:meth:`AES128.encrypt_block` /
  :meth:`AES128.decrypt_block`) — the classic 32-bit-word formulation:
  SubBytes+ShiftRows+MixColumns fused into four 256-entry word tables
  (and the equivalent inverse cipher for decryption), so each round is
  sixteen table lookups and word XORs instead of dozens of per-byte
  loops.  The tables are built once at import *from* the spec-path field
  arithmetic, and the property suite checks byte-identity of the two
  paths on random keys and blocks.

Key schedules are expanded exactly once per distinct key
(:func:`_expand_key_cached`), and :func:`aes128_for_key` memoizes whole
cipher objects so every consumer of the same derived key — hosting,
query decryption, incremental updates — shares one instance.
"""

from __future__ import annotations

from functools import lru_cache
from struct import Struct

from repro.perf import counters

_FOUR_WORDS = Struct(">IIII")


def _gf_multiply(a: int, b: int) -> int:
    """Multiply two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high_bit = a & 0x80
        a = (a << 1) & 0xFF
        if high_bit:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2⁸) (0 maps to 0, per the S-box spec)."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_multiply(result, base)
        base = _gf_multiply(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the forward and inverse S-boxes from first principles."""
    forward = bytearray(256)
    for value in range(256):
        inverse = _gf_inverse(value)
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        transformed = 0
        for bit in range(8):
            bit_value = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= bit_value << bit
        forward[value] = transformed
    backward = bytearray(256)
    for value, substituted in enumerate(forward):
        backward[substituted] = value
    return bytes(forward), bytes(backward)


_SBOX, _INV_SBOX = _build_sbox()

# Precomputed GF(2^8) multiplication tables for the MixColumns constants.
# Table lookups replace per-byte _gf_multiply loops in the hot path; the
# tables themselves are still derived from the from-scratch field
# arithmetic above.
_MUL = {
    constant: bytes(_gf_multiply(value, constant) for value in range(256))
    for constant in (2, 3, 9, 11, 13, 14)
}

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _rotr8(word: int) -> int:
    """Rotate a 32-bit word right by one byte."""
    return ((word >> 8) | (word << 24)) & 0xFFFFFFFF


def _build_round_tables() -> tuple[tuple[tuple[int, ...], ...], ...]:
    """Build the encryption T-tables, decryption D-tables and the
    InvMixColumns U-tables, all from the spec-path S-box and GF tables.

    ``T0[x]`` is the MixColumns image of the column ``(S[x], 0, 0, 0)``;
    ``U0[x]`` the InvMixColumns image of ``(x, 0, 0, 0)``; ``D0[x] =
    U0[InvS[x]]`` fuses InvSubBytes with InvMixColumns (the equivalent
    inverse cipher of FIPS-197 §5.3.5).  ``Ti``/``Ui``/``Di`` are byte
    rotations of table 0, matching the other three column positions.
    """
    mul2, mul3 = _MUL[2], _MUL[3]
    mul9, mul11, mul13, mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
    t0 = []
    u0 = []
    for x in range(256):
        s = _SBOX[x]
        t0.append((mul2[s] << 24) | (s << 16) | (s << 8) | mul3[s])
        u0.append((mul14[x] << 24) | (mul9[x] << 16) | (mul13[x] << 8) | mul11[x])
    d0 = [u0[_INV_SBOX[x]] for x in range(256)]
    tables = []
    for base in (t0, u0, d0):
        family = [tuple(base)]
        for _ in range(3):
            family.append(tuple(_rotr8(word) for word in family[-1]))
        tables.append(tuple(family))
    return tuple(tables)


(_ENC_T, _INV_MIX_U, _DEC_T) = _build_round_tables()
(_T0, _T1, _T2, _T3) = _ENC_T
(_U0, _U1, _U2, _U3) = _INV_MIX_U
(_D0, _D1, _D2, _D3) = _DEC_T


def _inv_mix_word(word: int) -> int:
    """InvMixColumns over one 32-bit column word (used on round keys)."""
    return (
        _U0[(word >> 24) & 0xFF]
        ^ _U1[(word >> 16) & 0xFF]
        ^ _U2[(word >> 8) & 0xFF]
        ^ _U3[word & 0xFF]
    )


@lru_cache(maxsize=4096)
def _expand_key_cached(
    key: bytes,
) -> tuple[
    tuple[tuple[int, ...], ...],
    tuple[tuple[int, ...], ...],
    tuple[tuple[int, ...], ...],
]:
    """FIPS-197 §5.2 key expansion, computed once per distinct key.

    Returns ``(spec_round_keys, enc_schedule, dec_schedule)``:

    * ``spec_round_keys`` — 11 rounds × 16 bytes, for the spec path;
    * ``enc_schedule`` — 11 rounds × 4 big-endian words, for the T-table
      encryptor;
    * ``dec_schedule`` — the equivalent-inverse-cipher schedule: round
      keys in reverse order with InvMixColumns applied to the nine inner
      ones, for the D-table decryptor.
    """
    counters.add("key_expansions")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]                     # RotWord
            word = [_SBOX[b] for b in word]                # SubWord
            word[0] ^= _RCON[i // 4 - 1]
        words.append([w ^ p for w, p in zip(word, words[i - 4])])

    spec_rounds = []
    enc_schedule = []
    for round_index in range(11):
        round_words = words[round_index * 4 : round_index * 4 + 4]
        flat: list[int] = []
        for word in round_words:
            flat.extend(word)
        spec_rounds.append(tuple(flat))
        enc_schedule.append(
            tuple((w[0] << 24) | (w[1] << 16) | (w[2] << 8) | w[3] for w in round_words)
        )

    dec_schedule = [enc_schedule[10]]
    for round_index in range(9, 0, -1):
        dec_schedule.append(
            tuple(_inv_mix_word(word) for word in enc_schedule[round_index])
        )
    dec_schedule.append(enc_schedule[0])
    return tuple(spec_rounds), tuple(enc_schedule), tuple(dec_schedule)


class AES128:
    """AES with a 128-bit key: 10 rounds over a 4×4 byte state.

    ``encrypt_block``/``decrypt_block`` run the T-table fast path; the
    ``*_spec`` variants run the readable FIPS-197 transcription.  Both
    produce identical bytes for every key and block.
    """

    BLOCK_SIZE = 16
    KEY_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError("AES-128 requires a 16-byte key")
        spec_rounds, enc_schedule, dec_schedule = _expand_key_cached(bytes(key))
        self._round_keys = spec_rounds
        self._enc_schedule = enc_schedule
        self._dec_schedule = dec_schedule

    # ------------------------------------------------------------------
    # Key schedule (spec form; retained for the reference path)
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS-197 §5.2 key expansion to 11 round keys of 16 bytes each."""
        return [list(round_key) for round_key in _expand_key_cached(bytes(key))[0]]

    # ------------------------------------------------------------------
    # Round transformations (state is a flat list of 16 bytes,
    # column-major as in the spec: state[row + 4*col]).
    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: list[int], round_key: "tuple[int, ...] | list[int]") -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            row_bytes = [state[row + 4 * col] for col in range(4)]
            row_bytes = row_bytes[row:] + row_bytes[:row]
            for col in range(4):
                state[row + 4 * col] = row_bytes[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            row_bytes = [state[row + 4 * col] for col in range(4)]
            row_bytes = row_bytes[-row:] + row_bytes[:-row]
            for col in range(4):
                state[row + 4 * col] = row_bytes[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        mul2, mul3 = _MUL[2], _MUL[3]
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            state[col + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            state[col + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            state[col + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        mul9, mul11, mul13, mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
            state[col + 1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
            state[col + 2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
            state[col + 3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]

    # ------------------------------------------------------------------
    # Spec path (direct FIPS-197 transcription)
    # ------------------------------------------------------------------
    def encrypt_block_spec(self, plaintext: bytes) -> bytes:
        """Encrypt one block with the readable reference round functions."""
        if len(plaintext) != self.BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, 10):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block_spec(self, ciphertext: bytes) -> bytes:
        """Decrypt one block with the readable reference round functions."""
        if len(ciphertext) != self.BLOCK_SIZE:
            raise ValueError("ciphertext block must be 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for round_index in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # ------------------------------------------------------------------
    # T-table fast path (public block interface)
    # ------------------------------------------------------------------
    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != self.BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        schedule = self._enc_schedule
        w0, w1, w2, w3 = _FOUR_WORDS.unpack(plaintext)
        k0, k1, k2, k3 = schedule[0]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for k0, k1, k2, k3 in schedule[1:10]:
            n0 = t0[w0 >> 24] ^ t1[(w1 >> 16) & 255] ^ t2[(w2 >> 8) & 255] ^ t3[w3 & 255] ^ k0
            n1 = t0[w1 >> 24] ^ t1[(w2 >> 16) & 255] ^ t2[(w3 >> 8) & 255] ^ t3[w0 & 255] ^ k1
            n2 = t0[w2 >> 24] ^ t1[(w3 >> 16) & 255] ^ t2[(w0 >> 8) & 255] ^ t3[w1 & 255] ^ k2
            n3 = t0[w3 >> 24] ^ t1[(w0 >> 16) & 255] ^ t2[(w1 >> 8) & 255] ^ t3[w2 & 255] ^ k3
            w0, w1, w2, w3 = n0, n1, n2, n3
        sbox = _SBOX
        k0, k1, k2, k3 = schedule[10]
        return _FOUR_WORDS.pack(
            ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & 255] << 16)
             | (sbox[(w2 >> 8) & 255] << 8) | sbox[w3 & 255]) ^ k0,
            ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & 255] << 16)
             | (sbox[(w3 >> 8) & 255] << 8) | sbox[w0 & 255]) ^ k1,
            ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & 255] << 16)
             | (sbox[(w0 >> 8) & 255] << 8) | sbox[w1 & 255]) ^ k2,
            ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & 255] << 16)
             | (sbox[(w1 >> 8) & 255] << 8) | sbox[w2 & 255]) ^ k3,
        )

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != self.BLOCK_SIZE:
            raise ValueError("ciphertext block must be 16 bytes")
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        schedule = self._dec_schedule
        w0, w1, w2, w3 = _FOUR_WORDS.unpack(ciphertext)
        k0, k1, k2, k3 = schedule[0]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for k0, k1, k2, k3 in schedule[1:10]:
            n0 = d0[w0 >> 24] ^ d1[(w3 >> 16) & 255] ^ d2[(w2 >> 8) & 255] ^ d3[w1 & 255] ^ k0
            n1 = d0[w1 >> 24] ^ d1[(w0 >> 16) & 255] ^ d2[(w3 >> 8) & 255] ^ d3[w2 & 255] ^ k1
            n2 = d0[w2 >> 24] ^ d1[(w1 >> 16) & 255] ^ d2[(w0 >> 8) & 255] ^ d3[w3 & 255] ^ k2
            n3 = d0[w3 >> 24] ^ d1[(w2 >> 16) & 255] ^ d2[(w1 >> 8) & 255] ^ d3[w0 & 255] ^ k3
            w0, w1, w2, w3 = n0, n1, n2, n3
        inv = _INV_SBOX
        k0, k1, k2, k3 = schedule[10]
        return _FOUR_WORDS.pack(
            ((inv[w0 >> 24] << 24) | (inv[(w3 >> 16) & 255] << 16)
             | (inv[(w2 >> 8) & 255] << 8) | inv[w1 & 255]) ^ k0,
            ((inv[w1 >> 24] << 24) | (inv[(w0 >> 16) & 255] << 16)
             | (inv[(w3 >> 8) & 255] << 8) | inv[w2 & 255]) ^ k1,
            ((inv[w2 >> 24] << 24) | (inv[(w1 >> 16) & 255] << 16)
             | (inv[(w0 >> 8) & 255] << 8) | inv[w3 & 255]) ^ k2,
            ((inv[w3 >> 24] << 24) | (inv[(w2 >> 16) & 255] << 16)
             | (inv[(w1 >> 8) & 255] << 8) | inv[w0 & 255]) ^ k3,
        )


class ReferenceAES128(AES128):
    """An :class:`AES128` whose block interface runs the spec path.

    Exists so the modes, the keyring and the benchmarks can exercise the
    seed-equivalent slow path through the very same call surface.
    """

    def encrypt_block(self, plaintext: bytes) -> bytes:
        return self.encrypt_block_spec(plaintext)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        return self.decrypt_block_spec(ciphertext)


@lru_cache(maxsize=1024)
def aes128_for_key(key: bytes) -> AES128:
    """Shared cipher object for a derived key (one key schedule ever).

    Hosting, query-time decryption and incremental updates all reach AES
    through this cache, so a derived block key is expanded exactly once
    per process no matter how many keyrings or sessions reference it.
    """
    return AES128(key)
