"""The parallel, pipelined query engine.

The contract under test has three legs:

* **Identity** — with any worker count, every answer is byte-identical
  to the serial engine's (and traces match modulo timing fields): the
  pool re-orders results deterministically, sharded filtering preserves
  the interval order, and the streamed chunks reassemble to exactly the
  monolithic response.
* **Safety** — the global perf counters lose no increments under
  concurrent batches, a tampered/reordered/truncated chunk stream
  surfaces as the usual typed integrity error, and under a seeded fault
  sweep the outcome stays exact-answer-or-typed-error.
* **Coldness** — ``flush_caches()`` now really flushes: the keyring's
  memoized block IVs, the verified-chunk cache and the answer memo all
  drop, so a "cold" measurement no longer quietly reuses warm state.
"""

import threading

import pytest

from repro.core.client import canonical_node
from repro.core.integrity import TamperedResponseError
from repro.core.parallel import (
    DEFAULT_WORKERS,
    ParallelConfig,
    WorkerPool,
    filter_shards,
    shard_spans,
)
from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.netsim import FaultPolicy, FaultyChannel
from repro.netsim.message import (
    MessageDecodeError,
    assemble_stream,
    decode_chunk,
    encode_fragment_chunk,
    encode_response_chunks,
)
from repro.perf import counters
from repro.workloads.queries import QueryWorkload
from repro.xmldb.serializer import serialize
from repro.xpath.evaluator import evaluate

#: QueryTrace fields compared between serial and parallel runs — every
#: field except the timing ones (``*_s``), which measure the schedule,
#: not the result.
TRACE_FIELDS = (
    "query",
    "naive",
    "transfer_bytes",
    "blocks_returned",
    "fragments_returned",
    "answer_count",
    "candidate_counts",
    "attempts",
    "retries",
    "integrity_failures",
    "drops",
    "fell_back",
)

HEALTHCARE_QUERIES = [
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//SSN",
]


def workload_queries(document, seed=3, per_class=2):
    by_class = QueryWorkload(
        document, seed=seed, per_class=per_class
    ).by_class()
    return [q for queries in by_class.values() for q in queries]


def trace_key(trace):
    return tuple(getattr(trace, name) for name in TRACE_FIELDS)


def run_batch(system, queries):
    answers = system.execute_many(queries)
    return (
        [answer.canonical() for answer in answers],
        [serialize(answer.pruned_document.root) for answer in answers],
        [trace_key(trace) for trace in system.last_batch_traces],
    )


# ----------------------------------------------------------------------
# Configuration knobs
# ----------------------------------------------------------------------
class TestParallelConfig:
    def test_coerce_shapes(self):
        assert ParallelConfig.coerce(False).workers == 0
        assert ParallelConfig.coerce(True).workers == DEFAULT_WORKERS
        assert ParallelConfig.coerce(3).workers == 3
        config = ParallelConfig(workers=2, backend="process")
        assert ParallelConfig.coerce(config) is config
        assert not ParallelConfig.coerce(0).enabled
        assert ParallelConfig.coerce(1).enabled

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            ParallelConfig.coerce("four")

    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert not ParallelConfig.coerce(None).enabled
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert ParallelConfig.coerce(None).workers == 4
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert not ParallelConfig.coerce(None).enabled
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            ParallelConfig.from_env()

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(backend="fiber")
        with pytest.raises(ValueError):
            ParallelConfig(chunk_fragments=0)


class TestShardPrimitives:
    @pytest.mark.parametrize("length", [0, 1, 5, 64, 100, 101])
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_spans_partition_exactly(self, length, shards):
        spans = shard_spans(length, shards)
        covered = [i for start, stop in spans for i in range(start, stop)]
        assert covered == list(range(length))
        sizes = [stop - start for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_filter_shards_matches_serial(self):
        items = list(range(500))
        predicate = lambda n: n % 7 in (1, 3)  # noqa: E731
        with WorkerPool(ParallelConfig(workers=4)) as pool:
            kept = filter_shards(pool, items, predicate, min_shard=16)
        assert kept == [n for n in items if predicate(n)]

    def test_map_ordered_preserves_input_order(self):
        with WorkerPool(ParallelConfig(workers=4)) as pool:
            assert pool.map_ordered(lambda n: n * n, list(range(40))) == [
                n * n for n in range(40)
            ]


# ----------------------------------------------------------------------
# Streamed chunk codec
# ----------------------------------------------------------------------
class TestChunkCodec:
    @pytest.fixture()
    def response(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        translated = system.client.translate("//SSN")
        request = system.client.seal_request(translated, cache_key="//SSN")
        sealed = system.server.answer_wire(request)
        return system.client.open_response(sealed)

    def test_roundtrip_reassembles_identically(self, response):
        for chunk_fragments in (1, 2, 100):
            blobs = encode_response_chunks(response, chunk_fragments)
            rebuilt = assemble_stream([decode_chunk(b) for b in blobs])
            assert rebuilt.naive == response.naive
            assert rebuilt.blocks_shipped == response.blocks_shipped
            assert rebuilt.candidate_counts == response.candidate_counts
            assert [f.xml for f in rebuilt.fragments] == [
                f.xml for f in response.fragments
            ]
            assert [f.ancestor_path for f in rebuilt.fragments] == [
                f.ancestor_path for f in response.fragments
            ]

    def test_header_must_lead(self, response):
        chunks = [decode_chunk(b) for b in encode_response_chunks(response, 1)]
        with pytest.raises(MessageDecodeError):
            assemble_stream(chunks[1:] + chunks[:1])

    def test_reordered_fragments_detected(self, response):
        chunks = [decode_chunk(b) for b in encode_response_chunks(response, 1)]
        if len(chunks) < 3:
            pytest.skip("needs at least two fragment chunks")
        swapped = [chunks[0], chunks[2], chunks[1]] + chunks[3:]
        with pytest.raises(MessageDecodeError):
            assemble_stream(swapped)

    def test_truncation_and_duplication_detected(self, response):
        chunks = [decode_chunk(b) for b in encode_response_chunks(response, 1)]
        with pytest.raises(MessageDecodeError):
            assemble_stream(chunks[:-1])
        with pytest.raises(MessageDecodeError):
            assemble_stream(chunks + [chunks[-1]])

    def test_fragment_chunk_index_floor(self):
        with pytest.raises(ValueError):
            encode_fragment_chunk(0, [])

    def test_malformed_chunk_bytes(self):
        with pytest.raises(MessageDecodeError):
            decode_chunk(b"\xff\x00 garbage")
        with pytest.raises(MessageDecodeError):
            decode_chunk(b'{"k":"zz","i":0}')


# ----------------------------------------------------------------------
# Identity: parallel == serial, byte for byte (satellite c)
# ----------------------------------------------------------------------
class TestByteIdenticalAnswers:
    def _compare(self, document, constraints, queries):
        serial = SecureXMLSystem.host(document, constraints, parallel=False)
        parallel = SecureXMLSystem.host(document, constraints, parallel=4)
        try:
            # Two passes: cold, then warm (the memo/cache-heavy path).
            for _ in range(2):
                s_answers, s_docs, s_traces = run_batch(serial, queries)
                p_answers, p_docs, p_traces = run_batch(parallel, queries)
                assert p_answers == s_answers
                assert p_docs == s_docs  # byte-identical pruned documents
                assert p_traces == s_traces
        finally:
            parallel.close()

    def test_healthcare(self, healthcare_doc, healthcare_scs):
        self._compare(healthcare_doc, healthcare_scs, HEALTHCARE_QUERIES)

    def test_xmark(self, xmark_doc, xmark_scs):
        self._compare(xmark_doc, xmark_scs, workload_queries(xmark_doc))

    def test_nasa(self, nasa_doc, nasa_scs):
        self._compare(nasa_doc, nasa_scs, workload_queries(nasa_doc))

    def test_single_query_path(self, healthcare_doc, healthcare_scs):
        serial = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        parallel = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=4
        )
        try:
            for query in HEALTHCARE_QUERIES * 2:
                assert (
                    parallel.query(query).canonical()
                    == serial.query(query).canonical()
                )
                assert trace_key(parallel.last_trace) == trace_key(
                    serial.last_trace
                )
        finally:
            parallel.close()

    def test_process_backend(self, healthcare_doc, healthcare_scs):
        serial = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        parallel = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            parallel=ParallelConfig(workers=2, backend="process"),
        )
        try:
            s = [a.canonical() for a in serial.execute_many(HEALTHCARE_QUERIES)]
            p = [
                a.canonical()
                for a in parallel.execute_many(HEALTHCARE_QUERIES)
            ]
            assert p == s
        finally:
            parallel.close()


class TestFaultSweep:
    """Seeded chaos: the parallel engine keeps the hardening contract."""

    RATES = {"drop": 0.15, "corrupt": 0.15, "truncate": 0.1}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_answer_or_typed_error(
        self, seed, healthcare_doc, healthcare_scs
    ):
        truth = {
            query: sorted(
                canonical_node(n) for n in evaluate(healthcare_doc, query)
            )
            for query in HEALTHCARE_QUERIES
        }
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            channel=FaultyChannel(policy=FaultPolicy.symmetric(
                seed=seed, **self.RATES
            )),
            parallel=4,
        )
        try:
            answered = 0
            for query in HEALTHCARE_QUERIES:
                try:
                    answer = system.query(query)
                except QueryFailedError:
                    continue
                answered += 1
                assert answer.canonical() == truth[query]
            assert answered > 0
        finally:
            system.close()

    @pytest.mark.parametrize("seed", [0, 5])
    def test_batch_under_faults(self, seed, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            channel=FaultyChannel(policy=FaultPolicy.symmetric(
                seed=seed, drop=0.2
            )),
            parallel=4,
        )
        try:
            try:
                answers = system.execute_many(HEALTHCARE_QUERIES * 2)
            except QueryFailedError:
                return  # typed failure is an allowed outcome
            for query, answer in zip(HEALTHCARE_QUERIES * 2, answers):
                assert answer.canonical() == sorted(
                    canonical_node(n)
                    for n in evaluate(healthcare_doc, query)
                )
        finally:
            system.close()

    def test_faultless_faulty_channel_matches_serial(
        self, healthcare_doc, healthcare_scs
    ):
        serial = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        parallel = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            channel=FaultyChannel(policy=FaultPolicy.symmetric(seed=9)),
            parallel=4,
        )
        try:
            s_answers, s_docs, s_traces = run_batch(
                serial, HEALTHCARE_QUERIES
            )
            p_answers, p_docs, p_traces = run_batch(
                parallel, HEALTHCARE_QUERIES
            )
            assert (p_answers, p_docs, p_traces) == (
                s_answers,
                s_docs,
                s_traces,
            )
        finally:
            parallel.close()


# ----------------------------------------------------------------------
# Counter thread-safety (satellite a)
# ----------------------------------------------------------------------
class TestCounterThreadSafety:
    def test_add_is_lossless_under_contention(self):
        before = counters.snapshot()["chunks_streamed"]
        threads = [
            threading.Thread(
                target=lambda: [
                    counters.add("chunks_streamed") for _ in range(5_000)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.snapshot()["chunks_streamed"] - before == 40_000
        counters.add("chunks_streamed", -40_000)  # leave no residue

    def test_concurrent_execute_many_loses_no_counts(
        self, healthcare_scs
    ):
        """K identical serial systems on K threads count exactly K× one.

        Each system does deterministic single-threaded work; only the
        *global counter object* is contended.  Before ``add()`` the
        read-modify-write races lost increments under exactly this load.
        """
        from repro.workloads.healthcare import build_healthcare_database

        def make_system():
            return SecureXMLSystem.host(
                build_healthcare_database(),
                healthcare_scs,
                parallel=False,
            )

        probe = make_system()
        baseline = counters.snapshot()
        probe.execute_many(HEALTHCARE_QUERIES)
        single = counters.delta_since(baseline)

        lanes = [make_system() for _ in range(4)]
        baseline = counters.snapshot()
        threads = [
            threading.Thread(
                target=system.execute_many, args=(HEALTHCARE_QUERIES,)
            )
            for system in lanes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        combined = counters.delta_since(baseline)
        for name, value in single.items():
            assert combined.get(name, 0) == 4 * value, name


# ----------------------------------------------------------------------
# Cache coldness (satellite b) and the answer memo
# ----------------------------------------------------------------------
class TestFlushCaches:
    def test_flush_clears_keyring_iv_memo(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(healthcare_doc, healthcare_scs)
        system.query(HEALTHCARE_QUERIES[0])
        keyring = system._keyring
        assert keyring._block_ivs, "query should have derived block IVs"
        system.flush_caches()
        assert keyring._block_ivs == {}
        # And the flush is behavioural, not just structural: the next
        # query still answers correctly from a fully cold start.
        assert system.query(HEALTHCARE_QUERIES[0]).canonical() == sorted(
            canonical_node(n)
            for n in evaluate(healthcare_doc, HEALTHCARE_QUERIES[0])
        )

    def test_flush_clears_chunk_cache_and_answer_memo(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            system.query(HEALTHCARE_QUERIES[0])
            assert system.client._chunk_cache
            assert system._answer_memo
            system.flush_caches()
            assert system.client._chunk_cache == {}
            assert system._answer_memo == {}
        finally:
            system.close()


class TestAnswerMemo:
    def test_repeat_hits_and_clone_isolation(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            query = HEALTHCARE_QUERIES[0]
            first = system.query(query)
            before = counters.snapshot()
            second = system.query(query)
            assert counters.delta_since(before)["answer_cache_hits"] == 1
            assert second.canonical() == first.canonical()
            # Mutating one served answer must not corrupt the next.
            for node in second.pruned_document.root.children[:]:
                node.detach()
            third = system.query(query)
            assert third.canonical() == first.canonical()
        finally:
            system.close()

    def test_epoch_bump_invalidates(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            query = "//patient[pname='Matt']/age"
            assert system.query(query).values() == ["40"]
            assert system.query(query).values() == ["40"]  # memo hit
            system.update_value("//patient[pname='Matt']/age", "41")
            assert system.query(query).values() == ["41"]
        finally:
            system.close()


class TestStreamIntegrity:
    def test_tampered_chunk_is_rejected(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            translated = system.client.translate("//SSN")
            request = system.client.seal_request(translated, cache_key="//SSN")
            chunks = list(system.server.answer_wire_stream(request))
            assert len(chunks) >= 2
            system.client.open_chunk(chunks[0])  # intact chunk verifies
            evil = chunks[1][:-1] + bytes([chunks[1][-1] ^ 0x01])
            with pytest.raises(TamperedResponseError):
                system.client.open_chunk(evil)
        finally:
            system.close()

    def test_stream_counts_chunks(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            before = counters.snapshot()
            system.query("//SSN")
            assert counters.delta_since(before)["chunks_streamed"] >= 2
        finally:
            system.close()
