"""Document statistics: the attacker's background knowledge.

The paper's attack model (§3.3) grants the adversary *exact* knowledge of the
domain values and their occurrence frequencies for every attribute/leaf-
element, but no knowledge of the tag distribution or value correlations.
This module computes exactly those histograms, for use both by the attack
simulators in :mod:`repro.security` and by OPESS, which needs the plaintext
frequency profile to plan its splitting.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.xmldb.node import Attribute, Document, Element, Node


def leaf_field_name(node: Node) -> str:
    """Canonical field name of a value-bearing leaf.

    Leaf elements are identified by their tag; attributes by ``@name``.  The
    paper treats "each attribute" (i.e. each leaf field) as an independently
    known distribution, so this name is the histogram key.
    """
    if isinstance(node, Attribute):
        return f"@{node.name}"
    if isinstance(node, Element):
        return node.tag
    raise TypeError(f"not a value-bearing leaf: {node!r}")


def iter_value_leaves(document: Document) -> Iterator[Node]:
    """Yield every value-bearing leaf (leaf elements and attributes)."""
    yield from document.leaves()


def value_frequencies(document: Document) -> dict[str, Counter]:
    """Per-field value histograms: ``{field: {value: count}}``.

    This is the adversary's frequency-attack knowledge base
    (§3.3 "Frequency-based Attack").
    """
    histograms: dict[str, Counter] = {}
    for leaf in document.leaves():
        value = leaf.text_value()
        if value is None:
            continue
        field = leaf_field_name(leaf)
        histograms.setdefault(field, Counter())[value] += 1
    return histograms


def field_frequency(document: Document, field: str) -> Counter:
    """Histogram of a single field (leaf tag or ``@attribute``)."""
    return value_frequencies(document).get(field, Counter())


def tag_histogram(document: Document) -> Counter:
    """Occurrences of each element tag (not part of attacker knowledge)."""
    histogram: Counter = Counter()
    for element in document.elements():
        histogram[element.tag] += 1
    return histogram


def depth(document: Document) -> int:
    """Height of the document tree (root at depth 0)."""
    best = 0
    for node in document.root.iter():
        best = max(best, node.depth)
    return best


def fanout_profile(document: Document) -> Counter:
    """Histogram of children counts over internal elements."""
    profile: Counter = Counter()
    for element in document.elements():
        if element.children and not element.is_leaf_element:
            profile[len(element.children)] += 1
    return profile


def same_distribution(left: Counter, right: Counter) -> bool:
    """True if two histograms have the same multiset of frequencies.

    Used by the indistinguishability checker (Definition 3.1 condition (2)):
    two databases are frequency-indistinguishable on a field when each domain
    value occurs equally often — after encryption the attacker only sees the
    multiset of ciphertext frequencies, so we compare those multisets.
    """
    return sorted(left.values()) == sorted(right.values())
