"""Server-side twig pattern matching over DSI intervals (§6.2).

Implements the three server steps of the paper's query pipeline:

1. *Translation of query structure*: each pattern node's lookup keys pull
   interval entries from the DSI index table.
2. *Translation of value-based constraints*: each constrained node's key
   ranges are run against the B-tree value index, yielding the set of
   encryption blocks that contain a matching value; entries of plaintext
   nodes are checked against the clear predicate directly.
3. *Obtaining final results*: a bottom-up/top-down structural join over the
   interval forest prunes entries that do not satisfy the twig, exactly the
   "computes structural joins, which prune index entries at query nodes"
   step, and surfaces the surviving entries of the output and ship nodes.

Axis tests are pure interval geometry: *descendant* is strict containment
(checked against a sorted low-bound array with binary search), and *child*
uses the precomputed immediate-parent pointers — the paper's
``child(x,y) ⇔ desc(x,y) ∧ ¬∃z …`` definition materialized once per index.
The axis engine (:mod:`repro.xpath.axes`) extends the edge vocabulary:
upward edges run on the same parent pointers in the other direction, and
order/sibling edges run on threshold forms of the interval order
relations (see the table in that module), computed per edge by the
semi-joins in :mod:`repro.core.stack_join`.  The matching is
sound-as-superset: grouped intervals and relaxed order thresholds can
only widen match sets, never lose a real match, and the client restores
exactness in post-processing.  Nodes translated from positional steps
(``position_sensitive``) skip bottom-up pruning entirely so the client
receives the complete per-parent candidate list to index into.

**Sharded evaluation.**  Every pruning step is a pure, order-preserving
filter over an interval-sorted candidate list, so a worker pool can
evaluate contiguous *interval groups* of the DSI table independently and
concatenate — the match sets, their order, and the per-node candidate
counts are identical to serial evaluation by construction (asserted by
the parallel-engine property tests).  Pass ``pool=None`` (the default)
for the exact serial behaviour.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.core.dsi import IndexEntry, StructuralIndex
from repro.core.opess import ValueIndex
from repro.core.parallel import WorkerPool, filter_shards
from repro.core.stack_join import entry_order_bounds, entry_sibling_bounds
from repro.core.translate import TranslatedNode, TranslatedQuery
from repro.xpath.axes import can_follow, can_precede
from repro.xpath.evaluator import compare_values


@dataclass
class MatchResult:
    """Surviving entries after the structural join."""

    output_entries: list[IndexEntry]
    ship_entries: list[IndexEntry]
    #: per-pattern-node candidate counts, for the trace/experiments
    candidate_counts: dict[str, int] = field(default_factory=dict)


def match_pattern(
    query: TranslatedQuery,
    structure: StructuralIndex,
    values: ValueIndex,
    pool: "WorkerPool | None" = None,
    min_shard: int = 64,
) -> MatchResult:
    """Run the full structural join for a translated query.

    With a ``pool``, candidate lists longer than ``min_shard`` are
    filtered as interval-group shards across the pool's workers; the
    result is identical to the serial join (same entries, same order,
    same candidate counts) — only the schedule changes.
    """
    matcher = _Matcher(structure, values, pool=pool, min_shard=min_shard)
    return matcher.run(query)


class _Matcher:
    def __init__(
        self,
        structure: StructuralIndex,
        values: ValueIndex,
        pool: "WorkerPool | None" = None,
        min_shard: int = 64,
    ) -> None:
        self._structure = structure
        self._values = values
        self._pool = pool
        self._min_shard = min_shard
        self._match_sets: dict[int, list[IndexEntry]] = {}
        self._counts: dict[str, int] = {}

    def _filter(
        self, entries: list[IndexEntry], predicate
    ) -> list[IndexEntry]:
        """Order-preserving (sharded when pooled) filter step."""
        return filter_shards(
            self._pool, entries, predicate, self._min_shard
        )

    # ------------------------------------------------------------------
    # Bottom-up phase: which entries satisfy the pattern subtree
    # ------------------------------------------------------------------
    def run(self, query: TranslatedQuery) -> MatchResult:
        root_matches = self._match_subtree(query.root)
        root_matches = [
            entry
            for entry in root_matches
            if self._root_axis_ok(query.root.axis, entry)
        ]

        survivors: dict[int, set[int]] = {id(query.root): _id_set(root_matches)}
        ordered_survivors: dict[int, list[IndexEntry]] = {
            id(query.root): root_matches
        }
        self._prune_down(query.root, root_matches, survivors, ordered_survivors)

        ship_entries: list[IndexEntry] = []
        shipped: set[int] = set()
        for ship_node in query.ship_nodes:
            for entry in ordered_survivors.get(id(ship_node), []):
                if id(entry) not in shipped:
                    shipped.add(id(entry))
                    ship_entries.append(entry)

        return MatchResult(
            output_entries=ordered_survivors.get(id(query.output), []),
            ship_entries=ship_entries,
            candidate_counts=dict(self._counts),
        )

    def _match_subtree(self, node: TranslatedNode) -> list[IndexEntry]:
        cached = self._match_sets.get(id(node))
        if cached is not None:
            return cached

        candidates = self._candidates(node)
        self._counts[_label(node)] = len(candidates)

        for child in node.children:
            child_matches = self._match_subtree(child)
            if node.position_sensitive:
                # The client indexes [n]/last() into this node's
                # candidate list: it must stay complete per parent, so
                # no bottom-up narrowing (children still match above
                # for their own top-down phase).
                continue
            if not child_matches:
                candidates = []
                break
            candidates = self._filter_by_child(candidates, child, child_matches)
            if not candidates:
                break

        self._match_sets[id(node)] = candidates
        return candidates

    def _candidates(self, node: TranslatedNode) -> list[IndexEntry]:
        if node.is_wildcard:
            entries = list(self._structure.all_entries())
        else:
            entries = []
            for key in node.keys:
                entries.extend(self._structure.lookup(key))
        if not node.has_value_constraint:
            return entries
        # The B-tree range probe depends only on the node, not the entry:
        # run it once here instead of once per candidate.
        blocks: "set[int] | None" = None
        if node.value_ranges is not None and node.value_field_token is not None:
            blocks = self._values.lookup_blocks(
                node.value_field_token, node.value_ranges
            )
        return self._filter(
            entries, lambda entry: self._value_ok(node, entry, blocks)
        )

    def _value_ok(
        self,
        node: TranslatedNode,
        entry: IndexEntry,
        blocks: "set[int] | None",
    ) -> bool:
        if entry.block_id is not None:
            if node.value_ranges is None:
                # Only a plaintext predicate was sent, but this entry is
                # encrypted: the server cannot verify it — keep it (sound
                # superset; the client will re-check).
                return True
            assert blocks is not None
            return entry.block_id in blocks
        if node.plaintext_predicate is not None:
            if entry.plaintext_value is None:
                return False
            op, literal = node.plaintext_predicate
            return compare_values(entry.plaintext_value, op, literal)
        # Encrypted-only predicate but this entry is plaintext: no
        # plaintext occurrence was expected, so nothing here can match.
        return False

    def _filter_by_child(
        self,
        candidates: list[IndexEntry],
        child: TranslatedNode,
        child_matches: list[IndexEntry],
    ) -> list[IndexEntry]:
        axis = child.axis
        if axis in ("child", "attribute"):
            match_ids = _id_set(child_matches)
            return self._filter(
                candidates,
                lambda entry: any(
                    id(sub) in match_ids for sub in entry.children
                ),
            )
        if axis in ("descendant", "attribute-descendant"):
            lows = self._descendant_lows(child, child_matches)
            return self._filter(
                candidates, lambda entry: _has_low_inside(lows, entry)
            )
        # Axis-engine edges: filter the parent's candidates by the
        # *inverse* relation against the child's match set.
        if axis == "self":
            match_ids = _id_set(child_matches)
            return self._filter(
                candidates, lambda entry: id(entry) in match_ids
            )
        if axis == "descendant-or-self":
            match_ids = _id_set(child_matches)
            lows = self._descendant_lows(child, child_matches)
            return self._filter(
                candidates,
                lambda entry: id(entry) in match_ids
                or _has_low_inside(lows, entry),
            )
        if axis == "parent":
            match_ids = _id_set(child_matches)
            return self._filter(
                candidates,
                lambda entry: entry.parent is not None
                and id(entry.parent) in match_ids,
            )
        if axis in ("ancestor", "ancestor-or-self"):
            match_ids = _id_set(child_matches)
            or_self = axis == "ancestor-or-self"
            return self._filter(
                candidates,
                lambda entry: (or_self and id(entry) in match_ids)
                or self._has_surviving_ancestor(entry, match_ids),
            )
        if axis in ("following", "preceding"):
            bounds = entry_order_bounds(child_matches)
            if bounds is None:
                return []
            min_low, max_high = bounds
            if axis == "following":
                # some match can follow the candidate ⇔ candidate can
                # precede some match
                return self._filter(
                    candidates,
                    lambda entry: can_precede(
                        entry.interval.low, entry.interval.high, max_high
                    ),
                )
            return self._filter(
                candidates,
                lambda entry: can_follow(
                    entry.interval.low, entry.interval.high, min_low
                ),
            )
        if axis in ("following-sibling", "preceding-sibling"):
            bounds_by_parent = entry_sibling_bounds(child_matches)
            following = axis == "following-sibling"

            def sibling_ok(entry: IndexEntry) -> bool:
                bounds = bounds_by_parent.get(_parent_key(entry))
                if bounds is None:
                    return False
                if following:
                    return can_precede(
                        entry.interval.low, entry.interval.high, bounds[1]
                    )
                return can_follow(
                    entry.interval.low, entry.interval.high, bounds[0]
                )

            return self._filter(candidates, sibling_ok)
        raise ValueError(f"unexpected pattern axis {axis!r}")

    def _descendant_lows(
        self, child: TranslatedNode, child_matches: list[IndexEntry]
    ) -> list[float]:
        """Sorted low bounds of the child's match set.

        A leaf pattern node with a single lookup key and no value
        constraint matches exactly its per-tag entry list, so the
        structural index's precomputed sorted array is used verbatim;
        anything narrower (constrained, multi-key, or join-filtered)
        falls back to sorting the actual match set.
        """
        if (
            not child.children
            and not child.has_value_constraint
            and len(child.keys) == 1
        ):
            return self._structure.sorted_lows(child.keys[0])
        return sorted(match.interval.low for match in child_matches)

    # ------------------------------------------------------------------
    # Top-down phase: keep only entries reachable from surviving parents
    # ------------------------------------------------------------------
    def _prune_down(
        self,
        node: TranslatedNode,
        node_survivors: list[IndexEntry],
        survivors: dict[int, set[int]],
        ordered: dict[int, list[IndexEntry]],
    ) -> None:
        parent_ids = _id_set(node_survivors)
        for child in node.children:
            child_matches = self._match_sets.get(id(child), [])
            surviving = self._prune_child(
                child, child_matches, node_survivors, parent_ids
            )
            survivors[id(child)] = _id_set(surviving)
            ordered[id(child)] = surviving
            self._prune_down(child, surviving, survivors, ordered)

    def _prune_child(
        self,
        child: TranslatedNode,
        child_matches: list[IndexEntry],
        node_survivors: list[IndexEntry],
        parent_ids: set[int],
    ) -> list[IndexEntry]:
        """Keep child matches related (forward axis) to a survivor."""
        axis = child.axis
        if axis in ("child", "attribute"):
            return self._filter(
                child_matches,
                lambda entry: entry.parent is not None
                and id(entry.parent) in parent_ids,
            )
        if axis in ("descendant", "attribute-descendant"):
            return self._filter(
                child_matches,
                lambda entry: self._has_surviving_ancestor(
                    entry, parent_ids
                ),
            )
        if axis == "self":
            return self._filter(
                child_matches, lambda entry: id(entry) in parent_ids
            )
        if axis == "descendant-or-self":
            return self._filter(
                child_matches,
                lambda entry: id(entry) in parent_ids
                or self._has_surviving_ancestor(entry, parent_ids),
            )
        if axis == "parent":
            image = {
                id(entry.parent)
                for entry in node_survivors
                if entry.parent is not None
            }
            return self._filter(
                child_matches, lambda entry: id(entry) in image
            )
        if axis in ("ancestor", "ancestor-or-self"):
            lows = sorted(
                entry.interval.low for entry in node_survivors
            )
            or_self = axis == "ancestor-or-self"
            return self._filter(
                child_matches,
                lambda entry: (or_self and id(entry) in parent_ids)
                or _has_low_inside(lows, entry),
            )
        if axis in ("following", "preceding"):
            bounds = entry_order_bounds(node_survivors)
            if bounds is None:
                return []
            min_low, max_high = bounds
            if axis == "following":
                return self._filter(
                    child_matches,
                    lambda entry: can_follow(
                        entry.interval.low, entry.interval.high, min_low
                    ),
                )
            return self._filter(
                child_matches,
                lambda entry: can_precede(
                    entry.interval.low, entry.interval.high, max_high
                ),
            )
        if axis in ("following-sibling", "preceding-sibling"):
            bounds_by_parent = entry_sibling_bounds(node_survivors)
            following = axis == "following-sibling"

            def sibling_ok(entry: IndexEntry) -> bool:
                bounds = bounds_by_parent.get(_parent_key(entry))
                if bounds is None:
                    return False
                if following:
                    return can_follow(
                        entry.interval.low, entry.interval.high, bounds[0]
                    )
                return can_precede(
                    entry.interval.low, entry.interval.high, bounds[1]
                )

            return self._filter(child_matches, sibling_ok)
        raise ValueError(f"unexpected pattern axis {axis!r}")

    @staticmethod
    def _has_surviving_ancestor(
        entry: IndexEntry, ancestor_ids: set[int]
    ) -> bool:
        current = entry.parent
        while current is not None:
            if id(current) in ancestor_ids:
                return True
            current = current.parent
        return False

    @staticmethod
    def _root_axis_ok(axis: str, entry: IndexEntry) -> bool:
        if axis == "root-child":
            return entry.parent is None
        if axis == "root-descendant":
            return True
        raise ValueError(f"pattern root must use a root axis, got {axis!r}")


def _id_set(entries: list[IndexEntry]) -> set[int]:
    return {id(entry) for entry in entries}


def _parent_key(entry: IndexEntry) -> "int | None":
    return id(entry.parent) if entry.parent is not None else None


def _has_low_inside(sorted_lows: list[float], entry: IndexEntry) -> bool:
    """Any match interval strictly inside ``entry`` (laminar shortcut)?"""
    left = bisect_right(sorted_lows, entry.interval.low)
    return left < len(sorted_lows) and sorted_lows[left] < entry.interval.high


def _label(node: TranslatedNode) -> str:
    return "|".join(node.keys) if node.keys else "*"
