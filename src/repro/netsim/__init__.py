"""Simulated client↔server channel with byte and latency accounting."""

from repro.netsim.channel import Channel, TransferRecord

__all__ = ["Channel", "TransferRecord"]
