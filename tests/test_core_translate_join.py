"""Tests for query translation (§6.1) and the server structural join (§6.2)."""

import pytest

from repro.core.encryptor import host_database
from repro.core.scheme import build_scheme
from repro.core.structural_join import match_pattern
from repro.crypto.keyring import ClientKeyring
from repro.core.translate import QueryTranslator
from repro.xpath.compiler import UnsupportedQuery, compile_pattern
from repro.xpath.parser import parse_xpath


@pytest.fixture
def hosted_opt(healthcare_doc, healthcare_scs):
    keyring = ClientKeyring(b"k" * 16)
    scheme = build_scheme(healthcare_doc, healthcare_scs, "opt")
    hosted = host_database(healthcare_doc, scheme, keyring)
    translator = QueryTranslator(
        tag_cipher=keyring.tag_cipher,
        ope=keyring.ope,
        encrypted_tags=hosted.encrypted_tags,
        plaintext_keys=hosted.plaintext_keys,
        field_plans=hosted.field_plans,
        field_tokens=hosted.field_tokens,
    )
    return hosted, translator, keyring


def translate(translator, query):
    return translator.translate(compile_pattern(parse_xpath(query)))


class TestTranslation:
    def test_plaintext_tags_survive(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(translator, "//patient/age")
        assert translated.root.keys == ("patient",)
        assert translated.root.children[0].keys == ("age",)

    def test_encrypted_tags_become_tokens(self, hosted_opt):
        hosted, translator, keyring = hosted_opt
        translated = translate(translator, "//insurance")
        token = keyring.tag_cipher.encrypt_tag("insurance")
        assert translated.root.keys == (token,)
        assert "insurance" not in translated.root.keys

    def test_sensitive_tag_never_in_clear(self, hosted_opt):
        """A purely-encrypted tag must not cross the wire in plaintext."""
        hosted, translator, _ = hosted_opt
        purely_encrypted = hosted.encrypted_tags - hosted.plaintext_keys
        for tag in purely_encrypted:
            if tag.startswith("@"):
                query = f"//*[{'@' + tag[1:]}]" if False else None
                continue
            translated = translate(translator, f"//{tag}")
            assert tag not in translated.root.keys

    def test_value_predicate_on_encrypted_field(self, hosted_opt):
        hosted, translator, keyring = hosted_opt
        covered = next(
            f for f in sorted(hosted.field_plans) if not f.startswith("@")
        )
        plan = hosted.field_plans[covered]
        literal = plan.ordered_values[0]
        translated = translate(translator, f"//{covered}[.='{literal}']")
        node = translated.root
        assert node.value_ranges is not None and node.value_ranges
        assert node.value_field_token == hosted.field_tokens[covered]
        assert node.plaintext_predicate is None  # field fully encrypted

    def test_value_predicate_on_plaintext_field(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(translator, "//patient[age>36]/pname")
        branch = next(
            c for c in translated.root.children if c.axis == "child"
            and c.plaintext_predicate is not None
        )
        assert branch.plaintext_predicate == (">", "36")
        assert branch.value_ranges is None

    def test_unknown_tag_passes_through(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(translator, "//nonexistent")
        assert translated.root.keys == ("nonexistent",)

    def test_wildcard_constraint_unsupported(self, hosted_opt):
        _, translator, _ = hosted_opt
        with pytest.raises(UnsupportedQuery):
            translate(translator, "//patient/*[.='x']")

    def test_output_and_ship_marked(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(
            translator, "//patient[pname='Betty']//disease"
        )
        assert translated.output.is_output
        assert translated.ship_node is translated.root  # predicate at patient

    def test_ship_node_is_output_without_predicates(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(translator, "/hospital/patient/age")
        assert translated.ship_node is translated.output

    def test_wire_size_positive(self, hosted_opt):
        _, translator, _ = hosted_opt
        translated = translate(translator, "//patient[age>36]/pname")
        assert translated.wire_size() > 0


class TestStructuralJoin:
    def run(self, hosted_opt, query):
        hosted, translator, _ = hosted_opt
        translated = translate(translator, query)
        return match_pattern(
            translated, hosted.structural_index, hosted.value_index
        )

    def test_structural_only_query(self, hosted_opt):
        result = self.run(hosted_opt, "/hospital/patient/age")
        assert len(result.output_entries) == 2

    def test_root_axis_constraint(self, hosted_opt):
        result = self.run(hosted_opt, "/patient")  # wrong root
        assert result.output_entries == []

    def test_descendant_axis(self, hosted_opt):
        result = self.run(hosted_opt, "//doctor")
        assert len(result.output_entries) == 3

    def test_encrypted_output_entries(self, hosted_opt):
        hosted, translator, keyring = hosted_opt
        result = self.run(hosted_opt, "//insurance")
        assert len(result.output_entries) == 2
        assert all(e.block_id is not None for e in result.output_entries)

    def test_plaintext_value_predicate_filters(self, hosted_opt):
        result = self.run(hosted_opt, "//patient[age>36]/pname")
        assert len(result.ship_entries) == 1

    def test_encrypted_value_predicate_filters_to_blocks(self, hosted_opt):
        hosted, translator, _ = hosted_opt
        covered = next(
            f for f in sorted(hosted.field_plans) if not f.startswith("@")
        )
        plan = hosted.field_plans[covered]
        literal = plan.ordered_values[0]
        result = self.run(hosted_opt, f"//{covered}[.='{literal}']")
        assert result.output_entries  # at least the matching blocks

    def test_impossible_structure_empty(self, hosted_opt):
        result = self.run(hosted_opt, "/hospital/doctor")  # doctor not child
        assert result.output_entries == []

    def test_candidate_counts_reported(self, hosted_opt):
        result = self.run(hosted_opt, "//patient/age")
        assert any(count > 0 for count in result.candidate_counts.values())

    def test_existence_branch_prunes(self, hosted_opt):
        result = self.run(hosted_opt, "//patient[treat]/age")
        assert len(result.output_entries) == 2  # both patients have treat

    def test_wildcard_candidates(self, hosted_opt):
        result = self.run(hosted_opt, "//patient/*")
        assert len(result.output_entries) >= 4
