"""Freshness & anti-rollback envelope: rxi2 seal, Merkle anchor, attacker.

The contract under test extends the "exact answer or typed error"
invariant to a *rollback* adversary: a channel that replays earlier
validly-MACed responses.  Every query against a rolling-back channel
must return the byte-identical fresh answer or raise a typed freshness
error — never a stale answer.  In the cluster, a replica pinned at an
old epoch must be demoted, failed over, resynced and re-admitted, with
answers byte-identical to the no-fault run throughout.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import ClusterConfig, ClusterDegradedError
from repro.core.integrity import (
    FRESH_OVERHEAD,
    MAGIC_FRESH,
    BlockMerkleTree,
    FreshnessError,
    IntegrityError,
    RollbackDetectedError,
    StaleStateError,
    TamperedResponseError,
    envelope_payload,
    peek_epoch,
    seal,
    seal_fresh,
    unseal,
    unseal_fresh,
)
from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.netsim.faults import FaultPolicy, FaultRates, FaultyChannel
from repro.perf import counters

KEY = b"freshness-unit-test-key-32-bytes"
ROOT = bytes(range(32))

#: Fault seeds for the sweeps; CI widens this via REPRO_CHAOS_SEEDS.
SEEDS = [
    int(token)
    for token in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2").split(",")
]

#: Queries whose *translation* is stable across the update below (the
#: updated field is SSN; no predicate tokens change), while their
#: *answers* do change — exactly the window a rollback attacker needs.
PROBE = "//patient[pname='Betty']/SSN"
QUERIES = (PROBE, "//SSN", "//patient/pname")


# ----------------------------------------------------------------------
# rxi2 envelope unit tests
# ----------------------------------------------------------------------
class TestFreshSeal:
    def test_roundtrip(self):
        blob = seal_fresh(KEY, b"payload", 7, ROOT)
        assert blob.startswith(MAGIC_FRESH)
        assert len(blob) == FRESH_OVERHEAD + len(b"payload")
        assert unseal_fresh(KEY, blob, 7, ROOT) == b"payload"

    def test_legacy_rxi1_seal_is_unchanged(self):
        blob = seal(KEY, b"payload")
        assert blob.startswith(b"rxi1")
        assert unseal(KEY, blob) == b"payload"

    def test_older_epoch_is_a_rollback(self):
        blob = seal_fresh(KEY, b"p", 3, ROOT)
        with pytest.raises(RollbackDetectedError) as excinfo:
            unseal_fresh(KEY, blob, 5, ROOT)
        assert excinfo.value.observed_epoch == 3
        assert excinfo.value.expected_epoch == 5
        assert excinfo.value.epoch_lag == 2

    def test_newer_epoch_is_stale_verifier_state(self):
        blob = seal_fresh(KEY, b"p", 9, ROOT)
        with pytest.raises(StaleStateError):
            unseal_fresh(KEY, blob, 5, ROOT)

    def test_root_mismatch_at_same_epoch_is_stale(self):
        blob = seal_fresh(KEY, b"p", 5, ROOT)
        with pytest.raises(StaleStateError):
            unseal_fresh(KEY, blob, 5, bytes(32))

    def test_freshness_errors_are_integrity_errors(self):
        assert issubclass(RollbackDetectedError, FreshnessError)
        assert issubclass(StaleStateError, FreshnessError)
        assert issubclass(FreshnessError, IntegrityError)

    def test_every_header_byte_is_bound_into_the_mac(self):
        """Flipping any bit of epoch, root, tag or payload must raise the
        *tamper* error — an attacker cannot forge a freshness signal."""
        blob = seal_fresh(KEY, b"some payload bytes", 5, ROOT)
        for offset in range(len(blob)):
            mangled = bytearray(blob)
            mangled[offset] ^= 0x01
            with pytest.raises(IntegrityError):
                unseal_fresh(KEY, bytes(mangled), 5, ROOT)

    def test_restamping_an_old_payload_fails_the_mac(self):
        """Splicing a newer (epoch, root) header onto an old tag+payload
        is exactly the attack the header-bound MAC exists to stop."""
        old = seal_fresh(KEY, b"stale answer", 3, ROOT)
        fresh_header = seal_fresh(KEY, b"x", 5, ROOT)[: len(MAGIC_FRESH) + 8 + 32]
        spliced = fresh_header + old[len(MAGIC_FRESH) + 8 + 32 :]
        with pytest.raises(TamperedResponseError):
            unseal_fresh(KEY, spliced, 5, ROOT)

    def test_truncated_blob_rejected(self):
        blob = seal_fresh(KEY, b"p", 1, ROOT)
        with pytest.raises(TamperedResponseError):
            unseal_fresh(KEY, blob[: FRESH_OVERHEAD - 1], 1, ROOT)

    def test_peek_epoch(self):
        assert peek_epoch(seal_fresh(KEY, b"p", 42, ROOT)) == 42
        assert peek_epoch(b"garbage") is None

    def test_envelope_payload_strips_both_layouts(self):
        assert envelope_payload(seal_fresh(KEY, b"pay", 3, ROOT)) == b"pay"
        assert envelope_payload(seal(KEY, b"pay")) == b"pay"
        assert envelope_payload(b"raw") == b"raw"

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            seal_fresh(KEY, b"p", -1, ROOT)
        with pytest.raises(ValueError):
            seal_fresh(KEY, b"p", 0, b"short")


# ----------------------------------------------------------------------
# Merkle tree unit tests
# ----------------------------------------------------------------------
class TestBlockMerkleTree:
    def test_empty_root_is_stable(self):
        assert BlockMerkleTree().root() == BlockMerkleTree().root()
        assert len(BlockMerkleTree().root()) == 32

    def test_root_depends_on_every_leaf(self):
        tags = {i: bytes([i + 1]) * 32 for i in range(7)}
        base = BlockMerkleTree(tags).root()
        for victim in tags:
            mutated = dict(tags)
            mutated[victim] = bytes(32)
            assert BlockMerkleTree(mutated).root() != base

    def test_insertion_order_is_irrelevant(self):
        tags = {i: bytes([i]) * 32 for i in range(9)}
        forward = BlockMerkleTree()
        backward = BlockMerkleTree()
        for i in sorted(tags):
            forward.set_leaf(i, tags[i])
        for i in sorted(tags, reverse=True):
            backward.set_leaf(i, tags[i])
        assert forward.root() == backward.root() == BlockMerkleTree(tags).root()

    def test_incremental_retag_matches_rebuild(self):
        """The O(log n) path update after ``update_value`` must land on
        the same root as a from-scratch rebuild, at every size."""
        for size in (1, 2, 3, 8, 13):
            tags = {i: bytes([i + 1]) * 32 for i in range(size)}
            tree = BlockMerkleTree(tags)
            tree.root()  # force the level arrays so set_leaf is a path walk
            for victim in tags:
                new_tag = bytes([victim + 101 % 251]) * 32
                tree.set_leaf(victim, new_tag)
                reference = dict(tags)
                reference[victim] = new_tag
                assert tree.root() == BlockMerkleTree(reference).root(), (
                    size, victim,
                )
                tree.set_leaf(victim, tags[victim])  # restore

    def test_remove_leaf(self):
        tags = {i: bytes([i]) * 32 for i in range(5)}
        tree = BlockMerkleTree(tags)
        tree.root()
        tree.remove_leaf(2)
        reference = {i: t for i, t in tags.items() if i != 2}
        assert tree.root() == BlockMerkleTree(reference).root()
        assert tree.leaf_count == 4


# ----------------------------------------------------------------------
# Hosted-state anchoring
# ----------------------------------------------------------------------
class TestHostedAnchor:
    def test_updates_move_the_anchor(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        hosted = system.hosted
        epoch0, root0 = hosted.epoch, hosted.state_root()
        system.update_value(PROBE, "111111")
        assert hosted.epoch == epoch0 + 1
        root1 = hosted.state_root()
        assert root1 != root0
        system.update_value(PROBE, "222222")
        assert hosted.state_root() != root1

    def test_incremental_root_matches_rebuild_after_updates(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        hosted = system.hosted
        hosted.state_root()  # build the incremental tree
        system.update_value(PROBE, "333333")
        system.insert_element("//patient[pname='Betty']", "note", "hello")
        assert (
            hosted.state_root()
            == BlockMerkleTree(hosted.block_tags).root()
        )


# ----------------------------------------------------------------------
# Rollback attacker: monolithic sweep
# ----------------------------------------------------------------------
def _reference_run(document, constraints):
    """The no-fault transcript: answers before and after the update."""
    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    before = {q: system.query(q).canonical() for q in QUERIES}
    system.update_value(PROBE, "987654")
    after = {q: system.query(q).canonical() for q in QUERIES}
    assert before[PROBE] != after[PROBE]
    return before, after


class TestRollbackSweepMonolithic:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_a_stale_answer(
        self, seed, healthcare_doc, healthcare_scs
    ):
        """≥20% stale-answer injection: byte-identical fresh answer or a
        typed error, and at least one rollback must be *detected* (the
        attack fires by construction: a pre-update snapshot exists)."""
        before, after = _reference_run(healthcare_doc, healthcare_scs)
        policy = FaultPolicy(
            seed=seed,
            server_to_client=FaultRates(rollback=0.35),
        )
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            channel=FaultyChannel(policy=policy),
        )
        start = counters.snapshot()
        for query in QUERIES:  # record pre-update snapshots
            assert system.query(query).canonical() == before[query]
        system.update_value(PROBE, "987654")
        outcomes = []
        for _ in range(4):  # replay window: stale snapshots now differ
            for query in QUERIES:
                try:
                    answer = system.query(query)
                except QueryFailedError:
                    outcomes.append("typed-error")
                    continue
                assert answer.canonical() == after[query], query
                outcomes.append("fresh")
        assert "fresh" in outcomes  # retries do recover real answers
        delta = counters.delta_since(start)
        assert delta.get("faults_rolled_back", 0) > 0, seed
        assert delta.get("rollback_detected", 0) > 0, seed
        assert delta.get("freshness_failures", 0) > 0, seed

    def test_pre_update_rollback_is_harmless(
        self, healthcare_doc, healthcare_scs
    ):
        """Replaying a same-epoch response is not an attack: the bytes
        are identical, so the channel never substitutes and every
        answer is exact."""
        policy = FaultPolicy(
            seed=0, server_to_client=FaultRates(rollback=1.0)
        )
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            channel=FaultyChannel(policy=policy),
        )
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        for query in QUERIES:
            for _ in range(3):
                assert (
                    system.query(query).canonical()
                    == reference.query(query).canonical()
                )

    def test_failure_message_names_the_fault_kind(
        self, healthcare_doc, healthcare_scs
    ):
        """Satellite: the one-line error is diagnosable on its own."""
        from repro.core.system import RetryPolicy

        policy = FaultPolicy(
            seed=1, server_to_client=FaultRates(rollback=1.0)
        )
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            channel=FaultyChannel(policy=policy),
            retry_policy=RetryPolicy(naive_fallback=False),
        )
        system.query(PROBE)  # record the snapshot
        system.update_value(PROBE, "424242")
        with pytest.raises(QueryFailedError) as excinfo:
            system.query(PROBE)
        message = str(excinfo.value)
        assert "attempts" in message
        assert "freshness" in message
        assert "last error RollbackDetectedError" in message
        assert "last fault rollback" in message


# ----------------------------------------------------------------------
# Rollback attacker: cluster sweep + pinned stale replica
# ----------------------------------------------------------------------
class TestRollbackCluster:
    CONFIG = ClusterConfig(shards=4, replicas=2)

    def host(self, document, constraints, faults, **kwargs):
        return SecureXMLSystem.host(
            document, constraints, scheme="opt",
            cluster=self.CONFIG, cluster_faults=faults, **kwargs,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster_sweep_never_a_stale_answer(
        self, seed, healthcare_doc, healthcare_scs
    ):
        before, after = _reference_run(healthcare_doc, healthcare_scs)

        def faults(shard_id, replica_id):
            return FaultPolicy(
                seed=seed * 31 + shard_id * 7 + replica_id,
                server_to_client=FaultRates(rollback=0.3),
            )

        system = self.host(healthcare_doc, healthcare_scs, faults)
        start = counters.snapshot()
        for query in QUERIES:
            assert system.query(query).canonical() == before[query]
        system.update_value(PROBE, "987654")
        outcomes = []
        for _ in range(4):
            for query in QUERIES:
                try:
                    answer = system.query(query)
                except QueryFailedError:
                    outcomes.append("typed-error")
                    continue
                assert answer.canonical() == after[query], query
                outcomes.append("fresh")
        assert "fresh" in outcomes
        delta = counters.delta_since(start)
        assert delta.get("faults_rolled_back", 0) > 0, seed
        assert delta.get("freshness_failures", 0) > 0, seed

    def test_pinned_stale_replica_demoted_resynced_readmitted(
        self, healthcare_doc, healthcare_scs
    ):
        """One replica frozen at an old epoch at (4, 2): queries still
        succeed via failover, the replica is demoted then resynced and
        re-admitted, and every answer is byte-identical to the no-fault
        cluster run."""
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=self.CONFIG,
        )

        def faults(shard_id, replica_id):
            if shard_id == 0 and replica_id == 0:
                return FaultPolicy(pin_stale=True)
            return None

        system = self.host(healthcare_doc, healthcare_scs, faults)

        def run_phase():
            for query in QUERIES:
                assert (
                    system.query(query).canonical()
                    == reference.query(query).canonical()
                ), query

        run_phase()  # pins the pre-update snapshots
        system.update_value(PROBE, "987654")
        reference.update_value(PROBE, "987654")
        run_phase()  # pinned replica serves stale → demote + failover

        pinned_set = system.coordinator.replica_sets[0]
        assert pinned_set.stats.demotions >= 1
        assert pinned_set.stats.resyncs >= 1
        assert pinned_set.stats.max_epoch_lag >= 1
        assert pinned_set.stats.failovers >= 1

        run_phase()  # re-admitted replica now serves fresh state
        demotions_after_resync = pinned_set.stats.demotions

        system.update_value(PROBE, "111222")
        reference.update_value(PROBE, "111222")
        run_phase()  # pins again → a second demote/resync cycle
        assert pinned_set.stats.demotions > demotions_after_resync
        assert pinned_set.stats.resyncs >= 2

    def test_all_replicas_stale_raises_typed_error(
        self, healthcare_doc, healthcare_scs
    ):
        """When *every* replica of a shard is pinned stale, the shard
        degrades with the typed error — never a stale answer — and the
        message carries the diagnosis."""
        from repro.core.system import RetryPolicy

        def faults(shard_id, replica_id):
            return FaultPolicy(pin_stale=True)

        # The naive fallback's request is first *recorded* post-update
        # (a fresh snapshot), so it would legitimately rescue the query;
        # disable it to corner the system into the typed error.
        system = self.host(
            healthcare_doc, healthcare_scs, faults,
            retry_policy=RetryPolicy(naive_fallback=False),
        )
        # Cycle 1 seeds replica 0's recording; the post-update query
        # fails over to replica 1 (seeding *its* recording at the new
        # epoch) and resyncs replica 0, which re-records on the follow-up
        # query.  After the second update every replica replays a stale
        # snapshot, so the shard can only degrade with the typed error.
        system.query(PROBE)
        system.update_value(PROBE, "987654")
        system.query(PROBE)
        system.query(PROBE)
        system.update_value(PROBE, "111222")
        with pytest.raises((ClusterDegradedError, QueryFailedError)) as exc:
            system.query(PROBE)
        assert "last fault rollback" in str(exc.value)

    def test_stale_replica_does_not_block_naive_path(
        self, healthcare_doc, healthcare_scs
    ):
        """The naive (ship-everything) route also refuses stale state:
        the root-owning set fails over off its pinned replica."""
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=self.CONFIG,
        )

        def faults(shard_id, replica_id):
            if replica_id == 0:
                return FaultPolicy(pin_stale=True)
            return None

        system = self.host(healthcare_doc, healthcare_scs, faults)
        assert (
            system.naive_query(PROBE).canonical()
            == reference.naive_query(PROBE).canonical()
        )
        system.update_value(PROBE, "987654")
        reference.update_value(PROBE, "987654")
        assert (
            system.naive_query(PROBE).canonical()
            == reference.naive_query(PROBE).canonical()
        )


# ----------------------------------------------------------------------
# Determinism of the extended fault schedule
# ----------------------------------------------------------------------
class TestRollbackDeterminism:
    def test_rollback_rate_validated(self):
        with pytest.raises(ValueError, match="rollback"):
            FaultRates(rollback=1.5)
        assert FaultRates(rollback=0.3).any

    def test_same_seed_same_rollback_schedule(self):
        def run(policy):
            channel = FaultyChannel(policy=policy)
            channel.transfer("client->server", "q", b"request")
            for size in (100, 90, 80, 70):
                channel.transfer("server->client", "a", bytes(size))
            return policy.schedule_signature()

        first = run(FaultPolicy(
            seed=5, server_to_client=FaultRates(rollback=0.5)
        ))
        second = run(FaultPolicy(
            seed=5, server_to_client=FaultRates(rollback=0.5)
        ))
        assert first == second
        assert any(kind == "rollback" for _, _, kind, _ in first)

    def test_zero_rollback_rate_consumes_no_randomness(self):
        """Pre-rollback seeded schedules must stay byte-identical: the
        rollback draw is guarded on a nonzero rate."""
        def run(rates):
            policy = FaultPolicy(seed=11, server_to_client=rates)
            channel = FaultyChannel(policy=policy)
            for size in (100, 200, 300):
                try:
                    channel.transfer("server->client", "a", bytes(size))
                except Exception:
                    pass
            return policy.schedule_signature()

        legacy = run(FaultRates(drop=0.4, corrupt=0.4))
        extended = run(FaultRates(drop=0.4, corrupt=0.4, rollback=0.0))
        assert legacy == extended

    def test_resync_clears_recorded_snapshots(self):
        policy = FaultPolicy(seed=0, pin_stale=True)
        channel = FaultyChannel(policy=policy)
        channel.transfer("client->server", "q", b"request")
        channel.transfer("server->client", "a", b"old response")
        channel.transfer("client->server", "q", b"request")
        delivered, _ = channel.transfer("server->client", "a", b"new response")
        assert delivered == b"old response"  # pinned
        channel.resync()
        channel.transfer("client->server", "q", b"request")
        delivered, _ = channel.transfer("server->client", "a", b"new response")
        assert delivered == b"new response"  # caught up
