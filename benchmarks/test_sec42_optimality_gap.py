"""E11 — §4.2: optimality gap of the approximate encryption schemes.

Theorem 4.2 makes the optimal scheme NP-hard; the paper adopts Clarkson's
greedy 2-approximation.  This benchmark measures the realized gap on (a)
the two evaluation constraint graphs and (b) a population of random
constraint graphs, for both Clarkson's algorithm and the primal-dual
pricing method (an ablation comparator).
"""

from repro.bench.harness import format_table
from repro.core.constraint_graph import ConstraintGraph, build_constraint_graph
from repro.core.optimal import (
    clarkson_greedy_cover,
    cover_weight,
    exact_min_cover,
    pricing_cover,
)
from repro.crypto.prf import DeterministicRandom
from repro.workloads.nasa import nasa_constraints
from repro.workloads.xmark import xmark_constraints

from conftest import write_result


def _random_graph(rng: DeterministicRandom) -> ConstraintGraph:
    graph = ConstraintGraph()
    vertex_count = rng.randint(4, 10)
    vertices = [f"v{i}" for i in range(vertex_count)]
    graph.weights = {v: rng.randint(1, 30) for v in vertices}
    edge_count = rng.randint(3, 14)
    for _ in range(edge_count):
        a = rng.choice(vertices)
        b = rng.choice([v for v in vertices if v != a])
        graph.edges.add(frozenset({a, b}))
    return graph


def _gap(graph: ConstraintGraph, algorithm) -> float:
    optimal = cover_weight(graph, exact_min_cover(graph))
    approximate = cover_weight(graph, algorithm(graph))
    return approximate / optimal if optimal else 1.0


def _run(xmark_doc, nasa_doc):
    rows = []
    for name, document, constraints in (
        ("XMark", xmark_doc, xmark_constraints()),
        ("NASA", nasa_doc, nasa_constraints()),
    ):
        graph = build_constraint_graph(document, constraints)
        rows.append(
            [
                name,
                _gap(graph, clarkson_greedy_cover),
                _gap(graph, pricing_cover),
            ]
        )

    rng = DeterministicRandom(b"gap-bench-seed-0", "graphs")
    clarkson_gaps = []
    pricing_gaps = []
    for _ in range(60):
        graph = _random_graph(rng)
        clarkson_gaps.append(_gap(graph, clarkson_greedy_cover))
        pricing_gaps.append(_gap(graph, pricing_cover))
    rows.append(
        [
            "random graphs (mean of 60)",
            sum(clarkson_gaps) / len(clarkson_gaps),
            sum(pricing_gaps) / len(pricing_gaps),
        ]
    )
    rows.append(
        ["random graphs (max of 60)", max(clarkson_gaps), max(pricing_gaps)]
    )
    return rows, clarkson_gaps, pricing_gaps


def test_sec42_optimality_gap(benchmark, xmark_doc, nasa_doc):
    rows, clarkson_gaps, pricing_gaps = benchmark.pedantic(
        _run, args=(xmark_doc, nasa_doc), rounds=1, iterations=1
    )
    table = format_table(
        ["instance", "Clarkson / optimal", "pricing / optimal"],
        rows,
        "§4.2 — approximation gap of the app-scheme cover algorithms",
    )
    write_result("sec42_optimality_gap", table)

    # The factor-2 guarantee holds on every instance.
    assert all(gap <= 2.0 + 1e-9 for gap in clarkson_gaps)
    assert all(gap <= 2.0 + 1e-9 for gap in pricing_gaps)
    # On the paper's actual constraint graphs the greedy is near-optimal.
    assert rows[0][1] <= 1.5 and rows[1][1] <= 1.5
