"""Unit tests for the XML parser."""

import pytest

from repro.xmldb.node import Element, EncryptedBlockNode, Text
from repro.xmldb.parser import XMLParseError, parse_document, parse_fragment


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.root.tag == "a"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.root.children[0].children[0].tag == "c"

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root.text_value() == "hello"

    def test_text_whitespace_stripped(self):
        doc = parse_document("<a>\n   hello  \n</a>")
        assert doc.root.text_value() == "hello"

    def test_whitespace_only_text_dropped(self):
        doc = parse_document("<a>\n  <b>x</b>\n</a>")
        assert len(doc.root.children) == 1

    def test_attributes(self):
        doc = parse_document('<a x="1" y="two"/>')
        assert doc.root.attribute("x").value == "1"
        assert doc.root.attribute("y").value == "two"

    def test_single_quoted_attribute(self):
        doc = parse_document("<a x='1'/>")
        assert doc.root.attribute("x").value == "1"

    def test_hash_in_tag_name(self):
        # The paper's Figure 2 uses tags like policy#.
        doc = parse_document("<insurance><policy#>34221</policy#></insurance>")
        assert doc.root.children[0].tag == "policy#"

    def test_mixed_children_order_preserved(self):
        doc = parse_document("<a><b/>text<c/></a>")
        kinds = [type(child).__name__ for child in doc.root.children]
        assert kinds == ["Element", "Text", "Element"]


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        doc = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text_value() == "<>&'\""

    def test_numeric_entities(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root.text_value() == "AB"

    def test_entity_in_attribute(self):
        doc = parse_document('<a x="a&amp;b"/>')
        assert doc.root.attribute("x").value == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&bogus;</a>")

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not & parsed>]]></a>")
        assert doc.root.text_value() == "<not & parsed>"

    def test_comments_skipped(self):
        doc = parse_document("<!-- head --><a><!-- in -->x</a><!-- tail -->")
        assert doc.root.text_value() == "x"

    def test_declaration_and_doctype_skipped(self):
        doc = parse_document(
            '<?xml version="1.0"?><!DOCTYPE a><a>x</a>'
        )
        assert doc.root.text_value() == "x"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a/><b/>",
            "<a>&unterminated",
            "<a><!-- unclosed </a>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLParseError):
            parse_document(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a></b>")
        assert info.value.position > 0


class TestEncryptedBlocks:
    def test_placeholder_reconstructed(self):
        doc = parse_document(
            '<a><EncryptedData block-id="7">0badc0de</EncryptedData></a>'
        )
        block = doc.root.children[0]
        assert isinstance(block, EncryptedBlockNode)
        assert block.block_id == 7
        assert block.payload == bytes.fromhex("0badc0de")

    def test_root_placeholder_left_as_element(self):
        # The client unwraps a root-level block itself.
        root = parse_fragment(
            '<EncryptedData block-id="1">aa</EncryptedData>'
        )
        assert isinstance(root, Element)
        assert root.tag == "EncryptedData"

    def test_encrypted_data_without_block_id_is_plain_element(self):
        doc = parse_document("<a><EncryptedData>q</EncryptedData></a>")
        assert isinstance(doc.root.children[0], Element)


class TestFragment:
    def test_fragment_has_no_numbering(self):
        root = parse_fragment("<a><b>x</b></a>")
        assert root.node_id == -1

    def test_fragment_rejects_trailing(self):
        with pytest.raises(XMLParseError):
            parse_fragment("<a/>junk")
