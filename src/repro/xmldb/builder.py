"""Fluent programmatic construction of document trees.

Workload generators build large synthetic documents; spelling those out as
string XML and re-parsing would double the generation cost, so they use this
builder instead::

    builder = TreeBuilder("hospital")
    with builder.element("patient"):
        builder.leaf("pname", "Betty")
        with builder.element("treat"):
            builder.leaf("disease", "diarrhea")
            builder.leaf("doctor", "Smith")
    doc = builder.document()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.xmldb.node import Document, Element, Text


class TreeBuilder:
    """Stack-based builder producing a :class:`Document`."""

    def __init__(self, root_tag: str) -> None:
        self._root = Element(root_tag)
        self._stack: list[Element] = [self._root]

    @property
    def current(self) -> Element:
        """The element new children are currently appended to."""
        return self._stack[-1]

    @contextmanager
    def element(self, tag: str, **attributes: str) -> Iterator[Element]:
        """Open a child element for the duration of the ``with`` block."""
        element = Element(tag)
        for name, value in attributes.items():
            element.set_attribute(name, str(value))
        self.current.append(element)
        self._stack.append(element)
        try:
            yield element
        finally:
            popped = self._stack.pop()
            assert popped is element

    def leaf(self, tag: str, value: object, **attributes: str) -> Element:
        """Append a leaf element ``<tag>value</tag>`` and return it."""
        element = Element(tag)
        for name, attr_value in attributes.items():
            element.set_attribute(name, str(attr_value))
        element.append(Text(str(value)))
        self.current.append(element)
        return element

    def empty(self, tag: str, **attributes: str) -> Element:
        """Append an empty element (attributes only) and return it."""
        element = Element(tag)
        for name, value in attributes.items():
            element.set_attribute(name, str(value))
        self.current.append(element)
        return element

    def attribute(self, name: str, value: object) -> None:
        """Set an attribute on the current element."""
        self.current.set_attribute(name, str(value))

    def document(self) -> Document:
        """Finish building and return the numbered document."""
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced element() blocks")
        return Document(self._root)
