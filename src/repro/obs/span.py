"""Per-query span tracing (the timing half of the observability layer).

A :class:`Span` is one timed region of the query pipeline — ``translate``,
``server``, ``decrypt`` — nested into a tree that mirrors the paper's
Fig. 9 "division of work": where a :class:`~repro.core.system.QueryTrace`
reports one scalar per stage, the span tree keeps *structure* (which
attempt, which chunk, which worker) so "where did this query spend its
time" has an answer without editing benchmark code.

A :class:`Tracer` owns the ambient context: a thread-local stack of open
spans, so a deeper layer (the server's structural join, the channel, a
fragment decrypt on a pool worker) attaches its spans under whatever the
caller has open without any plumbing through call signatures.  Worker
threads inherit the submitting thread's context through
:meth:`Tracer.wrap` (the :class:`~repro.core.parallel.WorkerPool` applies
it to every thread-backend task).

Design rules, load-bearing for the rest of the package:

* **Spans always time.**  A disabled tracer still hands out real,
  clock-backed spans — it only skips linking them into a tree — because
  ``QueryTrace``'s timing fields are *derived from* span durations.
  Tracing on/off must never change the measured numbers.
* **Modelled time is first-class.**  Wire transfer and retry backoff are
  modelled, not slept (see :mod:`repro.netsim.channel`); their spans get
  :meth:`Span.set_duration` so span totals still reconcile with the
  trace's modelled fields.
* **Mutation is GIL-atomic.**  Child lists and annotation dicts are
  mutated with single list/dict operations only, the same concurrency
  discipline the cache layers use; spans carry no locks.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


class Span:
    """One timed, annotated region of work, with nested children."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "annotations",
        "started_s",
        "duration_s",
    )

    def __init__(
        self,
        name: str,
        parent: "Span | None" = None,
        annotations: "dict[str, Any] | None" = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.annotations: dict[str, Any] = annotations or {}
        self.started_s = time.perf_counter()
        #: None while open; set by :meth:`finish` or :meth:`set_duration`.
        self.duration_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> float:
        """Close the span (idempotent); returns its duration in seconds."""
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self.started_s
        return self.duration_s

    def set_duration(self, seconds: float) -> None:
        """Override the measured duration with a *modelled* one.

        Used for stages whose cost is accounted rather than slept (wire
        transfer, retry backoff), so span totals reconcile with the
        modelled fields of :class:`~repro.core.system.QueryTrace`.
        """
        self.duration_s = seconds
        self.annotations["modelled"] = True

    def elapsed_s(self) -> float:
        """Wall time since the span started (duration once finished)."""
        if self.duration_s is not None:
            return self.duration_s
        return time.perf_counter() - self.started_s

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------
    def annotate(self, **values: Any) -> None:
        self.annotations.update(values)

    def add_event(self, key: str, value: Any) -> None:
        """Append ``value`` to the list annotation ``key`` (e.g. faults)."""
        self.annotations.setdefault(key, []).append(value)

    # ------------------------------------------------------------------
    # Aggregation / traversal
    # ------------------------------------------------------------------
    def iter(self) -> Iterator["Span"]:
        """Depth-first traversal of the subtree, self first."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def total(self, name: str) -> float:
        """Sum of durations of every span named ``name`` in the subtree.

        This is the reconciliation primitive: ``root.total("server")``
        equals ``QueryTrace.server_s`` exactly, because both are written
        from the same span measurements.  Spans still open count as 0.
        """
        return sum(
            span.duration_s or 0.0
            for span in self.iter()
            if span.name == name
        )

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in depth-first order, if any."""
        for span in self.iter():
            if span.name == name:
                return span
        return None

    # ------------------------------------------------------------------
    # Rendering / export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-able form of the subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
        }
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def render(self, indent: str = "") -> str:
        """Human-readable nested tree, repeated siblings grouped by name.

        Grouping keeps chunked streams readable: five sibling ``server``
        spans print as one ``server ×5`` line carrying their summed
        duration (the same sum :meth:`total` reports).
        """
        lines = [indent + self._describe()]
        child_indent = indent + "  "
        index = 0
        children = self.children
        while index < len(children):
            run = [children[index]]
            while (
                index + len(run) < len(children)
                and children[index + len(run)].name == run[0].name
                and not children[index + len(run)].children
                and not run[-1].children
            ):
                run.append(children[index + len(run)])
            if len(run) > 1:
                total = sum(span.duration_s or 0.0 for span in run)
                annotated = _render_annotations(
                    _merge_annotations(run)
                )
                lines.append(
                    f"{child_indent}{run[0].name} ×{len(run)}"
                    f"  {total * 1000:.3f}ms{annotated}"
                )
            else:
                lines.append(run[0].render(child_indent))
            index += len(run)
        return "\n".join(lines)

    def _describe(self) -> str:
        duration = self.duration_s
        timing = (
            f"{duration * 1000:.3f}ms" if duration is not None else "open"
        )
        return f"{self.name}  {timing}{_render_annotations(self.annotations)}"

    def __repr__(self) -> str:  # keep QueryTrace reprs short
        return f"Span({self.name!r}, duration_s={self.duration_s})"


def _merge_annotations(spans: list[Span]) -> dict[str, Any]:
    merged: dict[str, Any] = {}
    for span in spans:
        for key, value in span.annotations.items():
            if key == "modelled":
                merged[key] = True
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                merged[key] = merged.get(key, 0) + value
            elif isinstance(value, list):
                merged.setdefault(key, []).extend(value)
            else:
                merged[key] = value
    return merged


def _render_annotations(annotations: dict[str, Any]) -> str:
    if not annotations:
        return ""
    parts = []
    for key in sorted(annotations):
        value = annotations[key]
        if value is True:
            parts.append(key)
        elif isinstance(value, list):
            parts.append(f"{key}={','.join(str(v) for v in value)}")
        else:
            parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


class Tracer:
    """Thread-local span context: who is currently being timed, per thread.

    ``enabled=False`` is the overhead escape hatch: spans are still
    created and timed (the trace fields depend on them) but never linked
    into a tree, annotated, or made ambient — the steady-state cost is
    one small object per stage.  The obs overhead benchmark gates the
    *enabled* path against this baseline.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Ambient context
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def begin(self, name: str, **annotations: Any) -> Span:
        """Open a span *without* making it ambient (see :meth:`activate`).

        The query pipeline uses this for the root ``query`` span, whose
        lifetime spans multiple method calls (and, for pipelined batches,
        multiple threads) rather than one lexical block.
        """
        if not self.enabled:
            return Span(name)
        parent = self.current()
        span = Span(name, parent, dict(annotations) if annotations else None)
        if parent is not None:
            parent.children.append(span)
        return span

    @contextmanager
    def span(self, name: str, **annotations: Any):
        """Open a child of the current span for the duration of the block."""
        span = self.begin(name, **annotations)
        if not self.enabled:
            try:
                yield span
            finally:
                span.finish()
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            if stack and stack[-1] is span:
                stack.pop()

    @contextmanager
    def activate(self, span: Span | None, worker: bool = False):
        """Make ``span`` the ambient parent without timing anything.

        Used to resume a long-lived span (the root query span inside a
        deferred ``_finish``) and by :meth:`wrap` to propagate context
        onto pool workers.  ``worker=True`` tags spans opened underneath
        with ``worker`` so concurrent (wall-clock-overlapping) work is
        distinguishable from the sequential stages in the rendered tree.
        """
        if not self.enabled or span is None:
            yield
            return
        stack = self._stack()
        stack.append(span)
        was_worker = getattr(self._local, "worker", False)
        if worker:
            self._local.worker = True
        try:
            yield
        finally:
            if worker:
                self._local.worker = was_worker
            if stack and stack[-1] is span:
                stack.pop()

    def in_worker(self) -> bool:
        """True while executing under a worker-propagated context."""
        return bool(getattr(self._local, "worker", False))

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Bind the *current* span context into ``fn`` for another thread.

        The worker pool applies this at submit time, so a task's spans
        attach under the span that was open when the caller scheduled it
        — the cross-thread half of "propagated through the worker pool".
        """
        if not self.enabled:
            return fn
        parent = self.current()
        if parent is None:
            return fn

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            with self.activate(parent, worker=True):
                return fn(*args, **kwargs)

        return wrapped
