"""Sharding must not *create* leakage: per-shard attacks vs monolithic.

The cluster replicates the index metadata (the paper already counts it
as server-visible) but partitions the ciphertext payloads, so a single
compromised shard observes the same index and **strictly fewer** block
payloads than the monolithic server.  These tests pin the consequence
with the existing attack toolkit: the frequency attack run against any
one shard's view cracks no more than the same attack against the whole
hosting — on the secure schemes (nothing, on both) and on the §4.1
strawman, where the monolithic histogram genuinely cracks.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster import ClusterConfig
from repro.core.system import SecureXMLSystem
from repro.security.attacks import (
    FrequencyAttack,
    ciphertext_block_histogram,
)
from repro.security.indistinguishability import (
    indistinguishable,
    permute_field_values,
)
from repro.xmldb.stats import value_frequencies

SHARDS = 3
FIELD = "disease"


def shard_views(system):
    return [
        replica_set.replicas[0].server.shard_view()
        for replica_set in system.coordinator.replica_sets
    ]


def run_attack(document, view, token):
    fields = value_frequencies(document)
    attack = FrequencyAttack(fields[FIELD])
    return attack.run(ciphertext_block_histogram(view, token), FIELD)


def correctly_cracked(system, report) -> int:
    """How many of the report's claimed cracks are actually *true*.

    A frequency match against a partial (per-shard) view can assert a
    value→ciphertext mapping with false certainty; only a mapping whose
    block really decrypts to the claimed value is attacker advantage.
    The test holds the client keys, so it can adjudicate.
    """
    correct = 0
    for value, payload in report.cracked.items():
        for block_id, stored in system.hosted.blocks.items():
            if stored != payload:
                continue
            subtree = system.client._decrypt_block(block_id, payload)
            texts = {
                text
                for node in subtree.iter()
                if (text := getattr(node, "text_value", lambda: None)())
            }
            if value in texts:
                correct += 1
            break
    return correct


class TestShardedFrequencyAttack:
    @pytest.fixture
    def strawman(self, healthcare_doc, healthcare_scs):
        return SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=False,
            cluster=ClusterConfig(shards=SHARDS),
        )

    def test_shard_views_partition_the_histogram(
        self, healthcare_doc, strawman
    ):
        token = strawman.hosted.field_tokens[FIELD]
        whole = ciphertext_block_histogram(strawman.hosted, token)
        merged: Counter = Counter()
        for view in shard_views(strawman):
            merged += ciphertext_block_histogram(view, token)
        assert merged == whole

    def test_per_shard_advantage_not_above_monolithic(
        self, healthcare_doc, strawman
    ):
        token = strawman.hosted.field_tokens[FIELD]
        monolithic = run_attack(
            healthcare_doc, strawman.hosted, token
        )
        assert monolithic.cracked, "strawman no longer cracks — bad fixture"
        whole_correct = correctly_cracked(strawman, monolithic)
        assert whole_correct == len(monolithic.cracked), (
            "monolithic strawman cracks should all be true"
        )
        for view in shard_views(strawman):
            report = run_attack(healthcare_doc, view, token)
            assert (
                correctly_cracked(strawman, report) <= whole_correct
            ), f"shard {view.shard_id} out-cracked the whole view"

    def test_secure_hosting_no_shard_gains_advantage(
        self, healthcare_doc, healthcare_scs
    ):
        """On the secure scheme, no shard's success probability rises.

        A partial histogram can trip the frequency matcher into a
        *claimed* crack (the matcher assumes it saw every block of the
        field, so a lone frequency-1 payload "matches" the unique-count
        value) — but such a claim is a guess at exactly the baseline
        rate.  The formal advantage — the attack's success probability
        of a full correct assignment — must not exceed the monolithic
        attacker's, and the monolithic attacker must truly crack
        nothing.
        """
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=SHARDS),
        )
        token = system.hosted.field_tokens[FIELD]
        monolithic = run_attack(healthcare_doc, system.hosted, token)
        assert correctly_cracked(system, monolithic) == 0
        assert monolithic.success_probability < 1
        for view in shard_views(system):
            report = run_attack(healthcare_doc, view, token)
            assert (
                report.success_probability
                <= monolithic.success_probability
            ), f"shard {view.shard_id} amplified the attack"


class TestShardIndistinguishability:
    def test_candidate_database_indistinguishable_per_shard(
        self, healthcare_doc, healthcare_scs
    ):
        """A Theorem 4.1 candidate stays indistinguishable shard by shard.

        D′ permutes the protected field's values (same structure, same
        per-field histograms), so the placements coincide and a shard
        compromise must observe the same ciphertext frequency profile
        for D and D′ — otherwise sharding would have broken the
        candidate family the security theorems quantify over.
        """
        candidate = permute_field_values(healthcare_doc, FIELD, seed=5)
        assert indistinguishable(healthcare_doc, candidate)

        original = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=SHARDS),
        )
        permuted = SecureXMLSystem.host(
            candidate, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=SHARDS),
        )
        token_a = original.hosted.field_tokens[FIELD]
        token_b = permuted.hosted.field_tokens[FIELD]
        for view_a, view_b in zip(
            shard_views(original), shard_views(permuted)
        ):
            profile_a = sorted(
                ciphertext_block_histogram(view_a, token_a).values()
            )
            profile_b = sorted(
                ciphertext_block_histogram(view_b, token_b).values()
            )
            assert profile_a == profile_b, (
                f"shard {view_a.shard_id} frequency profiles diverged"
            )
