"""Tests for the DSI structural index (§5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsi import (
    Interval,
    assign_intervals,
    build_structural_index,
)
from repro.core.scheme import opt_scheme, top_scheme
from repro.crypto.prf import DeterministicRandom
from repro.crypto.vernam import DeterministicTagCipher
from repro.xmldb.node import Attribute, Document, Element
from repro.xmldb.parser import parse_document


def weight_stream():
    return DeterministicRandom(b"w" * 16, "dsi")


class TestInterval:
    def test_strict_containment(self):
        outer = Interval(0.1, 0.9)
        inner = Interval(0.2, 0.8)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert not outer.contains(outer)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.5, 0.5)
        with pytest.raises(ValueError):
            Interval(0.7, 0.2)


class TestAssignIntervals:
    def test_root_gets_unit_interval(self, healthcare_doc):
        intervals = assign_intervals(healthcare_doc, weight_stream())
        root_interval = intervals[healthcare_doc.root.node_id]
        assert (root_interval.low, root_interval.high) == (0.0, 1.0)

    def test_children_strictly_nested_with_gaps(self, healthcare_doc):
        """The Figure 3 guarantees: containment, gaps, order."""
        intervals = assign_intervals(healthcare_doc, weight_stream())
        for element in healthcare_doc.elements():
            parent_interval = intervals[element.node_id]
            child_nodes = list(element.attributes) + [
                c for c in element.children if isinstance(c, Element)
            ]
            previous_high = None
            for child in child_nodes:
                child_interval = intervals[child.node_id]
                assert parent_interval.contains(child_interval)
                if previous_high is not None:
                    assert child_interval.low > previous_high  # gap
                previous_high = child_interval.high

    def test_ancestor_descendant_iff_containment(self, healthcare_doc):
        intervals = assign_intervals(healthcare_doc, weight_stream())
        elements = list(healthcare_doc.elements())
        for outer in elements:
            for inner in elements:
                if outer is inner:
                    continue
                geometric = intervals[outer.node_id].contains(
                    intervals[inner.node_id]
                )
                structural = outer.is_ancestor_of(inner)
                assert geometric == structural

    def test_attributes_indexed(self, healthcare_doc):
        intervals = assign_intervals(healthcare_doc, weight_stream())
        for element in healthcare_doc.elements():
            for attribute in element.attributes:
                assert attribute.node_id in intervals

    def test_weights_change_geometry_not_topology(self, healthcare_doc):
        one = assign_intervals(
            healthcare_doc, DeterministicRandom(b"a" * 16)
        )
        two = assign_intervals(
            healthcare_doc, DeterministicRandom(b"b" * 16)
        )
        assert one != two  # randomized gaps
        # but nesting structure is identical
        for element in healthcare_doc.elements():
            for child in element.child_elements():
                assert one[element.node_id].contains(one[child.node_id])
                assert two[element.node_id].contains(two[child.node_id])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_laminar_family_property(self, seed):
        """Any two intervals are nested or disjoint, never partial."""
        doc = parse_document(
            "<r><a><b>1</b><b>2</b></a><c><d><e>3</e></d></c></r>"
        )
        stream = DeterministicRandom(seed.to_bytes(16, "big"), "x")
        intervals = list(assign_intervals(doc, stream).values())
        for i, first in enumerate(intervals):
            for second in intervals[i + 1 :]:
                nested = (
                    first.contains(second)
                    or second.contains(first)
                    or first == second
                )
                disjoint = (
                    first.high < second.low or second.high < first.low
                )
                assert nested or disjoint


def build_index(document, scheme):
    intervals = assign_intervals(document, weight_stream())
    block_ids = {
        root_id: index + 1
        for index, root_id in enumerate(sorted(scheme.block_root_ids))
    }
    cipher = DeterministicTagCipher(b"t" * 32)
    index = build_structural_index(
        document, intervals, scheme.block_root_ids, block_ids, cipher.encrypt_tag
    )
    return index, cipher


class TestStructuralIndexTable:
    def test_plaintext_tags_in_clear(self, healthcare_doc, healthcare_scs):
        index, _ = build_index(
            healthcare_doc, opt_scheme(healthcare_doc, healthcare_scs)
        )
        assert "patient" in index.table
        assert "hospital" in index.table

    def test_encrypted_tags_are_tokens(self, healthcare_doc, healthcare_scs):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        index, cipher = build_index(healthcare_doc, scheme)
        assert "insurance" not in index.table
        assert cipher.encrypt_tag("insurance") in index.table
        assert cipher.encrypt_tag("policy#") in index.table

    def test_same_tag_same_token_across_blocks(
        self, healthcare_doc, healthcare_scs
    ):
        """Figure 4(b): U84573 lists intervals from several blocks."""
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        index, cipher = build_index(healthcare_doc, scheme)
        covered = sorted(scheme.covered_fields)[0]
        token = cipher.encrypt_tag(covered)
        entries = index.lookup(token)
        blocks = {entry.block_id for entry in entries}
        assert len(blocks) >= 2

    def test_grouping_merges_adjacent_same_tag_in_block(
        self, healthcare_doc, healthcare_scs
    ):
        """The two adjacent policy# leaves of one insurance block merge."""
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        index, cipher = build_index(healthcare_doc, scheme)
        token = cipher.encrypt_tag("policy#")
        entries = index.lookup(token)
        # 4 policy# nodes in 2 blocks -> 2 grouped entries of 2 members.
        assert len(entries) == 2
        assert all(len(entry.member_ids) == 2 for entry in entries)

    def test_plaintext_siblings_not_grouped(self, healthcare_doc, healthcare_scs):
        index, _ = build_index(
            healthcare_doc, opt_scheme(healthcare_doc, healthcare_scs)
        )
        treat_entries = index.lookup("treat")
        assert len(treat_entries) == 3  # adjacent but NOT encrypted
        assert all(len(e.member_ids) == 1 for e in treat_entries)

    def test_top_scheme_groups_adjacent_patients(
        self, healthcare_doc, healthcare_scs
    ):
        scheme = top_scheme(healthcare_doc)
        index, cipher = build_index(healthcare_doc, scheme)
        entries = index.lookup(cipher.encrypt_tag("patient"))
        assert len(entries) == 1
        assert len(entries[0].member_ids) == 2

    def test_block_table_representative_intervals(
        self, healthcare_doc, healthcare_scs
    ):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        intervals = assign_intervals(healthcare_doc, weight_stream())
        index, _ = build_index(healthcare_doc, scheme)
        assert len(index.block_table) == len(scheme.block_root_ids)
        for root_id in scheme.block_root_ids:
            block_intervals = set(index.block_table.values())
            assert intervals[root_id] in block_intervals

    def test_parent_links_materialize_child_axis(
        self, healthcare_doc, healthcare_scs
    ):
        index, _ = build_index(
            healthcare_doc, opt_scheme(healthcare_doc, healthcare_scs)
        )
        hospital = index.lookup("hospital")[0]
        for patient in index.lookup("patient"):
            assert patient.parent is hospital
            assert patient.is_child_of(hospital)
        for treat in index.lookup("treat"):
            assert treat.parent.key == "patient"

    def test_attribute_entries_child_of_owner(
        self, healthcare_doc, healthcare_scs
    ):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        index, cipher = build_index(healthcare_doc, scheme)
        token = cipher.encrypt_tag("@coverage")
        entries = index.lookup(token)
        assert len(entries) == 2
        assert all(
            entry.parent.key == cipher.encrypt_tag("insurance")
            for entry in entries
        )

    def test_block_of_resolution(self, healthcare_doc, healthcare_scs):
        scheme = opt_scheme(healthcare_doc, healthcare_scs)
        index, cipher = build_index(healthcare_doc, scheme)
        policy_entry = index.lookup(cipher.encrypt_tag("policy#"))[0]
        assert index.block_of(policy_entry) is not None
        patient_entry = index.lookup("patient")[0]
        assert index.block_of(patient_entry) is None

    def test_entries_sorted_by_low(self, healthcare_doc, healthcare_scs):
        index, _ = build_index(
            healthcare_doc, opt_scheme(healthcare_doc, healthcare_scs)
        )
        lows = [entry.interval.low for entry in index.all_entries()]
        assert lows == sorted(lows)
