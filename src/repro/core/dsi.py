"""The discontinuous structural interval (DSI) index (§5.1).

The DSI index assigns every element and attribute an interval such that a
node's interval strictly contains those of its descendants, with *random
gaps* (weights ``w1, w2 ∈ (0, 0.5)`` known only to the client) between
adjacent intervals.  The gaps are what make the index discontinuous: unlike
the classic continuous interval scheme, the server cannot tell from the
geometry whether an interval in the index table represents one node or a
*group* of nodes — the information-hiding property behind Theorem 5.1.

The server-side metadata has two parts (Figure 4):

* the **DSI index table** — tag (Vernam-encrypted when the node is inside an
  encryption block) → list of intervals, with maximal runs of adjacent
  same-tag siblings in the same block merged into a single interval;
* the **encryption block table** — block id → representative interval (the
  interval of the block's root).

Because the DSI intervals form a laminar family, the axis predicates the
query processor needs reduce to interval geometry: *descendant* is strict
containment, and *child* is the paper's derived form — containment with no
table entry strictly in between — which this module precomputes as an
explicit parent pointer per entry via a single stack sweep.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Attribute, Document, Element, Node

#: Intervals thinner than this lose float resolution for strict-containment
#: tests; documents deep/wide enough to hit it need a wider number type.
_MIN_WIDTH = 1e-12


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open-feeling closed interval [low, high] with strict nesting."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"degenerate interval [{self.low}, {self.high}]")

    def contains(self, other: "Interval") -> bool:
        """Strict containment: gaps guarantee ancestors strictly enclose."""
        return self.low < other.low and other.high < self.high

    def __str__(self) -> str:
        return f"[{self.low:.6f}, {self.high:.6f}]"


def assign_intervals(
    document: Document, weights: DeterministicRandom
) -> dict[int, Interval]:
    """Run the Figure 3 ``calInterval`` algorithm over the whole document.

    Returns node_id → interval for every element and attribute.  The
    indexable children of an element are its attributes followed by its
    element children (text leaves share their parent's interval).  Per the
    paper, fresh weights ``w1, w2`` are drawn for every child.
    """
    intervals: dict[int, Interval] = {}
    root = document.root
    intervals[root.node_id] = Interval(0.0, 1.0)
    stack: list[tuple[Element, int]] = [(root, 0)]
    while stack:
        parent, depth = stack.pop()
        parent_interval = intervals[parent.node_id]
        children = _indexable_children(parent)
        if not children:
            continue
        count = len(children)
        spacing = (parent_interval.high - parent_interval.low) / (2 * count + 1)
        if spacing < _MIN_WIDTH:
            raise ValueError(
                "document too deep/wide for float DSI intervals; "
                f"interval spacing underflowed at node {parent.node_id} "
                f"(depth {depth}, fanout {count}: each level divides its "
                f"interval by 2*fanout+1, and spacing fell below "
                f"{_MIN_WIDTH:g}); regroup the document into shallower "
                "bulk-load batches (host subtrees separately and merge "
                "their column planes) or widen the number type"
            )
        for position, child in enumerate(children, start=1):
            w1 = weights.uniform(0.0, 0.5)
            w2 = weights.uniform(0.0, 0.5)
            low = parent_interval.low + (2 * position - 1) * spacing - spacing * w1
            high = parent_interval.low + 2 * position * spacing + w2 * spacing
            intervals[child.node_id] = Interval(low, high)
            if isinstance(child, Element):
                stack.append((child, depth + 1))
    return intervals


def _indexable_children(parent: Element) -> list[Node]:
    children: list[Node] = list(parent.attributes)
    children.extend(
        child for child in parent.children if isinstance(child, Element)
    )
    return children


@dataclass
class IndexEntry:
    """One row of the DSI index table.

    ``key`` is the (possibly encrypted) tag; ``interval`` may cover a group
    of adjacent same-tag siblings.  ``member_ids`` (client-side knowledge,
    used only by tests and the trace) lists the grouped nodes.  ``parent``
    is the immediate enclosing entry — the precomputed child-axis relation.
    """

    key: str
    interval: Interval
    member_ids: tuple[int, ...]
    block_id: Optional[int] = None
    parent: Optional["IndexEntry"] = None
    children: list["IndexEntry"] = field(default_factory=list)
    #: For *plaintext* entries only: the leaf value and the hosted node.
    #: Both are information the server legitimately sees (the node is in
    #: the clear in the hosted tree); they are attached at hosting time so
    #: the server can check plaintext predicates and ship subtrees without
    #: re-deriving the geometry↔tree alignment.
    plaintext_value: Optional[str] = None
    hosted_node: Optional[Node] = None

    def is_descendant_of(self, other: "IndexEntry") -> bool:
        return other.interval.contains(self.interval)

    def is_child_of(self, other: "IndexEntry") -> bool:
        return self.parent is other


@dataclass
class StructuralIndex:
    """The server-side structural metadata: DSI table + block table."""

    #: key (plaintext tag, ``@attr`` or ciphertext token) → entries
    table: dict[str, list[IndexEntry]]
    #: block id → representative interval (the encryption block table)
    block_table: dict[int, Interval]
    #: all entries, sorted by interval low bound (the laminar forest)
    entries: list[IndexEntry]
    #: lazily built per-tag sorted low-bound arrays (static-data cache for
    #: the descendant joins; dropped wholesale on :meth:`invalidate_caches`)
    _lows_by_key: dict[str, list[float]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: guards first-build of the lazy arrays: sharded (multi-worker)
    #: evaluation probes them concurrently, and without the lock every
    #: worker would re-sort the same static data on a cold key
    _lows_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: lazily built columnar plane encoding (see
    #: :mod:`repro.core.columnar`); dropped with the other static-data
    #: caches on :meth:`invalidate_caches` so an epoch bump can never
    #: leave a stale plane snapshot answering queries
    _columnar: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def lookup(self, key: str) -> list[IndexEntry]:
        """Intervals registered under a (translated) tag."""
        return self.table.get(key, [])

    def all_entries(self) -> list[IndexEntry]:
        return self.entries

    # ------------------------------------------------------------------
    # Static-data cache: per-tag sorted interval arrays
    # ------------------------------------------------------------------
    def sorted_lows(self, key: str) -> list[float]:
        """Sorted interval low bounds of a tag's entries, computed once.

        The descendant-axis join probes these arrays with binary search
        on every query; building them per query re-sorted the same
        static data over and over, so the index now owns one array per
        tag, built on first use and dropped on mutation (see
        :meth:`invalidate_caches`).
        """
        from repro.perf import counters

        cached = self._lows_by_key.get(key)
        if cached is not None:
            counters.add("interval_cache_hits")
            return cached
        with self._lows_lock:
            cached = self._lows_by_key.get(key)
            if cached is not None:
                counters.add("interval_cache_hits")
                return cached
            counters.add("interval_cache_misses")
            lows = sorted(
                entry.interval.low for entry in self.table.get(key, [])
            )
            self._lows_by_key[key] = lows
            return lows

    def invalidate_caches(self) -> None:
        """Drop the static-data caches (called on every epoch bump).

        Covers both the per-tag sorted-low arrays and the columnar plane
        snapshot (with its per-tag slice-offset memo) — the planes
        encode the same geometry, so they go stale together.
        """
        with self._lows_lock:
            self._lows_by_key.clear()
            self._columnar = None

    # ------------------------------------------------------------------
    # Columnar plane snapshot (static-data cache, like the low arrays)
    # ------------------------------------------------------------------
    def columnar(self):
        """The columnar plane encoding of this index, built once.

        Rebuilt lazily after :meth:`invalidate_caches`; counters track
        hit/miss so the epoch-invalidation tests can assert the planes
        were actually dropped and rebuilt.
        """
        from repro.core.columnar import ColumnarPlanes
        from repro.perf import counters

        planes = self._columnar
        if planes is not None:
            counters.add("columnar_cache_hits")
            return planes
        with self._lows_lock:
            planes = self._columnar
            if planes is not None:
                counters.add("columnar_cache_hits")
                return planes
            counters.add("columnar_cache_misses")
            planes = ColumnarPlanes.from_index(self)
            self._columnar = planes
            return planes

    def columnar_cached(self):
        """The current plane snapshot, or ``None`` if not built/dropped."""
        return self._columnar

    def attach_columnar(self, planes) -> None:
        """Adopt pre-built planes (the storage layer's mmap load path)."""
        with self._lows_lock:
            self._columnar = planes

    def drop_columnar(self) -> None:
        """Drop just the plane snapshot (server cache-flush path)."""
        with self._lows_lock:
            self._columnar = None

    def block_of(self, entry: IndexEntry) -> Optional[int]:
        """Resolve which encryption block an entry falls inside, if any.

        The server derives this from public metadata: an entry lies in
        block ``b`` when the block's representative interval contains (or
        equals) the entry's interval.
        """
        if entry.block_id is not None:
            return entry.block_id
        for block_id, representative in self.block_table.items():
            if representative.contains(entry.interval) or (
                representative == entry.interval
            ):
                return block_id
        return None

    def representative_entry(self, block_id: int) -> Optional[IndexEntry]:
        representative = self.block_table[block_id]
        for entry in self.entries:
            if entry.interval == representative:
                return entry
        return None

    # ------------------------------------------------------------------
    # Group ownership (the cluster layer's sharding key)
    # ------------------------------------------------------------------
    def group_cutpoints(self, group_count: int) -> list[float]:
        """Interval-group boundaries: ``group_count`` contiguous spans.

        The entries are already sorted by interval low bound, so slicing
        that order into contiguous spans partitions the laminar forest
        into *interval groups* — the paper's §5.1 grouping unit, reused
        by the cluster layer as its sharding key.  The returned list
        holds the low bound opening each group; membership of any
        interval (including one drawn *after* hosting, by an insert) is
        resolved by bisecting its low bound against these cutpoints, so
        group membership is a pure, seed-stable function of geometry.

        The first cutpoint is forced to ``-inf`` so every possible low
        bound maps to a group.
        """
        if group_count < 1:
            raise ValueError(f"group_count must be >= 1, got {group_count}")
        total = len(self.entries)
        group_count = min(group_count, total) or 1
        base, extra = divmod(total, group_count)
        cutpoints: list[float] = []
        start = 0
        for group in range(group_count):
            cutpoints.append(
                float("-inf")
                if group == 0
                else self.entries[start].interval.low
            )
            start += base + (1 if group < extra else 0)
        return cutpoints

    def hosted_node_lows(self) -> dict[int, float]:
        """Hosted node id → owning interval low, for plaintext entries.

        The cluster layer resolves which shard owns a *plaintext*
        fragment root through this map (encrypted roots resolve through
        the block table instead).  Rebuilt by callers on epoch change —
        updates add and remove entries.
        """
        lows: dict[int, float] = {}
        for entry in self.entries:
            node = entry.hosted_node
            if node is not None:
                lows[node.node_id] = entry.interval.low
        return lows


def build_structural_index(
    document: Document,
    intervals: dict[int, Interval],
    block_root_ids: frozenset[int],
    block_ids: dict[int, int],
    encode_tag: Callable[[str], str],
) -> StructuralIndex:
    """Build the DSI index table and encryption block table.

    ``block_ids`` maps block-root node ids to block ids.  ``encode_tag``
    is the client's deterministic Vernam tag cipher; it is applied to the
    tags of nodes that live inside an encryption block (the server must
    not learn those), while plaintext nodes keep their clear tags
    (Figure 4b shows both kinds side by side).
    """
    owning_block = _owning_blocks(document, block_root_ids, block_ids)

    table: dict[str, list[IndexEntry]] = {}
    entries: list[IndexEntry] = []

    def add_entry(
        key: str, interval: Interval, members: tuple[int, ...], block: Optional[int]
    ) -> None:
        entry = IndexEntry(key, interval, members, block)
        table.setdefault(key, []).append(entry)
        entries.append(entry)

    # Walk parents and emit entries, grouping adjacent same-tag element
    # children that live in the same block (§5.1.1's grouping rule).
    root = document.root
    root_block = owning_block.get(root.node_id)
    add_entry(
        _key_for(root.tag, root_block, encode_tag),
        intervals[root.node_id],
        (root.node_id,),
        root_block,
    )
    stack: list[Element] = [root]
    while stack:
        parent = stack.pop()
        for attribute in parent.attributes:
            block = owning_block.get(attribute.node_id)
            add_entry(
                _key_for(f"@{attribute.name}", block, encode_tag),
                intervals[attribute.node_id],
                (attribute.node_id,),
                block,
            )
        run: list[Element] = []

        def flush_run() -> None:
            if not run:
                return
            block = owning_block.get(run[0].node_id)
            merged = Interval(
                intervals[run[0].node_id].low,
                intervals[run[-1].node_id].high,
            )
            add_entry(
                _key_for(run[0].tag, block, encode_tag),
                merged,
                tuple(node.node_id for node in run),
                block,
            )
            run.clear()

        for child in parent.children:
            if not isinstance(child, Element):
                continue
            stack.append(child)
            if run and _can_group(run[-1], child, owning_block):
                run.append(child)
                continue
            flush_run()
            run.append(child)
        flush_run()

    entries.sort(key=lambda entry: (entry.interval.low, -entry.interval.high))
    for key_entries in table.values():
        key_entries.sort(key=lambda entry: entry.interval.low)
    _link_parents(entries)

    block_table = {
        block_ids[root_id]: intervals[root_id] for root_id in block_root_ids
    }
    return StructuralIndex(table=table, block_table=block_table, entries=entries)


def _owning_blocks(
    document: Document,
    block_root_ids: frozenset[int],
    block_ids: dict[int, int],
) -> dict[int, int]:
    """node_id → block id for every node at or below a block root."""
    owning: dict[int, int] = {}
    for root_id in block_root_ids:
        root = document.node_by_id(root_id)
        block = block_ids[root_id]
        assert isinstance(root, Element)
        for node in root.iter():
            owning[node.node_id] = block
            if isinstance(node, Element):
                for attribute in node.attributes:
                    owning[attribute.node_id] = block
    return owning


def _key_for(
    tag: str, block: Optional[int], encode_tag: Callable[[str], str]
) -> str:
    """Plaintext tag outside blocks; Vernam token inside."""
    if block is None:
        return tag
    return encode_tag(tag)


def _can_group(
    previous: Element, current: Element, owning_block: dict[int, int]
) -> bool:
    """Adjacent same-tag siblings, both encrypted in the same block."""
    if previous.tag != current.tag:
        return False
    prev_block = owning_block.get(previous.node_id)
    curr_block = owning_block.get(current.node_id)
    return prev_block is not None and prev_block == curr_block


def _link_parents(sorted_entries: list[IndexEntry]) -> None:
    """Single stack sweep computing immediate-parent pointers.

    The entries form a laminar family (nested or disjoint), so after
    sorting by low bound the nearest open enclosing interval is the parent.
    This materializes the paper's derived child axis:
    ``child(x, y) ⇔ desc(x, y) ∧ ¬∃z: desc(x, z) ∧ desc(z, y)``.
    """
    stack: list[IndexEntry] = []
    for entry in sorted_entries:
        while stack and not stack[-1].interval.contains(entry.interval):
            stack.pop()
        if stack:
            entry.parent = stack[-1]
            stack[-1].children.append(entry)
        stack.append(entry)
