"""The client's key hierarchy.

The data owner holds a single master secret; every other key in the system —
block-encryption keys, the tag cipher key, the OPE key, the per-field OPESS
splitting/scaling seeds, the DSI weight stream and the decoy stream — is
derived from it with the HKDF-style labelled derivation in
:mod:`repro.crypto.hmac`.  Nothing derived here ever leaves the client;
the server sees only ciphertexts and metadata.

Determinism matters: hosting the same database twice with the same master
key produces byte-identical ciphertext and metadata, which the test suite
exploits, and which models the paper's setting where the client can always
re-derive "the same keys used for the construction of the DSI index table"
(§6.1) at query-translation time.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, ReferenceAES128, aes128_for_key
from repro.crypto.hmac import derive_key, hmac_sha256_fast
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.prf import DeterministicRandom, PRF
from repro.crypto.vernam import DeterministicTagCipher


class ClientKeyring:
    """All client-side secrets, derived from one master key."""

    def __init__(self, master_key: bytes, fast_aes: bool = True) -> None:
        if len(master_key) < 16:
            raise ValueError("master key must be at least 16 bytes")
        self._master = bytes(master_key)
        self._fast_aes = fast_aes
        self._tag_cipher: DeterministicTagCipher | None = None
        self._ope: OrderPreservingEncryption | None = None
        self._block_cipher: AES128 | None = None
        self._block_ivs: dict[int, bytes] = {}
        self._block_mac_key: bytes | None = None

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "ClientKeyring":
        """Derive a keyring from a human passphrase (demo convenience)."""
        return cls(derive_key(passphrase.encode("utf-8"), "master"))

    # ------------------------------------------------------------------
    # Ciphers
    # ------------------------------------------------------------------
    @property
    def block_cipher(self) -> AES128:
        """AES instance for encryption-block payloads.

        The fast path goes through the process-wide keyed cipher cache,
        so every keyring derived from the same master key shares one
        cipher object and its one key expansion.  ``fast_aes=False``
        (benchmark baseline) builds a private spec-path cipher instead.
        """
        if self._block_cipher is None:
            key = derive_key(self._master, "block")[:16]
            self._block_cipher = (
                aes128_for_key(key) if self._fast_aes else ReferenceAES128(key)
            )
        return self._block_cipher

    def block_key_bytes(self) -> bytes:
        """Raw AES key for block payloads (client-side use only).

        Exists for the process-backed worker pool: a child process cannot
        pickle a live cipher object, so the client hands each bulk
        decryption task the key material instead and the worker rebuilds
        the (process-wide cached) cipher from it.  Never sent anywhere.
        """
        return derive_key(self._master, "block")[:16]

    def block_iv(self, block_id: int) -> bytes:
        """Deterministic per-block CBC IV.

        Memoized: the HMAC derivation runs over a from-scratch SHA-256
        and would otherwise rival the block decryption itself in cost
        when the same blocks are fetched repeatedly.
        """
        cached = self._block_ivs.get(block_id)
        if cached is None:
            cached = derive_key(self._master, "block-iv", str(block_id))[:16]
            self._block_ivs[block_id] = cached
        return cached

    def flush_memoized(self) -> None:
        """Drop the memoized per-block IVs (and lazily rebuilt ciphers).

        The IVs are pure functions of the master key, so keeping them is
        always *correct* — but ``flush_caches()`` promises a genuinely
        cold warm-path measurement, and a warm IV memo was quietly
        exempting the HMAC derivations from that promise.
        """
        self._block_ivs.clear()
        self._block_cipher = None

    @property
    def tag_cipher(self) -> DeterministicTagCipher:
        """The Vernam-style tag cipher shared by index build and translation."""
        if self._tag_cipher is None:
            self._tag_cipher = DeterministicTagCipher(
                derive_key(self._master, "tags")
            )
        return self._tag_cipher

    @property
    def ope(self) -> OrderPreservingEncryption:
        """The order-preserving encryption function used by OPESS."""
        if self._ope is None:
            self._ope = OrderPreservingEncryption(derive_key(self._master, "ope"))
        return self._ope

    # ------------------------------------------------------------------
    # Integrity keys (untrusted-server hardening)
    # ------------------------------------------------------------------
    @property
    def block_mac_key(self) -> bytes:
        """MAC key for encryption-block tags.  **Never** given to the server."""
        if self._block_mac_key is None:
            self._block_mac_key = derive_key(self._master, "block-mac")
        return self._block_mac_key

    def block_tag(self, block_id: int, payload: bytes) -> bytes:
        """Encrypt-then-MAC tag binding a ciphertext payload to its block id.

        Computed by the client at hosting/update time and stored with the
        server's metadata; the server cannot forge a tag for a modified
        (or swapped) payload because it never holds :attr:`block_mac_key`.
        """
        return hmac_sha256_fast(
            self.block_mac_key, block_id.to_bytes(8, "big") + payload
        )

    def session_keys(self) -> "tuple[bytes, bytes]":
        """(request, response) MAC keys for the wire envelope.

        Both are shared with the server at hosting time — they model the
        authenticated session a real deployment would establish — so they
        defend against *wire* tampering, while :meth:`block_tag` defends
        against the server itself.
        """
        return (
            derive_key(self._master, "request-mac"),
            derive_key(self._master, "response-mac"),
        )

    # ------------------------------------------------------------------
    # Deterministic randomness streams
    # ------------------------------------------------------------------
    def dsi_weight_stream(self) -> DeterministicRandom:
        """Stream of DSI gap weights w1, w2 ∈ (0, 0.5) (§5.1)."""
        return DeterministicRandom(derive_key(self._master, "dsi-weights"))

    def decoy_stream(self) -> DeterministicRandom:
        """Stream of random decoy values (§4.1)."""
        return DeterministicRandom(derive_key(self._master, "decoys"))

    def opess_stream(self, field: str) -> DeterministicRandom:
        """Per-field stream for OPESS splitting weights and scale factors."""
        return DeterministicRandom(derive_key(self._master, "opess", field))

    def field_prf(self, field: str) -> PRF:
        """Per-field PRF (used to pick key indices for split chunks)."""
        return PRF(derive_key(self._master, "field-prf", field))
