"""Per-query plan selection: twig lowering, axis engine, or residual.

Every parseable query gets a server-side plan — the naive client-only
protocol is no longer reachable from the planner:

``twig``
    The paper's original fragment (downward axes, existence/value
    predicates).  Uses :func:`repro.xpath.compiler.compile_pattern`
    unchanged, byte-for-byte the legacy plan, including the legacy
    single-ship-node rule.

``axis``
    Anything the twig compiler rejects but a generalized pattern can
    express: reverse axes, order axes, positional predicates, named
    descendant-or-self, relative-shaped predicate branches over those.
    Uses :func:`repro.xpath.axes.compile_axis_pattern`, which also
    computes the multi-node ship set.

``residual``
    Degenerate shapes with no pattern anchor (relative paths, reverse
    axes from the document node, absolute predicate paths, positional
    predicates on escaping branches, the namespace axis).  The server
    ships the document root fragment through the sealed wire and the
    client evaluates the original query over it — typed and counted,
    never :class:`~repro.xpath.compiler.UnsupportedQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.xpath import ast
from repro.xpath.axes import (
    ResidualRequired,
    compile_axis_pattern,
    residual_pattern,
)
from repro.xpath.compiler import (
    PatternNode,
    PatternTree,
    UnsupportedQuery,
    compile_pattern,
)
from repro.xpath.parser import parse_xpath


@dataclass
class QueryPlan:
    """A chosen lowering for one query."""

    kind: str  # "twig" | "axis" | "residual"
    pattern: PatternTree
    #: why the previous tier was rejected (None for twig plans)
    reason: Optional[str] = None


def plan_query(path: ast.LocationPath) -> QueryPlan:
    """Pick the cheapest lowering that still answers exactly."""
    try:
        return QueryPlan(kind="twig", pattern=compile_pattern(path))
    except UnsupportedQuery as twig_reason:
        try:
            return QueryPlan(
                kind="axis",
                pattern=compile_axis_pattern(path),
                reason=str(twig_reason),
            )
        except ResidualRequired as residual_reason:
            return QueryPlan(
                kind="residual",
                pattern=residual_pattern(),
                reason=str(residual_reason),
            )


def plan_for(xpath: str) -> QueryPlan:
    """Parse-and-plan convenience used by the CLI and tests."""
    return plan_query(parse_xpath(xpath))


def explain_plan(xpath: str) -> str:
    """Human-readable plan rendering (no server round-trip).

    Reuses the pattern nodes' ``__str__`` and annotates ship-set and
    positional markers, e.g.::

        plan: axis (axis 'ancestor' is not server-evaluable)
        root-descendant::b [ship]
          ancestor::x *OUT* [ship]
    """
    try:
        plan = plan_for(xpath)
    except ValueError as exc:  # syntax errors included
        return f"query: {xpath}\nplan: unplannable ({exc})"
    lines = [f"query: {xpath}", f"plan: {plan.kind}"]
    if plan.reason:
        lines[-1] += f" ({plan.reason})"
    ship_ids = {id(n) for n in _ship_nodes(plan.pattern)}
    for root in plan.pattern.roots:
        _render(root, 0, ship_ids, lines)
    return "\n".join(lines)


def _ship_nodes(pattern: PatternTree) -> list[PatternNode]:
    if pattern.ship_roots is not None:
        return pattern.ship_roots
    # Legacy single-ship selection lives in the translator; re-derive it
    # lazily to avoid importing core from the pure xpath layer.
    from repro.core.translate import _ship_node

    return [_ship_node(pattern)]


def _render(
    node: PatternNode,
    depth: int,
    ship_ids: set[int],
    lines: list[str],
) -> None:
    marks = ""
    if id(node) in ship_ids:
        marks += " [ship]"
    if node.position_sensitive:
        marks += " [positional]"
    lines.append(f"{'  ' * depth}{node}{marks}")
    for child in node.children:
        _render(child, depth + 1, ship_ids, lines)
