"""End-to-end secure XML database system (Figure 1).

:class:`SecureXMLSystem` wires the pieces together: hosting (scheme
construction + encryption + metadata), query translation, server
evaluation, the modelled network channel, and client post-processing.
Every query returns the exact answer plus a :class:`QueryTrace` recording
the per-stage costs that the paper's evaluation (Fig. 9, §7.2, §7.3)
breaks out: translation time on both sides, query processing time on the
server, transfer size/time, decryption time and post-processing time on
the client.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.core.client import Client, QueryAnswer
from repro.core.constraints import SecurityConstraint
from repro.core.encryptor import HostedDatabase, host_database
from repro.core.scheme import EncryptionScheme, build_scheme
from repro.core.server import Server, ServerResponse
from repro.crypto.keyring import ClientKeyring
from repro.netsim.channel import Channel
from repro.xmldb.node import Document
from repro.xpath.compiler import UnsupportedQuery

_DEFAULT_MASTER_KEY = b"repro-demo-master-key-0123456789"


@dataclass
class QueryTrace:
    """Per-stage cost breakdown for one query (the Fig. 9 quantities)."""

    query: str
    naive: bool = False
    translate_client_s: float = 0.0
    server_s: float = 0.0
    transfer_bytes: int = 0
    transfer_s: float = 0.0
    decrypt_client_s: float = 0.0
    postprocess_client_s: float = 0.0
    blocks_returned: int = 0
    fragments_returned: int = 0
    answer_count: int = 0
    candidate_counts: dict[str, int] = dataclass_field(default_factory=dict)

    @property
    def client_s(self) -> float:
        """Total client-side time (translate + decrypt + post-process)."""
        return (
            self.translate_client_s
            + self.decrypt_client_s
            + self.postprocess_client_s
        )

    @property
    def total_s(self) -> float:
        """End-to-end query time including modelled wire time."""
        return self.client_s + self.server_s + self.transfer_s

    def as_row(self) -> dict[str, object]:
        """Flat dict for benchmark tables."""
        return {
            "query": self.query,
            "naive": self.naive,
            "t_translate": self.translate_client_s,
            "t_server": self.server_s,
            "t_transfer": self.transfer_s,
            "t_decrypt": self.decrypt_client_s,
            "t_post": self.postprocess_client_s,
            "t_total": self.total_s,
            "bytes": self.transfer_bytes,
            "blocks": self.blocks_returned,
            "answers": self.answer_count,
        }


@dataclass
class HostingTrace:
    """Costs of the hosting step (the §7.4 quantities)."""

    scheme_kind: str
    scheme_size_nodes: int
    block_count: int
    encrypt_s: float
    hosted_bytes: int
    plaintext_bytes: int
    decoy_count: int
    index_entries: int
    value_index_entries: int


class SecureXMLSystem:
    """A hosted database plus its owner: the complete Figure 1 pipeline."""

    def __init__(
        self,
        client: Client,
        server: Server,
        hosted: HostedDatabase,
        scheme: EncryptionScheme,
        channel: Channel,
        hosting_trace: HostingTrace,
        keyring: ClientKeyring,
        fast_path: bool = True,
    ) -> None:
        self.client = client
        self.server = server
        self.hosted = hosted
        self.scheme = scheme
        self.channel = channel
        self.hosting_trace = hosting_trace
        self.last_trace: QueryTrace | None = None
        self.last_batch_traces: list[QueryTrace] = []
        self._keyring = keyring
        self._fast_path = fast_path

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    @classmethod
    def host(
        cls,
        document: Document,
        constraints: list[SecurityConstraint],
        scheme: "str | EncryptionScheme" = "opt",
        master_key: bytes = _DEFAULT_MASTER_KEY,
        channel: Channel | None = None,
        secure: bool = True,
        fast_path: bool = True,
    ) -> "SecureXMLSystem":
        """Encrypt ``document`` under the given scheme and stand up a system.

        ``scheme`` may be one of the §7.1 kinds (``"opt"``, ``"app"``,
        ``"sub"``, ``"top"``), the §4.1 strawman ``"leaf"``, or a prebuilt
        :class:`EncryptionScheme`.  ``secure=False`` hosts without decoys
        and with deterministic block encryption — insecure by design, for
        the attack demonstrations only.  ``fast_path=False`` disables the
        T-table AES and every query cache (seed-equivalent behaviour,
        kept as the baseline for the hot-path benchmarks); the hosted
        bytes are identical either way.
        """
        from repro.xmldb.serializer import serialize

        if isinstance(scheme, str):
            scheme_obj = build_scheme(document, constraints, scheme)
        else:
            scheme_obj = scheme
        keyring = ClientKeyring(master_key, fast_aes=fast_path)

        started = time.perf_counter()
        hosted = host_database(document, scheme_obj, keyring, secure=secure)
        encrypt_seconds = time.perf_counter() - started

        hosting_trace = HostingTrace(
            scheme_kind=scheme_obj.kind,
            scheme_size_nodes=scheme_obj.size(document),
            block_count=hosted.block_count(),
            encrypt_s=encrypt_seconds,
            hosted_bytes=hosted.hosted_size_bytes(),
            plaintext_bytes=len(serialize(document).encode("utf-8")),
            decoy_count=hosted.decoy_count,
            index_entries=len(hosted.structural_index.all_entries()),
            value_index_entries=hosted.value_index.total_entries(),
        )
        return cls(
            client=Client(keyring, hosted, enable_cache=fast_path),
            server=Server(hosted, enable_cache=fast_path),
            hosted=hosted,
            scheme=scheme_obj,
            channel=channel or Channel(),
            hosting_trace=hosting_trace,
            keyring=keyring,
            fast_path=fast_path,
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, xpath: str) -> QueryAnswer:
        """Answer a query through the secure pipeline; trace in last_trace.

        Queries outside the server-evaluable fragment transparently fall
        back to the naive protocol (still exact, just unpruned).
        """
        trace = QueryTrace(query=xpath)

        started = time.perf_counter()
        try:
            translated = self.client.translate(xpath)
        except UnsupportedQuery:
            translated = None
        trace.translate_client_s = time.perf_counter() - started

        if translated is None:
            return self._finish_naive(xpath, trace)

        trace.transfer_s += self.channel.send(
            "client->server", "query", translated.wire_size()
        )

        started = time.perf_counter()
        response = self.server.answer(translated)
        trace.server_s = time.perf_counter() - started
        trace.candidate_counts = response.candidate_counts

        return self._finish(xpath, response, trace)

    def execute_many(self, xpaths: list[str]) -> list[QueryAnswer]:
        """Answer a batch of queries through the secure pipeline.

        The batched entry point is where the hot-path caches pay off:
        within one batch (and across batches on the same system),
        repeated XPath strings reuse translated plans, repeated ship
        nodes reuse serialized fragments, and repeated blocks skip
        decryption entirely.  Per-query traces for the whole batch are
        kept in :attr:`last_batch_traces`, in input order (``last_trace``
        ends up holding the final query's trace, as with single
        :meth:`query` calls).
        """
        answers: list[QueryAnswer] = []
        traces: list[QueryTrace] = []
        for xpath in xpaths:
            answers.append(self.query(xpath))
            assert self.last_trace is not None
            traces.append(self.last_trace)
        self.last_batch_traces = traces
        return answers

    def aggregate(
        self, xpath: str, func: str, mode: str = "exact"
    ):
        """Aggregate the values selected by ``xpath`` (§6.4).

        ``mode="exact"`` runs the secure pipeline and folds the plaintext
        answers client-side — always correct, required for COUNT/SUM/AVG
        (splitting and scaling make them unevaluable server-side, as the
        paper notes).

        ``mode="server"`` (min/max only) performs the paper's
        no-decryption protocol: the server folds over the B-tree value
        index restricted to the structurally matched blocks and returns a
        single extreme ciphertext, which the client inverts through its
        OPE key.  Exact at per-node block granularity; at coarser
        granularities it may see unmatched occurrences sharing a matched
        block (the design's inherent caveat — see
        :mod:`repro.core.aggregates`).
        """
        from repro.core.aggregates import (
            combine_min_max,
            fold_exact,
            server_min_max,
        )

        if mode == "exact":
            answer = self.query(xpath)
            if func == "count":
                # COUNT counts answer *nodes* (XPath semantics), not leaf
                # values — internal elements count too.
                return len(answer)
            return fold_exact(answer.values(), func)
        if mode != "server":
            raise ValueError(f"unknown aggregation mode {mode!r}")
        if func not in ("min", "max"):
            raise ValueError(
                "server-side aggregation supports only min/max; "
                f"{func!r} requires decryption (use mode='exact')"
            )
        translated = self.client.translate(xpath)
        reply = server_min_max(
            translated,
            self.hosted.structural_index,
            self.hosted.value_index,
            func,
        )
        field = _output_field(xpath)
        plan = self.hosted.field_plans.get(field) if field else None
        return combine_min_max(reply, plan, self._keyring.ope, func)

    # ------------------------------------------------------------------
    # Incremental updates (extension; paper §8 item 3)
    # ------------------------------------------------------------------
    def insert_element(self, parent_xpath: str, tag: str, value: str) -> None:
        """Insert ``<tag>value</tag>`` under the unique match of the path.

        New leaves of sensitive tags become their own encryption blocks
        (with decoys, fresh DSI interval drawn in the parent's gap, and a
        field-granular OPESS/B-tree rebuild); other tags stay plaintext.
        See :mod:`repro.core.updates` for scope and the security caveat.
        """
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(parent_xpath))
        engine.insert_element(entry, tag, value)
        self._refresh_client()

    def delete_element(self, xpath: str) -> None:
        """Delete the unique subtree matched by ``xpath``."""
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(xpath))
        engine.delete_element(entry)
        self._refresh_client()

    def update_value(self, xpath: str, new_value: str) -> None:
        """Rewrite the value of the unique leaf matched by ``xpath``."""
        from repro.core.updates import UpdateEngine

        engine = UpdateEngine(self.hosted, self._keyring)
        entry = engine.resolve_single(self.client.translate(xpath))
        engine.update_value(entry, new_value)
        self._refresh_client()

    def _refresh_client(self) -> None:
        """Rebuild the client translator after hosted-state mutation."""
        self.client = Client(
            self._keyring, self.hosted, enable_cache=self._fast_path
        )

    def naive_query(self, xpath: str) -> QueryAnswer:
        """Answer a query with the §7.3 naive baseline (ship everything)."""
        trace = QueryTrace(query=xpath)
        return self._finish_naive(xpath, trace)

    def _finish_naive(self, xpath: str, trace: QueryTrace) -> QueryAnswer:
        trace.naive = True
        trace.transfer_s += self.channel.send(
            "client->server", "query", len(xpath.encode("utf-8"))
        )
        started = time.perf_counter()
        response = self.server.ship_all()
        trace.server_s = time.perf_counter() - started
        return self._finish(xpath, response, trace)

    def _finish(
        self, xpath: str, response: ServerResponse, trace: QueryTrace
    ) -> QueryAnswer:
        trace.blocks_returned = response.blocks_shipped
        trace.fragments_returned = len(response.fragments)
        trace.transfer_bytes = response.size_bytes()
        trace.transfer_s += self.channel.send(
            "server->client", "answer", trace.transfer_bytes
        )

        started = time.perf_counter()
        decrypted = self.client.decrypt_fragments(response)
        trace.decrypt_client_s = time.perf_counter() - started

        started = time.perf_counter()
        pruned = self.client.assemble(decrypted)
        answer = self.client.post_process(xpath, pruned)
        trace.postprocess_client_s = time.perf_counter() - started

        trace.answer_count = len(answer)
        self.last_trace = trace
        return answer


def _output_field(xpath: str) -> Optional[str]:
    """Field name of a query's output node (tag or ``@name``), if any."""
    from repro.xpath import ast
    from repro.xpath.parser import parse_xpath

    path = parse_xpath(xpath)
    for step in reversed(path.steps):
        if step.axis == ast.AXIS_ATTRIBUTE:
            return f"@{step.test.name}"
        if step.axis in (ast.AXIS_SELF,):
            continue
        if step.test.is_wildcard:
            return None
        return step.test.name
    return None
