"""Tests for the AES-128 block cipher and modes of operation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, _build_sbox, _gf_inverse, _gf_multiply
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    pkcs7_pad,
    pkcs7_unpad,
)

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class TestGaloisField:
    def test_multiplication_examples(self):
        # Worked examples from FIPS-197 §4.2.
        assert _gf_multiply(0x57, 0x83) == 0xC1
        assert _gf_multiply(0x57, 0x13) == 0xFE

    def test_multiplicative_identity(self):
        for value in range(256):
            assert _gf_multiply(value, 1) == value

    def test_inverse_property(self):
        for value in range(1, 256):
            assert _gf_multiply(value, _gf_inverse(value)) == 1

    def test_sbox_known_entries(self):
        sbox, inv = _build_sbox()
        assert sbox[0x00] == 0x63
        assert sbox[0x53] == 0xED
        assert inv[0x63] == 0x00

    def test_sbox_is_permutation(self):
        sbox, inv = _build_sbox()
        assert sorted(sbox) == list(range(256))
        for value in range(256):
            assert inv[sbox[value]] == value


class TestAESBlock:
    def test_fips197_appendix_c_vector(self):
        cipher = AES128(KEY)
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        ciphertext = cipher.encrypt_block(plaintext)
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert cipher.decrypt_block(ciphertext) == plaintext

    def test_fips197_appendix_b_vector(self):
        cipher = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert cipher.encrypt_block(plaintext).hex() == (
            "3925841d02dc09fbdc118597196a0b32"
        )

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, block):
        cipher = AES128(KEY)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_key_size_enforced(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_block_size_enforced(self):
        cipher = AES128(KEY)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    def test_different_keys_differ(self):
        block = b"\x00" * 16
        assert AES128(KEY).encrypt_block(block) != AES128(
            bytes(16)
        ).encrypt_block(block)


class TestPKCS7:
    def test_pad_lengths(self):
        assert len(pkcs7_pad(b"")) == 16
        assert len(pkcs7_pad(b"x" * 15)) == 16
        assert len(pkcs7_pad(b"x" * 16)) == 32  # always at least one byte

    @given(st.binary(max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_corrupt_padding_rejected(self):
        padded = bytearray(pkcs7_pad(b"hello"))
        padded[-1] = 0
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded))
        padded[-1] = 17
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded))

    def test_inconsistent_padding_bytes_rejected(self):
        padded = bytearray(pkcs7_pad(b"hello"))
        padded[-2] ^= 0xFF
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded))

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")


class TestCBC:
    @given(st.binary(max_size=300), st.binary(min_size=16, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, plaintext, iv):
        cipher = AES128(KEY)
        ciphertext = cbc_encrypt(cipher, iv, plaintext)
        assert cbc_decrypt(cipher, iv, ciphertext) == plaintext

    def test_equal_plaintexts_differ_under_different_ivs(self):
        cipher = AES128(KEY)
        data = b"the same subtree bytes"
        first = cbc_encrypt(cipher, b"\x01" * 16, data)
        second = cbc_encrypt(cipher, b"\x02" * 16, data)
        assert first != second

    def test_ciphertext_is_block_aligned(self):
        cipher = AES128(KEY)
        ciphertext = cbc_encrypt(cipher, bytes(16), b"xyz")
        assert len(ciphertext) % 16 == 0

    def test_iv_length_enforced(self):
        cipher = AES128(KEY)
        with pytest.raises(ValueError):
            cbc_encrypt(cipher, b"short", b"data")
        with pytest.raises(ValueError):
            cbc_decrypt(cipher, b"short", bytes(16))

    def test_unaligned_ciphertext_rejected(self):
        cipher = AES128(KEY)
        with pytest.raises(ValueError):
            cbc_decrypt(cipher, bytes(16), b"x" * 15)


class TestCTR:
    @given(st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_involution(self, data):
        cipher = AES128(KEY)
        nonce = b"\x07" * 8
        assert ctr_transform(
            cipher, nonce, ctr_transform(cipher, nonce, data)
        ) == data

    def test_nonce_length_enforced(self):
        with pytest.raises(ValueError):
            ctr_transform(AES128(KEY), b"bad", b"data")

    def test_length_preserved(self):
        cipher = AES128(KEY)
        assert len(ctr_transform(cipher, b"\x00" * 8, b"x" * 33)) == 33
