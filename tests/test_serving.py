"""The serving layer: framing, sockets, tenants, backpressure, drain.

The headline invariant: a :func:`~repro.serving.client.remote_system`
is indistinguishable from its in-process twin — byte-identical answers
on every path (serial, streamed/parallel, naive, cluster), the same
typed errors, and updates that commit through the same freshness
anchor.  Around it, the serving-native machinery: length-prefixed
framing, request multiplexing over one connection, admission control
with typed backpressure, and graceful drain with durable persistence.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.core.storage import load_system
from repro.core.system import SecureXMLSystem, _DEFAULT_MASTER_KEY
from repro.obs import Observability
from repro.perf import counters
from repro.serving import (
    BackpressureRejected,
    ConnectionClosedError,
    FrameError,
    ProtocolError,
    RemoteServerError,
    RequestTimeoutError,
    ServerDraining,
    ServingConnection,
    ServingServer,
    UnknownTenantError,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
    remote_system,
    run_load,
)
from repro.serving.framing import OP_FLUSH, OP_QUERY, OP_STATS, OP_UPDATE
from repro.serving.server import ReadWriteLock

QUERIES = (
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
    "//SSN",
)
PROBE = "//patient[pname='Betty']/SSN"


@pytest.fixture
def local(healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(healthcare_doc, healthcare_scs, scheme="opt")


@pytest.fixture
def served(local):
    server = ServingServer(max_inflight=16)
    server.register_tenant("t0", local)
    address = server.start()
    yield server, address, local
    server.stop()


@pytest.fixture
def reference(healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(healthcare_doc, healthcare_scs, scheme="opt")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(7, OP_QUERY, b"payload-bytes")
        (rid, op, payload), rest = decode_frame(frame + b"tail")
        assert (rid, op, payload) == (7, OP_QUERY, b"payload-bytes")
        assert rest == b"tail"

    def test_empty_payload(self):
        frame = encode_frame(1, OP_STATS, b"")
        (rid, op, payload), rest = decode_frame(frame)
        assert (rid, op, payload) == (1, OP_STATS, b"")
        assert rest == b""

    def test_partial_frame_raises_closed(self):
        frame = encode_frame(1, OP_QUERY, b"x" * 100)
        for cut in (0, 3, 10, len(frame) - 1):
            with pytest.raises(ConnectionClosedError):
                decode_frame(frame[:cut])

    def test_oversized_frame_rejected(self):
        from repro.serving.framing import MAX_FRAME_BYTES

        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FrameError):
            decode_frame(header + b"\x00" * 16)

    def test_request_id_range(self):
        frame = encode_frame(2**63, OP_QUERY, b"")
        (rid, _, _), _ = decode_frame(frame)
        assert rid == 2**63


class TestErrorCodec:
    def test_registered_roundtrip(self):
        for exc in (
            BackpressureRejected("queue full"),
            ServerDraining("draining"),
            UnknownTenantError("nope"),
        ):
            decoded = decode_error(encode_error(exc))
            assert type(decoded) is type(exc)
            assert str(decoded) == str(exc)

    def test_subclass_travels_as_registered_base(self):
        from repro.cluster.replication import ClusterDegradedError
        from repro.core.system import QueryFailedError

        decoded = decode_error(encode_error(ClusterDegradedError("s0 down")))
        assert type(decoded) is QueryFailedError
        assert "s0 down" in str(decoded)

    def test_unregistered_type_is_untyped_remote_error(self):
        decoded = decode_error(encode_error(ZeroDivisionError("boom")))
        assert type(decoded) is RemoteServerError

    def test_undecodable_frame(self):
        assert isinstance(decode_error(b"\xff\xfe not json"), ProtocolError)


# ----------------------------------------------------------------------
# Remote byte-identity (the tentpole invariant)
# ----------------------------------------------------------------------
class TestRemoteByteIdentity:
    def test_serial_answers_identical(self, served, reference):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            for query in QUERIES:
                assert (
                    remote.query(query).canonical()
                    == reference.query(query).canonical()
                ), query
        finally:
            remote.close()

    def test_streamed_answers_identical(self, served, reference):
        """parallel=2 exercises OP_QUERY_STREAM chunk framing end to end."""
        _, address, local = served
        remote = remote_system(local, address, "t0", parallel=2)
        try:
            for query in QUERIES:
                assert (
                    remote.query(query).canonical()
                    == reference.query(query).canonical()
                ), query
        finally:
            remote.close()

    def test_naive_path_identical(self, served, reference):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            assert (
                remote.naive_query(PROBE).canonical()
                == reference.naive_query(PROBE).canonical()
            )
            assert remote.last_trace.naive
        finally:
            remote.close()

    def test_unknown_tenant_rejected_at_handshake(self, served):
        _, (host, port), _ = served
        with pytest.raises(UnknownTenantError):
            ServingConnection(host, port, "no-such-tenant")

    def test_hello_reports_session_parameters(self, served, local):
        _, address, _ = served
        remote = remote_system(local, address, "t0")
        try:
            hello = remote._connection.hello
            assert hello["tenant"] == "t0"
            assert hello["protocol"] == 1
            assert hello["backend"] == local.backend
            assert hello["epoch"] == local.hosted.epoch
        finally:
            remote.close()


class TestRemoteUpdates:
    def test_update_value_commits_and_serves_fresh(self, served):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            epoch_before = local.hosted.epoch
            remote.update_value(PROBE, "987654")
            assert local.hosted.epoch == epoch_before + 1
            assert remote.query(PROBE).values() == ["987654"]
        finally:
            remote.close()

    def test_insert_and_delete_round_trip(self, served):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            remote.insert_element(
                "//patient[pname='Matt']", "phone", "555-1234"
            )
            assert remote.query(
                "//patient[pname='Matt']/phone"
            ).values() == ["555-1234"]
            remote.delete_element("//patient[pname='Matt']/phone")
            assert len(remote.query("//patient[pname='Matt']/phone")) == 0
        finally:
            remote.close()

    def test_post_update_answers_match_inprocess(
        self, served, healthcare_doc, healthcare_scs
    ):
        _, address, local = served
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        remote = remote_system(local, address, "t0")
        try:
            remote.update_value(PROBE, "424242")
            reference.update_value(PROBE, "424242")
            for query in QUERIES:
                assert (
                    remote.query(query).canonical()
                    == reference.query(query).canonical()
                ), query
        finally:
            remote.close()

    def test_remote_close_is_idempotent(self, served):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        remote.close()
        remote.close()


# ----------------------------------------------------------------------
# Multiplexing: many in-flight requests per connection
# ----------------------------------------------------------------------
class TestMultiplexing:
    def test_interleaved_requests_on_one_connection(self, served, local):
        """Issue every query concurrently over a single connection and
        check each response demultiplexes back to its own request."""
        from repro.core.client import Client
        from repro.serving.client import AsyncServingClient

        _, (host, port), _ = served
        sealer = Client(local.keyring, local.hosted, enable_cache=True)
        expected = {
            query: local.query(query).canonical() for query in QUERIES
        }

        async def drive():
            conn = await AsyncServingClient.open(host, port, "t0")
            try:
                async def one(query):
                    blob = sealer.seal_request(
                        sealer.translate(query), cache_key=query
                    )
                    sealed = await conn.call(OP_QUERY, blob)
                    return query, sealer.open_response(sealed)
                pairs = await asyncio.gather(
                    *[one(q) for q in QUERIES for _ in range(3)]
                )
            finally:
                await conn.close()
            return pairs

        for query, response in asyncio.run(drive()):
            answer = local.client.assemble(
                local.client.decrypt_fragments(response)
            )
            del answer  # decode path exercised; identity checked below
            assert response.candidate_counts is not None
        # Cross-check a full pipeline pass per query string.
        remote = remote_system(local, (host, port), "t0")
        try:
            for query in QUERIES:
                assert remote.query(query).canonical() == expected[query]
        finally:
            remote.close()

    def test_loadgen_hammers_one_server(self, served, local):
        _, address, _ = served
        report = run_load(
            address,
            "t0",
            local,
            queries=list(QUERIES[:3]),
            clients=20,
            ops_per_client=4,
            update_ops=[
                {"op": "update_value", "xpath": PROBE, "new_value": "111111"},
                {"op": "update_value", "xpath": PROBE, "new_value": "222222"},
            ],
            update_every=10,
        )
        assert report.failures == 0, report
        assert report.operations == 80
        assert report.updates > 0
        assert report.qps > 0


# ----------------------------------------------------------------------
# Admission control and drain
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_rejects_with_typed_error(self, local):
        server = ServingServer(max_inflight=1)
        session = server.register_tenant("t0", local)
        gate = threading.Event()
        release = threading.Event()
        original = session.query

        def slow_query(blob):
            gate.set()
            assert release.wait(timeout=30)
            return original(blob)

        session.query = slow_query
        host, port = server.start()
        before = counters.snapshot()
        try:
            from repro.core.client import Client
            from repro.serving.client import AsyncServingClient

            sealer = Client(local.keyring, local.hosted, enable_cache=True)
            blob = sealer.seal_request(
                sealer.translate(PROBE), cache_key=PROBE
            )

            async def drive():
                conn = await AsyncServingClient.open(host, port, "t0")
                try:
                    slow = asyncio.ensure_future(conn.call(OP_QUERY, blob))
                    await asyncio.get_running_loop().run_in_executor(
                        None, gate.wait, 30
                    )
                    with pytest.raises(BackpressureRejected):
                        await conn.call(OP_QUERY, blob)
                    release.set()
                    await slow
                finally:
                    await conn.close()

            asyncio.run(drive())
        finally:
            release.set()
            server.stop()
        delta = counters.delta_since(before)
        assert delta.get("backpressure_rejections", 0) >= 1

    def test_backpressure_is_absorbed_by_system_retries(self, local):
        """A remote system never surfaces BackpressureRejected — the
        typed rejection subclasses TransferDropped, so the existing
        retry/backoff loop re-issues and the answer still lands."""
        server = ServingServer(max_inflight=1)
        server.register_tenant("t0", local)
        address = server.start()
        try:
            report = run_load(
                address, "t0", local,
                queries=list(QUERIES[:2]),
                clients=10,
                ops_per_client=3,
            )
            assert report.failures == 0, report
        finally:
            server.stop()


class TestDrain:
    def test_drain_rejects_new_connections(self, served):
        server, (host, port), _ = served
        server.drain()
        with pytest.raises((ServerDraining, ConnectionError, OSError)):
            ServingConnection(host, port, "t0")

    def test_drain_is_idempotent_and_counted(self, served):
        server, _, _ = served
        before = counters.snapshot()
        server.drain()
        server.drain()
        assert counters.delta_since(before).get("serving_drains", 0) == 1

    def test_inflight_request_finishes_during_drain(self, local):
        server = ServingServer(max_inflight=4)
        session = server.register_tenant("t0", local)
        gate = threading.Event()
        release = threading.Event()
        original = session.query

        def slow_query(blob):
            gate.set()
            assert release.wait(timeout=30)
            return original(blob)

        session.query = slow_query
        address = server.start()
        remote = remote_system(local, address, "t0")
        result = {}

        def issue():
            result["answer"] = remote.query(PROBE).canonical()

        worker = threading.Thread(target=issue)
        worker.start()
        assert gate.wait(timeout=30)
        drainer = threading.Thread(target=server.drain)
        drainer.start()
        time.sleep(0.05)  # drain must be blocked on the in-flight request
        assert drainer.is_alive()
        release.set()
        drainer.join(timeout=30)
        worker.join(timeout=30)
        server.stop()
        remote.close()
        assert result["answer"] == local.query(PROBE).canonical()

    def test_drain_flushes_and_persists_storage(
        self, healthcare_doc, healthcare_scs, tmp_path
    ):
        storage = str(tmp_path / "tenant0")
        local = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        server = ServingServer()
        server.register_tenant("t0", local, storage_dir=storage)
        address = server.start()
        remote = remote_system(local, address, "t0")
        remote.update_value(PROBE, "999999")
        server.stop()  # stop() drains first
        remote.close()
        restored = load_system(storage, _DEFAULT_MASTER_KEY)
        assert restored.query(PROBE).values() == ["999999"]
        assert restored.hosted.epoch == local.hosted.epoch


# ----------------------------------------------------------------------
# Multi-tenant isolation and cluster tenants
# ----------------------------------------------------------------------
class TestMultiTenant:
    def test_tenants_are_isolated(
        self, healthcare_doc, healthcare_scs, xmark_doc, xmark_scs
    ):
        health = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        xmark = SecureXMLSystem.host(xmark_doc, xmark_scs, scheme="opt")
        server = ServingServer()
        server.register_tenant("health", health)
        server.register_tenant("xmark", xmark)
        address = server.start()
        try:
            remote_h = remote_system(health, address, "health")
            remote_x = remote_system(xmark, address, "xmark")
            try:
                assert (
                    remote_h.query("//SSN").canonical()
                    == health.query("//SSN").canonical()
                )
                assert (
                    remote_x.query("//person/name").canonical()
                    == xmark.query("//person/name").canonical()
                )
                stats_h = remote_h._connection.stats()
                stats_x = remote_x._connection.stats()
                assert stats_h["tenant"] == "health"
                assert stats_x["tenant"] == "xmark"
                assert stats_h["ops"]["query"] >= 1
            finally:
                remote_h.close()
                remote_x.close()
        finally:
            server.stop()

    def test_duplicate_tenant_id_rejected(self, local):
        server = ServingServer()
        server.register_tenant("t0", local)
        with pytest.raises(ValueError, match="already registered"):
            server.register_tenant("t0", local)

    def test_cluster_tenant_byte_identity(
        self, healthcare_doc, healthcare_scs, reference
    ):
        local = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=3
        )
        server = ServingServer()
        server.register_tenant("c0", local)
        address = server.start()
        remote = remote_system(local, address, "c0")
        try:
            for query in QUERIES:
                assert (
                    remote.query(query).canonical()
                    == reference.query(query).canonical()
                ), query
            assert (
                remote.naive_query(PROBE).canonical()
                == reference.naive_query(PROBE).canonical()
            )
            remote.update_value(PROBE, "555555")
            assert remote.query(PROBE).values() == ["555555"]
        finally:
            remote.close()
            server.stop()
            local.close()


# ----------------------------------------------------------------------
# Serving metrics (satellite: obs integration)
# ----------------------------------------------------------------------
class TestServingMetrics:
    def test_traffic_populates_gauges_and_labeled_counters(self, local):
        obs = Observability()
        server = ServingServer(obs=obs)
        server.register_tenant("t0", local)
        address = server.start()
        remote = remote_system(local, address, "t0")
        try:
            remote.query(PROBE)
            remote.query(PROBE)
        finally:
            remote.close()
            server.stop()
        snapshot = obs.metrics.snapshot()
        assert snapshot["labeled"]["serving_tenant_requests"]['tenant="t0"'] >= 2
        assert snapshot["histograms"]["serving_request_seconds"]["count"] >= 2
        assert snapshot["histograms"]["serving_queue_depth"]["count"] >= 2
        assert "serving_connections" in snapshot["gauges"]
        text = obs.metrics.to_prometheus()
        assert 'repro_serving_tenant_requests_total{tenant="t0"}' in text
        assert "repro_serving_connections" in text


# ----------------------------------------------------------------------
# ReadWriteLock (the tenant-session concurrency primitive)
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(3, timeout=10)

        def reader():
            with lock.read():
                inside.append(1)
                barrier.wait()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(inside) == 3

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        entered = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                entered.set()
                assert release.wait(timeout=10)
                order.append("write")

        def reader():
            with lock.read():
                order.append("read")

        w = threading.Thread(target=writer)
        w.start()
        assert entered.wait(timeout=10)
        r = threading.Thread(target=reader)
        r.start()
        time.sleep(0.05)
        release.set()
        w.join(timeout=10)
        r.join(timeout=10)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer priority: once a writer queues, new readers wait."""
        lock = ReadWriteLock()
        order = []
        first_reader_in = threading.Event()
        first_reader_out = threading.Event()

        def long_reader():
            with lock.read():
                first_reader_in.set()
                assert first_reader_out.wait(timeout=10)
            order.append("r1-out")

        def writer():
            with lock.write():
                order.append("write")

        def late_reader():
            with lock.read():
                order.append("r2")

        r1 = threading.Thread(target=long_reader)
        r1.start()
        assert first_reader_in.wait(timeout=10)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # writer is now waiting on r1
        r2 = threading.Thread(target=late_reader)
        r2.start()
        time.sleep(0.05)
        first_reader_out.set()
        for t in (r1, w, r2):
            t.join(timeout=10)
        assert order.index("write") < order.index("r2")

    def test_release_on_another_thread(self):
        """The streaming path acquires and releases on different pool
        threads; the lock must not assume thread ownership."""
        lock = ReadWriteLock()
        ctx = lock.read()
        t1 = threading.Thread(target=ctx.__enter__)
        t1.start()
        t1.join(timeout=10)
        t2 = threading.Thread(target=ctx.__exit__, args=(None, None, None))
        t2.start()
        t2.join(timeout=10)
        with lock.write():  # would deadlock if the read leaked
            pass


# ----------------------------------------------------------------------
# Bounded freshness window (concurrent-writer serving)
# ----------------------------------------------------------------------
class TestFreshnessWindow:
    """Requests sealed an instant before a concurrent commit stay valid.

    Strict anchor equality is the right rule for one sequential owner,
    but a multi-client front door races writers constantly: every
    commit would invalidate every in-flight seal.  The serving layer
    therefore widens ``Server.freshness_window`` (default 0 = strict
    everywhere in-process), accepting a request within the last N
    commits after re-verifying it against the *authentic* historical
    root recorded for its epoch in ``HostedDatabase.anchor_history``.
    """

    def _sealed_query(self, system, xpath):
        from repro.core.client import Client

        client = Client(system.keyring, system.hosted, enable_cache=False)
        return client.seal_request(client.translate(xpath))

    def test_anchor_history_records_commits(self, local):
        epoch0, root0 = local.hosted.anchor()
        local.update_value(PROBE, "111222")
        epoch1, root1 = local.hosted.anchor()
        assert epoch1 == epoch0 + 1 and root1 != root0
        assert local.hosted.root_at(epoch0) == root0
        assert local.hosted.root_at(epoch1) == root1
        assert local.hosted.root_at(epoch1 + 7) is None

    def test_anchor_history_is_bounded(self, local):
        hosted = local.hosted
        with hosted.anchor_lock:
            for epoch in range(hosted.ANCHOR_HISTORY_LIMIT + 50):
                hosted._record_anchor(epoch, b"\x00" * 32)
        assert len(hosted.anchor_history) == hosted.ANCHOR_HISTORY_LIMIT

    def test_strict_server_rejects_superseded_request(self, local):
        from repro.core.integrity import RollbackDetectedError

        blob = self._sealed_query(local, "//SSN")
        local.update_value(PROBE, "333444")
        assert local.server.freshness_window == 0  # in-process default
        with pytest.raises(RollbackDetectedError):
            local.server.answer_wire(blob)

    def test_window_accepts_request_within_lag(self, local):
        from repro.core.client import Client

        local.server.freshness_window = 8
        blob = self._sealed_query(local, "//SSN")
        local.update_value(PROBE, "555666")
        before = counters.snapshot()
        sealed = local.server.answer_wire(blob)
        delta = counters.delta_since(before)
        assert delta.get("requests_accepted_in_window", 0) == 1
        # The response is sealed at the *current* anchor, so the owner's
        # strict verification accepts it as usual.
        client = Client(local.keyring, local.hosted, enable_cache=False)
        assert client.open_response(sealed) is not None

    def test_window_bounds_the_accepted_lag(self, local):
        from repro.core.integrity import RollbackDetectedError

        local.server.freshness_window = 2
        blob = self._sealed_query(local, "//SSN")
        for value in ("101010", "202020", "303030"):
            local.update_value(PROBE, value)
        with pytest.raises(RollbackDetectedError):
            local.server.answer_wire(blob)

    def test_serving_server_widens_tenant_window(self, local):
        server = ServingServer(freshness_window=5)
        session = server.register_tenant("t0", local)
        assert session.freshness_window == 5
        assert local.server.freshness_window == 5

    def test_session_update_accepts_superseded_seal(self, local):
        from repro.core.integrity import (
            TamperedResponseError,
            seal_fresh,
            unseal,
        )

        server = ServingServer()  # default window covers the race
        session = server.register_tenant("t0", local)
        request_key, response_key = local.keyring.session_keys()
        epoch, root = local.hosted.anchor()
        blob = seal_fresh(
            request_key,
            json.dumps(
                {"op": "update_value", "xpath": PROBE,
                 "new_value": "777888"},
                sort_keys=True,
            ).encode("utf-8"),
            epoch, root,
        )
        # A concurrent writer commits while our command is "in flight".
        local.update_value("//patient[pname='Matt']/SSN", "999000")
        ack = session.update(blob)
        payload = json.loads(
            unseal(response_key, ack, error=TamperedResponseError)
        )
        assert payload["applied"] == "update_value"
        assert local.query(PROBE).values() == ["777888"]

    def test_replayed_update_command_is_rejected(self, local):
        """A captured OP_UPDATE blob must not be re-applicable within
        the freshness window: the dedup raises the typed
        ReplayedCommandError and the value stays at the first commit."""
        from repro.core.integrity import ReplayedCommandError, seal_fresh

        server = ServingServer()  # default window=16 keeps the blob fresh
        session = server.register_tenant("t0", local)
        request_key, _ = local.keyring.session_keys()
        epoch, root = local.hosted.anchor()
        blob = seal_fresh(
            request_key,
            json.dumps(
                {"op": "update_value", "xpath": PROBE,
                 "new_value": "100001", "nonce": "n-0"},
                sort_keys=True,
            ).encode("utf-8"),
            epoch, root,
        )
        session.update(blob)
        assert local.query(PROBE).values() == ["100001"]
        local.update_value(PROBE, "100002")  # a newer legitimate write
        before = counters.snapshot()
        with pytest.raises(ReplayedCommandError):
            session.update(blob)  # wire adversary re-sends the capture
        delta = counters.delta_since(before)
        assert delta.get("serving_replays_rejected", 0) == 1
        # The rollback the replay attempted did not happen.
        assert local.query(PROBE).values() == ["100002"]

    def test_replay_rejected_as_typed_error_over_socket(self, served):
        from repro.core.integrity import ReplayedCommandError, seal_fresh
        from repro.serving.client import AsyncServingClient

        _, (host, port), local = served
        request_key, _ = local.keyring.session_keys()
        epoch, root = local.hosted.anchor()
        blob = seal_fresh(
            request_key,
            json.dumps(
                {"op": "update_value", "xpath": PROBE,
                 "new_value": "200002", "nonce": "n-1"},
                sort_keys=True,
            ).encode("utf-8"),
            epoch, root,
        )

        async def drive():
            conn = await AsyncServingClient.open(host, port, "t0")
            try:
                await conn.call(OP_UPDATE, blob)
                with pytest.raises(ReplayedCommandError):
                    await conn.call(OP_UPDATE, blob)
            finally:
                await conn.close()

        asyncio.run(drive())
        assert local.query(PROBE).values() == ["200002"]

    def test_identical_commands_with_distinct_nonces_both_apply(
        self, local
    ):
        """The dedup keys on the sealed blob, not the logical op: two
        same-op commands sealed at the same anchor under different
        nonces are distinct commands and both commit."""
        from repro.core.integrity import seal_fresh

        server = ServingServer()
        session = server.register_tenant("t0", local)
        request_key, _ = local.keyring.session_keys()
        epoch, root = local.hosted.anchor()
        blobs = [
            seal_fresh(
                request_key,
                json.dumps(
                    {"op": "update_value", "xpath": PROBE,
                     "new_value": "300003", "nonce": nonce},
                    sort_keys=True,
                ).encode("utf-8"),
                epoch, root,
            )
            for nonce in ("n-a", "n-b")
        ]
        for blob in blobs:
            session.update(blob)  # second lands in-window, not as replay
        assert local.hosted.epoch == epoch + 2

    def test_replay_memory_is_pruned_to_the_window(self, local):
        from repro.core.integrity import seal_fresh

        server = ServingServer(freshness_window=2)
        session = server.register_tenant("t0", local)
        request_key, _ = local.keyring.session_keys()
        for value in ("400001", "400002", "400003", "400004"):
            epoch, root = local.hosted.anchor()
            blob = seal_fresh(
                request_key,
                json.dumps(
                    {"op": "update_value", "xpath": PROBE,
                     "new_value": value, "nonce": f"n-{value}"},
                    sort_keys=True,
                ).encode("utf-8"),
                epoch, root,
            )
            session.update(blob)
        # Tags sealed before the live window can no longer verify, so
        # the dedup memory stays bounded by the window's write rate.
        # The last prune ran at registration time (one commit ago).
        horizon = local.hosted.epoch - 1 - session.freshness_window
        assert all(
            epoch >= horizon
            for epoch in session._seen_command_tags.values()
        )
        assert len(session._seen_command_tags) <= (
            session.freshness_window + 1
        )

    def test_loadgen_reports_flight_accepts(self, served):
        server, address, local = served
        report = run_load(
            address, "t0", local, list(QUERIES),
            clients=8, ops_per_client=6,
            update_ops=[
                {"op": "update_value", "xpath": PROBE,
                 "new_value": "121212"},
                {"op": "update_value", "xpath": PROBE,
                 "new_value": "343434"},
            ],
            update_every=4,
        )
        assert report.failures == 0
        assert report.operations == 48
        # With updates racing queries, at least some responses should
        # have been accepted at a flight-time anchor (not guaranteed at
        # this scale, but retries + accepts must reconcile either way).
        assert report.flight_accepts >= 0
        assert report.queries + report.updates == 48


# ----------------------------------------------------------------------
# Control-plane authentication (flush/stats are sealed commands)
# ----------------------------------------------------------------------
class TestControlPlaneAuth:
    """FLUSH and STATS must not be reachable by an unauthenticated peer:
    knowing a tenant id (HELLO is unauthenticated) must not allow
    dropping the tenant's warm caches or reading its metadata."""

    def test_unsealed_flush_and_stats_are_rejected(self, served):
        from repro.core.integrity import TamperedRequestError
        from repro.serving.client import AsyncServingClient

        _, (host, port), _ = served

        async def drive():
            conn = await AsyncServingClient.open(host, port, "t0")
            try:
                for op in (OP_FLUSH, OP_STATS):
                    with pytest.raises(TamperedRequestError):
                        await conn.call(op, b"")
                    with pytest.raises(TamperedRequestError):
                        await conn.call(op, b"\x00" * 96)
            finally:
                await conn.close()

        asyncio.run(drive())

    def test_sealed_flush_round_trips(self, served):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            remote.query(PROBE)
            remote.server.flush_caches()  # sealed {"op": "flush"}
            assert remote.query(PROBE).canonical() == (
                local.query(PROBE).canonical()
            )
        finally:
            remote.close()

    def test_sealed_stats_response_is_verified(self, served):
        _, address, local = served
        remote = remote_system(local, address, "t0")
        try:
            remote.query(PROBE)
            stats = remote._connection.stats()
            assert stats["tenant"] == "t0"
            assert stats["ops"]["query"] >= 1
        finally:
            remote.close()

    def test_connection_without_keys_cannot_issue_commands(self, served):
        from repro.serving import ServingError

        _, (host, port), _ = served
        connection = ServingConnection(host, port, "t0")
        try:
            with pytest.raises(ServingError):
                connection.stats()
        finally:
            connection.close()

    def test_flush_replay_is_rejected(self, served):
        """A captured sealed flush blob cannot be re-sent to repeatedly
        drop the tenant's caches (perf DoS)."""
        from repro.core.integrity import ReplayedCommandError, seal_fresh
        from repro.serving.client import AsyncServingClient

        _, (host, port), local = served
        request_key, _ = local.keyring.session_keys()
        epoch, root = local.hosted.anchor()
        blob = seal_fresh(
            request_key,
            json.dumps(
                {"op": "flush", "nonce": "n-f"}, sort_keys=True
            ).encode("utf-8"),
            epoch, root,
        )

        async def drive():
            conn = await AsyncServingClient.open(host, port, "t0")
            try:
                await conn.call(OP_FLUSH, blob)
                with pytest.raises(ReplayedCommandError):
                    await conn.call(OP_FLUSH, blob)
            finally:
                await conn.close()

        asyncio.run(drive())


# ----------------------------------------------------------------------
# Client-side request timeout
# ----------------------------------------------------------------------
class TestClientTimeout:
    def test_timeout_raises_typed_error_and_cleans_pending(self, local):
        """A timed-out request must cancel its coroutine on the client
        loop (so the _pending entry is dropped, and a late frame cannot
        be mis-delivered) and surface as the typed RequestTimeoutError;
        the connection stays usable afterwards."""
        from repro.core.client import Client

        server = ServingServer(max_inflight=4)
        session = server.register_tenant("t0", local)
        gate = threading.Event()
        release = threading.Event()
        original = session.query

        def slow_query(blob):
            gate.set()
            assert release.wait(timeout=30)
            return original(blob)

        session.query = slow_query
        host, port = server.start()
        sealer = Client(local.keyring, local.hosted, enable_cache=True)
        blob = sealer.seal_request(sealer.translate(PROBE), cache_key=PROBE)
        connection = ServingConnection(host, port, "t0", timeout=0.5)
        try:
            with pytest.raises(RequestTimeoutError):
                connection.call(OP_QUERY, blob)
            release.set()
            session.query = original
            deadline = time.time() + 10
            while connection._client._pending and time.time() < deadline:
                time.sleep(0.01)
            assert connection._client._pending == {}
            # The connection is still healthy: a fresh request gets its
            # own id and round-trips normally.
            sealed = connection.call(OP_QUERY, blob)
            assert sealer.open_response(sealed) is not None
        finally:
            release.set()
            connection.close()
            server.stop()
