"""E10 — §4.1 motivation: the frequency attack vs the defences.

The paper motivates decoys with the leukemia/age-40 example: naive
deterministic per-leaf encryption preserves occurrence frequencies, so an
attacker with exact frequency knowledge cracks unique-frequency values and
the protected association.  This benchmark mounts the attack against
*real hosted ciphertext* three ways:

1. the §4.1 strawman hosting (``scheme="leaf"``, ``secure=False``:
   deterministic per-leaf blocks, no decoys) — cracks;
2. the same leaf scheme hosted securely (decoys + randomized IVs) — fails;
3. the OPESS B-tree value index of the production ``opt`` hosting — fails.
"""

from fractions import Fraction

from repro.bench.harness import format_table
from repro.core.system import SecureXMLSystem
from repro.security.attacks import FrequencyAttack, ciphertext_block_histogram
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.xmldb.stats import value_frequencies

from conftest import write_result


def _run():
    document = build_nasa_database(dataset_count=40, seed=9)
    constraints = nasa_constraints()
    strawman = SecureXMLSystem.host(
        document, constraints, scheme="leaf", secure=False
    )
    defended = SecureXMLSystem.host(
        document, constraints, scheme="leaf", secure=True
    )
    production = SecureXMLSystem.host(document, constraints, scheme="opt")

    plaintext_fields = value_frequencies(document)
    rows = []
    outcomes = {}
    for field in sorted(production.hosted.field_plans):
        prior = plaintext_fields[field]
        attack = FrequencyAttack(prior)

        token = strawman.hosted.field_tokens.get(field)
        if token is None:
            continue
        naive_report = attack.run(
            ciphertext_block_histogram(strawman.hosted, token), field
        )
        decoy_report = attack.run(
            ciphertext_block_histogram(
                defended.hosted, defended.hosted.field_tokens[field]
            ),
            field,
        )
        opess_report = attack.run(
            production.hosted.value_index.ciphertext_histogram(
                production.hosted.field_tokens[field]
            ),
            field,
        )

        rows.append(
            [
                field,
                f"{naive_report.cracked_fraction:.2f}",
                f"{decoy_report.cracked_fraction:.2f}",
                f"{opess_report.cracked_fraction:.2f}",
                str(decoy_report.success_probability),
            ]
        )
        outcomes[field] = (naive_report, decoy_report, opess_report)
    return rows, outcomes


def test_sec41_frequency_attack(benchmark):
    rows, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["field", "cracked (strawman)", "cracked (decoys)",
         "cracked (OPESS)", "P[success] w/ decoys"],
        rows,
        "§4.1 — frequency attack on real hosted ciphertext, three designs",
    )
    write_result("sec41_frequency_attack", table)

    cracked_any_naive = False
    for field, (naive, decoy, opess) in outcomes.items():
        if naive.cracked:
            cracked_any_naive = True
        # The defended designs never crack a value.
        assert not decoy.cracked, field
        assert not opess.cracked, field
        assert decoy.success_probability < Fraction(1, 100)
    # The strawman leaks at least one field outright.
    assert cracked_any_naive
