"""One shard of the cluster: a :class:`~repro.core.server.Server` that
answers with only the fragments it *owns*.

Every shard holds the full hosted database object — the structural join
needs the whole laminar index (a candidate's ancestors can live in any
interval group), and replicating the metadata is exactly what the paper
already grants the untrusted server.  What differs per shard is the
*answer*: :class:`ShardServer` runs the identical join and fragment-root
selection as the monolithic server, then keeps only the roots whose
interval group the placement map assigns to this shard.  Because every
shard starts from the same deterministic root list, the union of the
partial answers over all shards is exactly the monolithic fragment list,
and the coordinator restores its order with the ``root_id`` tags
(:mod:`repro.cluster.coordinator`).

The naive ship-everything protocol has no sharded form — it ships the
whole document by definition — so only the shard owning the document
root (group 0) serves it; the other shards return an empty naive
response and the merge is again byte-for-byte the monolithic one.

Axis engine: reverse/order/sibling axes do not change this picture.
The join still runs over the full replicated index on every shard —
an axis edge can anchor a candidate on entries *anywhere* in the
document, and every shard sees all of them — and ownership filtering
still partitions the final root list by the root's own interval group.
What the axis edges do change is *freshness*: a root's survival can now
depend on entries owned by other shards, so the derived join inputs
(node map, columnar plane snapshot) are gated on the global epoch
rather than the per-shard one (see :meth:`ShardServer._check_epoch`),
while the fragment cache keeps the narrower per-shard gating — fragment
bytes depend only on subtree and ancestor path, which axis edges never
alter (:meth:`~repro.cluster.coordinator.Coordinator.invalidate_entry`).

Freshness: a shard's *fragment* cache is gated on its own
``shard_epoch`` (only updates routed to this shard invalidate it), but
its *sealed* wire/stream caches embed the global commit epoch and
Merkle root, so the inherited ``Server._check_wire_epoch`` drops just
those on any global epoch move — untouched shards keep their warm
fragment caches while never replaying a stale seal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.dsi import IndexEntry
from repro.core.encryptor import HostedDatabase
from repro.core.server import Fragment, Server, ServerResponse
from repro.xmldb.node import EncryptedBlockNode, Node

from repro.cluster.placement import PlacementMap, blocks_of_shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.parallel import WorkerPool
    from repro.obs import Observability


class ShardServer(Server):
    """A server instance answering for one shard's interval groups."""

    def __init__(
        self,
        hosted: HostedDatabase,
        placement: PlacementMap,
        shard_id: int,
        session_keys: "tuple[bytes, bytes] | None" = None,
        pool: "WorkerPool | None" = None,
        enable_cache: bool = True,
        min_shard: int = 64,
        obs: "Observability | None" = None,
        backend: "str | None" = None,
    ) -> None:
        super().__init__(
            hosted,
            enable_cache=enable_cache,
            session_keys=session_keys,
            pool=pool,
            min_shard=min_shard,
            obs=obs,
            backend=backend,
        )
        self.placement = placement
        self.shard_id = shard_id
        #: Per-shard epoch, bumped by the coordinator only when a routed
        #: update touches one of this shard's interval groups.  Replaces
        #: the global hosted epoch as this server's cache-flush trigger:
        #: a shard whose owned fragments provably cannot contain the
        #: change keeps its warm caches across the update (safe because
        #: an update bumps the affected entry's overlap *and* every
        #: ancestor group — by laminarity no other entry can root a
        #: fragment containing the change).
        self.shard_epoch = hosted.epoch
        # node_id → interval low for plaintext hosted nodes; rebuilt
        # lazily whenever the hosted epoch moves (inserts add entries).
        self._lows: dict[int, float] = {}
        self._lows_epoch = -1
        #: Global epoch the derived *join* state (node map, columnar
        #: plane snapshot) was built at — tracked separately from the
        #: per-shard fragment epoch, see :meth:`_check_epoch`.
        self._join_epoch = hosted.epoch

    def _check_epoch(self) -> None:
        with self._cache_lock:
            if self.shard_epoch != self._cache_epoch:
                self.flush_caches()
                self._cache_epoch = self.shard_epoch
                self._join_epoch = self._hosted.epoch
            elif self._hosted.epoch != self._join_epoch:
                # A root's membership in this shard's answer can hinge on
                # entries owned by *any* shard once axis edges (sibling,
                # following/preceding, ancestor) anchor the join, so the
                # derived join inputs must track the global epoch even
                # when this shard's owned fragments are provably
                # untouched.  The fragment cache itself stays warm: a
                # fragment's bytes depend only on its subtree and
                # ancestor path, and updates inside those always bump
                # this shard (see ``Coordinator.invalidate_entry``).
                self._nodes_by_id = None
                if self._backend == "columnar":
                    self._structure.drop_columnar()
                self._join_epoch = self._hosted.epoch

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owns_node(self, node: Node) -> bool:
        """Does this shard own the interval group of ``node``'s root?"""
        if isinstance(node, EncryptedBlockNode):
            interval = self._structure.block_table.get(node.block_id)
            if interval is None:
                # A block the index no longer references (deleted entry);
                # fall back to group 0's owner so exactly one shard keeps
                # answering for it instead of zero.
                return self.placement.shard_of_low(float("-inf")) == (
                    self.shard_id
                )
            return (
                self.placement.shard_of_low(interval.low) == self.shard_id
            )
        low = self._node_lows().get(node.node_id)
        if low is None:
            # Plaintext node without its own index entry (e.g. an element
            # shipped for an attribute match): resolve through the nearest
            # ancestor that has one — ownership follows the entry that
            # selected the node.
            for ancestor in node.ancestors():
                low = self._node_lows().get(ancestor.node_id)
                if low is not None:
                    break
        if low is None:
            return self.placement.shard_of_low(float("-inf")) == self.shard_id
        return self.placement.shard_of_low(low) == self.shard_id

    def owns_root(self) -> bool:
        """Is this the shard serving the naive (whole-document) path?"""
        return self.placement.shard_of_low(float("-inf")) == self.shard_id

    def _node_lows(self) -> dict[int, float]:
        if self._lows_epoch != self._hosted.epoch:
            self._lows = self._structure.hosted_node_lows()
            self._lows_epoch = self._hosted.epoch
        return self._lows

    # ------------------------------------------------------------------
    # Server overrides: filter to owned roots, tag fragments
    # ------------------------------------------------------------------
    def _fragment_roots(self, entries: list[IndexEntry]) -> list[Node]:
        roots = super()._fragment_roots(entries)
        return [node for node in roots if self.owns_node(node)]

    def _make_fragment(self, node: Node) -> Fragment:
        fragment = super()._make_fragment(node)
        if fragment.root_id != node.node_id:
            fragment = replace(fragment, root_id=node.node_id)
            if self._enable_cache:
                # Re-cache the tagged form so warm hits skip the replace.
                self._fragment_cache[node.node_id] = fragment
        return fragment

    def ship_all(self) -> ServerResponse:
        if self.owns_root():
            return super().ship_all()
        return ServerResponse(fragments=[], naive=True, blocks_shipped=0)

    def _leakage_universe(self) -> tuple[int, ...]:
        """Decoy population for this shard: only the blocks it stores.

        A shard can only be asked for blocks in its placement slice, so
        a decoy outside it would itself be a tell.  An empty slice means
        no cover traffic is possible here — the trace then carries real
        fetches only (and this shard ships none either).
        """
        cached = self._universe_cache
        epoch = self._hosted.epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        universe = tuple(
            sorted(
                blocks_of_shard(self._hosted, self.placement, self.shard_id)
            )
        )
        self._universe_cache = (epoch, universe)
        return universe

    # ------------------------------------------------------------------
    # What an attacker on this shard sees (security regression tests)
    # ------------------------------------------------------------------
    def shard_view(self) -> "ShardView":
        """This shard's attacker-visible state.

        The index metadata is replicated (same as the monolithic server);
        the ciphertext payloads are restricted to the blocks whose
        representative interval falls in this shard's groups.  The view
        quacks like a :class:`~repro.core.encryptor.HostedDatabase` for
        :func:`repro.security.attacks.ciphertext_block_histogram`.
        """
        return ShardView(
            shard_id=self.shard_id,
            structural_index=self._structure,
            blocks={
                block_id: self._hosted.blocks[block_id]
                for block_id in blocks_of_shard(
                    self._hosted, self.placement, self.shard_id
                )
                if block_id in self._hosted.blocks
            },
        )


@dataclass
class ShardView:
    """Attacker-visible state of one shard (index + owned ciphertext)."""

    shard_id: int
    structural_index: object
    blocks: dict[int, bytes]
