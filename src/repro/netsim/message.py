"""Wire encoding of the client↔server messages.

The paper's protocol ships two message shapes (see ``docs/PROTOCOL.md``):
the translated query ``Qs`` (client→server) and a fragment list
(server→client).  Hardening the reproduction against an untrusted wire
requires *actual bytes* to cross the modelled channel — a fault policy
cannot flip bits in a Python object — so this module gives both shapes a
canonical JSON encoding.  The encodings are pure data: no pickle, no code
execution on decode, and every decode error is raised as
:class:`MessageDecodeError` so the retry layer can treat a mangled
payload that slipped past truncation checks exactly like a tampered one.

The streaming protocol adds a third, *chunked* shape for the response:
a header chunk (counts and stream length) followed by fragment chunks,
each sealed independently so the client can verify and start decrypting
chunk ``i`` while the server is still serializing chunk ``i+1``.  Every
chunk carries its stream index and the header fixes the chunk and
fragment totals, so a reordered, repeated, or missing chunk is detected
at assembly, not silently absorbed (see ``docs/PROTOCOL.md``,
"Streaming & parallel execution").

Codec stability is not a compatibility promise (client and server are
versioned together); determinism is what matters — the same query object
encodes to the same bytes, which the request/response wire caches key on.

Layering note: every message this module encodes crosses the wire inside
the *freshness* envelope (``rxi2``, :mod:`repro.core.integrity`), which
binds the commit epoch and block-tag Merkle root into the MAC.  The
codec itself is freshness-agnostic — the same encoded query is sealed to
different wire bytes at different epochs — which is why the rollback
attacker keys its recorded responses on the *stripped* request payload
(:func:`repro.core.integrity.envelope_payload`), not the sealed bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


class MessageDecodeError(ValueError):
    """A wire payload did not decode to a valid message."""


# ----------------------------------------------------------------------
# Translated query (client -> server)
# ----------------------------------------------------------------------
def encode_query(query: Any) -> bytes:
    """Serialize a ``TranslatedQuery`` to canonical JSON bytes."""

    def node_dict(node: Any) -> dict[str, Any]:
        out: dict[str, Any] = {"k": list(node.keys), "a": node.axis}
        if node.value_ranges is not None:
            out["r"] = [[r.low, r.high] for r in node.value_ranges]
        if node.value_field_token is not None:
            out["t"] = node.value_field_token
        if node.plaintext_predicate is not None:
            out["p"] = list(node.plaintext_predicate)
        if node.is_output:
            out["o"] = 1
        if node.is_ship_node:
            out["s"] = 1
        if node.position_sensitive:
            out["ps"] = 1
        if node.children:
            out["c"] = [node_dict(child) for child in node.children]
        return out

    return json.dumps(
        {"q": node_dict(query.root)}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_query(payload: bytes) -> Any:
    """Rebuild a ``TranslatedQuery`` from :func:`encode_query` bytes."""
    from repro.core.opess import KeyRange
    from repro.core.translate import TranslatedNode, TranslatedQuery

    def build(record: dict[str, Any]) -> TranslatedNode:
        node = TranslatedNode(
            keys=tuple(record["k"]),
            axis=record["a"],
            value_ranges=(
                [KeyRange(low, high) for low, high in record["r"]]
                if "r" in record
                else None
            ),
            value_field_token=record.get("t"),
            plaintext_predicate=(
                (record["p"][0], record["p"][1]) if "p" in record else None
            ),
            is_output=bool(record.get("o")),
            is_ship_node=bool(record.get("s")),
            position_sensitive=bool(record.get("ps")),
        )
        node.children = [build(child) for child in record.get("c", ())]
        return node

    try:
        root = build(_load(payload)["q"])
    except (KeyError, TypeError, IndexError) as exc:
        raise MessageDecodeError(f"malformed query message: {exc}") from exc
    output = next((n for n in root.walk() if n.is_output), root)
    # Axis-engine plans flag several ship nodes; the server ships the
    # union of their survivors.  Walk order is deterministic, so the
    # rebuilt ship list matches the client's.
    ships = [n for n in root.walk() if n.is_ship_node]
    if not ships:
        ships = [root]
    return TranslatedQuery(
        root=root,
        output=output,
        ship_node=ships[0],
        extra_ship_nodes=ships[1:],
    )


# ----------------------------------------------------------------------
# Server response (server -> client)
# ----------------------------------------------------------------------
def _fragment_record(fragment: Any) -> dict[str, Any]:
    record = {
        "p": [[tag, nid] for tag, nid in fragment.ancestor_path],
        "x": fragment.xml,
    }
    # Shard-tagged fragments (cluster scatter–gather) carry their root's
    # hosted id; single-server responses omit the key, keeping their
    # wire bytes identical to the pre-cluster encoding.
    if fragment.root_id is not None:
        record["r"] = fragment.root_id
    return record


def _fragment_from_record(record: dict[str, Any]) -> Any:
    from repro.core.server import Fragment

    return Fragment(
        ancestor_path=tuple((tag, nid) for tag, nid in record["p"]),
        xml=record["x"],
        root_id=record.get("r"),
    )


def encode_response(response: Any) -> bytes:
    """Serialize a ``ServerResponse`` to canonical JSON bytes."""
    return json.dumps(
        {
            "n": int(response.naive),
            "b": response.blocks_shipped,
            "cc": response.candidate_counts,
            "f": [_fragment_record(f) for f in response.fragments],
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def decode_response(payload: bytes) -> Any:
    """Rebuild a ``ServerResponse`` from :func:`encode_response` bytes."""
    from repro.core.server import ServerResponse

    try:
        record = _load(payload)
        return ServerResponse(
            fragments=[_fragment_from_record(f) for f in record["f"]],
            naive=bool(record["n"]),
            blocks_shipped=record["b"],
            candidate_counts=dict(record["cc"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MessageDecodeError(f"malformed response message: {exc}") from exc


# ----------------------------------------------------------------------
# Chunked (streaming) server response (server -> client)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamChunk:
    """One decoded chunk of a streamed response.

    ``index`` is the chunk's position in the stream; the header (always
    index 0) fixes ``chunk_count`` and ``fragment_count`` so the client
    can detect truncation, reordering and duplication.  Fragment chunks
    carry a contiguous run of the response's fragments in stream order.
    """

    kind: str  # "header" | "fragments"
    index: int
    naive: bool = False
    blocks_shipped: int = 0
    candidate_counts: dict[str, int] = field(default_factory=dict)
    fragment_count: int = 0
    chunk_count: int = 0
    fragments: tuple[Any, ...] = ()


def encode_stream_header(
    naive: bool,
    blocks_shipped: int,
    candidate_counts: dict[str, int],
    fragment_count: int,
    chunk_count: int,
) -> bytes:
    """Serialize the stream header (chunk 0) to canonical JSON bytes."""
    return json.dumps(
        {
            "k": "hd",
            "i": 0,
            "n": int(naive),
            "b": blocks_shipped,
            "cc": candidate_counts,
            "fc": fragment_count,
            "nc": chunk_count,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def encode_fragment_chunk(index: int, fragments: Any) -> bytes:
    """Serialize one run of fragments as stream chunk ``index`` (>= 1)."""
    if index < 1:
        raise ValueError("fragment chunks start at stream index 1")
    return json.dumps(
        {
            "k": "fr",
            "i": index,
            "f": [_fragment_record(f) for f in fragments],
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def decode_chunk(payload: bytes) -> StreamChunk:
    """Rebuild a :class:`StreamChunk` from its canonical JSON bytes."""
    try:
        record = _load(payload)
        kind = record["k"]
        if kind == "hd":
            if record["i"] != 0:
                raise MessageDecodeError("stream header must be chunk 0")
            return StreamChunk(
                kind="header",
                index=0,
                naive=bool(record["n"]),
                blocks_shipped=record["b"],
                candidate_counts=dict(record["cc"]),
                fragment_count=int(record["fc"]),
                chunk_count=int(record["nc"]),
            )
        if kind == "fr":
            index = int(record["i"])
            if index < 1:
                raise MessageDecodeError("fragment chunk index must be >= 1")
            return StreamChunk(
                kind="fragments",
                index=index,
                fragments=tuple(
                    _fragment_from_record(f) for f in record["f"]
                ),
            )
        raise MessageDecodeError(f"unknown chunk kind {kind!r}")
    except MessageDecodeError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise MessageDecodeError(f"malformed stream chunk: {exc}") from exc


def encode_response_chunks(response: Any, chunk_fragments: int) -> list[bytes]:
    """Encode a whole ``ServerResponse`` as its chunked wire form.

    Convenience used by tests and the server's streaming cache; the live
    streaming path emits the same bytes chunk-by-chunk so serialization
    overlaps the client's decryption.
    """
    if chunk_fragments < 1:
        raise ValueError("chunk_fragments must be >= 1")
    fragments = list(response.fragments)
    runs = [
        fragments[start : start + chunk_fragments]
        for start in range(0, len(fragments), chunk_fragments)
    ] or []
    chunks = [
        encode_stream_header(
            naive=response.naive,
            blocks_shipped=response.blocks_shipped,
            candidate_counts=response.candidate_counts,
            fragment_count=len(fragments),
            chunk_count=1 + len(runs),
        )
    ]
    for offset, run in enumerate(runs):
        chunks.append(encode_fragment_chunk(1 + offset, run))
    return chunks


def assemble_stream(chunks: list[StreamChunk]) -> Any:
    """Validate a full chunk sequence and rebuild the ``ServerResponse``.

    Raises :class:`MessageDecodeError` unless the chunks are exactly the
    header followed by its promised fragment chunks in stream order with
    the promised total fragment count — the ordering guarantee callers
    rely on for byte-identical parallel/serial answers.
    """
    from repro.core.server import ServerResponse

    if not chunks or chunks[0].kind != "header":
        raise MessageDecodeError("stream must begin with a header chunk")
    header = chunks[0]
    if len(chunks) != header.chunk_count:
        raise MessageDecodeError(
            f"stream promised {header.chunk_count} chunks, got {len(chunks)}"
        )
    fragments: list[Any] = []
    for position, chunk in enumerate(chunks[1:], start=1):
        if chunk.kind != "fragments" or chunk.index != position:
            raise MessageDecodeError(
                f"stream chunk {position} out of order or wrong kind"
            )
        fragments.extend(chunk.fragments)
    if len(fragments) != header.fragment_count:
        raise MessageDecodeError(
            f"stream promised {header.fragment_count} fragments, "
            f"got {len(fragments)}"
        )
    return ServerResponse(
        fragments=fragments,
        naive=header.naive,
        blocks_shipped=header.blocks_shipped,
        candidate_counts=dict(header.candidate_counts),
    )


def _load(payload: bytes) -> dict[str, Any]:
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageDecodeError(f"undecodable message: {exc}") from exc
    if not isinstance(record, dict):
        raise MessageDecodeError("message is not an object")
    return record
