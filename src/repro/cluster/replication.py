"""Replica sets: R identical servers per shard, with failover.

Replication in this model is *identical state* — every replica of a
shard is a :class:`~repro.cluster.shard.ShardServer` over the same
hosted database with the same placement, reached over its own sealed
channel (optionally a :class:`~repro.netsim.faults.FaultyChannel`).  A
shard exchange walks the replicas round-robin: a retryable failure
(integrity violation or dropped transfer — exactly the monolithic
:data:`_RETRYABLE` set) triggers failover to the next replica with the
retry policy's modelled backoff, and only when every replica has been
tried ``max_attempts`` times does the shard surface
:class:`ClusterDegradedError`.  That error is a
:class:`~repro.core.system.QueryFailedError`, so the system-level
invariant is unchanged: a query returns the exact answer or a typed
error, never a silent wrong one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.integrity import IntegrityError
from repro.core.system import QueryFailedError
from repro.netsim.channel import Channel
from repro.netsim.faults import TransferDropped
from repro.perf import counters
from repro.perf.counters import PerfCounters

from repro.cluster.shard import ShardServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.system import QueryTrace, RetryPolicy
    from repro.obs import Observability

#: Failures that trigger failover to the next replica (the same set the
#: monolithic retry loop treats as transient).
_RETRYABLE = (IntegrityError, TransferDropped)


class ClusterDegradedError(QueryFailedError):
    """Every replica of a needed shard failed; the query cannot complete."""


@dataclass
class Replica:
    """One server instance of a shard, with its own channel."""

    replica_id: int
    server: ShardServer
    channel: Channel


@dataclass
class ShardStats:
    """Cumulative per-shard accounting the admin view renders."""

    shard_id: int
    exchanges: int = 0
    failovers: int = 0
    degraded: int = 0
    fragments_returned: int = 0
    blocks_shipped: int = 0
    epoch_bumps: int = 0
    server_s: float = 0.0
    transfer_s: float = 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "shard": self.shard_id,
            "exchanges": self.exchanges,
            "failovers": self.failovers,
            "degraded": self.degraded,
            "fragments": self.fragments_returned,
            "blocks": self.blocks_shipped,
            "epoch_bumps": self.epoch_bumps,
            "t_server": self.server_s,
            "t_transfer": self.transfer_s,
        }


class ReplicaSet:
    """The R replicas of one shard plus the failover exchange loop."""

    def __init__(
        self,
        shard_id: int,
        replicas: list[Replica],
        policy: "RetryPolicy",
        obs: "Observability",
    ) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.shard_id = shard_id
        self.replicas = replicas
        self.policy = policy
        self._obs = obs
        self.stats = ShardStats(shard_id)
        #: This shard's own counter registry (the global one still gets
        #: every increment; this one isolates the shard's share).
        self.perf = PerfCounters()

    def exchange(
        self,
        request_blob: bytes,
        trace: "QueryTrace",
        rng: random.Random,
        naive: bool = False,
    ) -> tuple[bytes, float]:
        """One sealed request/response against this shard, with failover.

        Returns ``(sealed_response, shard_seconds)`` where the seconds
        are everything this shard cost — successful exchange time plus
        the modelled backoff of any failed attempts — which is what the
        coordinator's makespan model maxes over.  Raises
        :class:`ClusterDegradedError` once every replica has exhausted
        the policy's attempt budget.
        """
        budget = self.policy.max_attempts * len(self.replicas)
        spent = 0.0
        last_error: Exception | None = None
        for attempt in range(budget):
            replica = self.replicas[attempt % len(self.replicas)]
            if attempt > 0:
                delay = self.policy.backoff_for(attempt - 1, rng)
                trace.backoff_s += delay
                spent += delay
                if self._obs.enabled:
                    # Modelled, not slept — mirror the monolithic retry
                    # loop so span totals reconcile with ``backoff_s``.
                    span = self._obs.tracer.begin(
                        "backoff", shard=self.shard_id, failover=attempt
                    )
                    span.set_duration(delay)
                    self._obs.metrics.observe("retry_backoff_seconds", delay)
            try:
                sealed, elapsed = self._attempt(
                    replica, request_blob, trace, naive
                )
                return sealed, spent + elapsed
            except _RETRYABLE as exc:
                last_error = exc
                counters.add("cluster_failovers")
                self.perf.add("cluster_failovers")
                self.stats.failovers += 1
                trace.cluster_failovers += 1
                if isinstance(exc, IntegrityError):
                    counters.add("integrity_failures")
                    trace.integrity_failures += 1
                else:
                    trace.drops += 1
        counters.add("cluster_degraded")
        self.perf.add("cluster_degraded")
        self.stats.degraded += 1
        raise ClusterDegradedError(
            f"shard {self.shard_id}: all {len(self.replicas)} replicas "
            f"failed after {budget} attempts: {last_error}"
        ) from last_error

    def _attempt(
        self,
        replica: Replica,
        request_blob: bytes,
        trace: "QueryTrace",
        naive: bool,
    ) -> tuple[bytes, float]:
        """One replica round trip: request over, evaluate, response back."""
        tracer = self._obs.tracer
        elapsed = 0.0
        with tracer.span(
            "shard", shard=self.shard_id, replica=replica.replica_id
        ):
            blob, seconds = replica.channel.transfer(
                "client->server", "query", request_blob
            )
            trace.transfer_s += seconds
            self.stats.transfer_s += seconds
            elapsed += seconds

            with tracer.span("server", shard=self.shard_id) as span:
                if naive:
                    sealed = replica.server.ship_all_wire(blob)
                else:
                    sealed = replica.server.answer_wire(blob)
            seconds = span.finish()
            trace.server_s += seconds
            self.stats.server_s += seconds
            elapsed += seconds

            sealed, seconds = replica.channel.transfer(
                "server->client", "answer", sealed
            )
            trace.transfer_s += seconds
            self.stats.transfer_s += seconds
            elapsed += seconds
        counters.add("shard_exchanges")
        self.perf.add("shard_exchanges")
        self.stats.exchanges += 1
        if self._obs.enabled:
            self._obs.metrics.observe("shard_exchange_seconds", elapsed)
        return sealed, elapsed

    # ------------------------------------------------------------------
    # Maintenance fan-out
    # ------------------------------------------------------------------
    def bump_epoch(self) -> None:
        """Invalidate every replica's caches (a routed update hit us)."""
        for replica in self.replicas:
            replica.server.shard_epoch += 1
        counters.add("shard_epoch_bumps")
        self.perf.add("shard_epoch_bumps")
        self.stats.epoch_bumps += 1

    def flush_caches(self) -> None:
        for replica in self.replicas:
            replica.server.flush_caches()

    def owns_root(self) -> bool:
        return self.replicas[0].server.owns_root()

    def total_bytes(self) -> int:
        return sum(replica.channel.total_bytes() for replica in self.replicas)
