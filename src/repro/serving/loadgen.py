"""Concurrent load generator for the serving layer.

Drives hundreds of simulated clients against one :class:`~repro.serving
.server.ServingServer` from a single event loop — each "client" is an
:class:`~repro.serving.client.AsyncServingClient` connection issuing a
mixed sequence of sealed queries and sealed updates.  The point is
sustained-QPS measurement, so the per-operation work is the honest
client-side minimum for a *verified* exchange:

* queries are translated and sealed through a real owner-side
  :class:`~repro.core.client.Client` (plan and sealed-request caches
  warm, exactly like a production owner), and every response's envelope
  and freshness anchor are verified with
  :meth:`~repro.core.client.Client.open_response` — fragment decryption
  is skipped, keeping the generator light enough that the *server* is
  the thing being measured;
* updates are freshness-sealed commands; losing an anchor race to a
  concurrent writer (common at hundreds of clients) retries with a
  re-seal, exactly like the remote system's update path;
* a response sealed an instant before a concurrent writer committed is
  *accepted*, not retried: it is re-verified (full MAC + anchor check)
  against the owner's recorded historical root for its exact epoch,
  which must be at least the epoch known when the request was issued.
  Without this bounded-staleness rule a sustained mixed load livelocks —
  every round trip overlaps some commit, so strict equality against the
  live anchor can reject every response indefinitely.

Typed backpressure rejections count as retries, not failures: a full
in-flight queue is the admission controller doing its job, and the
generator backs off briefly and re-issues, which is precisely the
client behaviour the rejection type is designed for.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import time
from dataclasses import dataclass

from repro.core.client import Client
from repro.core.integrity import (
    FreshnessError,
    RollbackDetectedError,
    TamperedResponseError,
    seal_fresh,
    unseal,
    unseal_fresh,
)
from repro.core.system import SecureXMLSystem
from repro.netsim.faults import TransferDropped

from repro.serving.client import AsyncServingClient
from repro.serving.framing import OP_QUERY, OP_UPDATE

#: Outcomes the generator absorbs with a re-issue: freshness races
#: (anchor moved under a sealed payload) and dropped/rejected transfers
#: (backpressure, drain) — the same retryable set the system uses.
_RETRYABLE = (FreshnessError, TransferDropped)


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run."""

    clients: int
    queries: int = 0
    updates: int = 0
    retries: int = 0
    failures: int = 0
    #: Responses sealed at an anchor superseded *during the request's
    #: flight* by a concurrent writer, accepted after re-verification
    #: against the authentic historical root for that anchor.
    flight_accepts: int = 0
    elapsed_s: float = 0.0

    @property
    def operations(self) -> int:
        return self.queries + self.updates

    @property
    def qps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.operations / self.elapsed_s


def run_load(
    address: tuple[str, int],
    tenant: str,
    local: SecureXMLSystem,
    queries: list[str],
    clients: int = 100,
    ops_per_client: int = 20,
    update_ops: "list[dict] | None" = None,
    update_every: int = 25,
    max_attempts: int = 12,
) -> LoadReport:
    """Run a mixed query/update load; returns the measured report.

    ``local`` is the owner's system for the served tenant (shared hosted
    state and keyring — the generator plays the owner).  ``queries`` are
    cycled across the global operation sequence; every
    ``update_every``-th operation is drawn from ``update_ops`` (sealed
    update command dicts, e.g. ``{"op": "update_value", "xpath": ...,
    "new_value": ...}``) when provided.  An operation that exhausts
    ``max_attempts`` counts as a failure; sustained-QPS gates should
    require ``failures == 0``.
    """
    host, port = address
    report = LoadReport(clients=clients)

    async def _drive() -> LoadReport:
        sealer = Client(local.keyring, local.hosted, enable_cache=True)
        request_key, response_key = local.keyring.session_keys()
        connections = await asyncio.gather(
            *[
                AsyncServingClient.open(host, port, tenant)
                for _ in range(clients)
            ]
        )

        async def _backoff(exc: Exception, attempt: int) -> None:
            report.retries += 1
            if isinstance(exc, FreshnessError):
                # An anchor race is resolved the moment it is detected —
                # the new epoch is known — so re-seal after only a short
                # desynchronizing pause (a full saturation backoff here
                # would serialize the whole fleet behind every update).
                await asyncio.sleep(min(0.0005 * (2 ** attempt), 0.02))
            else:
                # Backpressure/drops mean the server is saturated: back
                # off exponentially so the retry storm decays.
                await asyncio.sleep(min(0.002 * (2 ** attempt), 0.1))

        def _accept_in_flight(
            sealed: bytes, stale: RollbackDetectedError, issue_epoch: int
        ) -> None:
            """Accept a response sealed at an anchor that was current
            while the request was in flight.

            The response's authenticated epoch must be at least the
            epoch known when the request was issued (so it cannot be a
            genuinely pre-issue replay), and its root must match the
            owner's recorded history for that exact epoch — a full MAC
            re-verification against an *authentic* anchor, not a waiver.
            Anything else re-raises the original rollback error.
            """
            if stale.observed_epoch < issue_epoch:
                raise stale
            root = local.hosted.root_at(stale.observed_epoch)
            if root is None:
                raise stale
            unseal_fresh(
                response_key, sealed, stale.observed_epoch, root,
                error=TamperedResponseError,
            )
            report.flight_accepts += 1

        async def _query(conn: AsyncServingClient, xpath: str) -> None:
            for attempt in range(max_attempts):
                try:
                    plan = sealer.translate(xpath)
                    issue_epoch = local.hosted.epoch
                    blob = sealer.seal_request(plan, cache_key=xpath)
                    sealed = await conn.call(OP_QUERY, blob)
                    try:
                        sealer.open_response(sealed)
                    except RollbackDetectedError as stale:
                        _accept_in_flight(sealed, stale, issue_epoch)
                    report.queries += 1
                    return
                except _RETRYABLE as exc:
                    await _backoff(exc, attempt)
            report.failures += 1

        async def _update(conn: AsyncServingClient, op: dict) -> None:
            # The nonce makes this command distinct from every other
            # instance of the same logical op, so the server's replay
            # dedup (keyed on the seal's MAC tag) never rejects it.
            payload = json.dumps(
                {**op, "nonce": secrets.token_hex(16)}, sort_keys=True
            ).encode("utf-8")
            for attempt in range(max_attempts):
                try:
                    epoch, root = local.hosted.anchor()
                    blob = seal_fresh(request_key, payload, epoch, root)
                    ack = await conn.call(OP_UPDATE, blob)
                    unseal(response_key, ack, error=TamperedResponseError)
                    report.updates += 1
                    return
                except _RETRYABLE as exc:
                    await _backoff(exc, attempt)
            report.failures += 1

        async def _one_client(index: int, conn: AsyncServingClient) -> None:
            for op_index in range(ops_per_client):
                seq = index * ops_per_client + op_index
                mixed = (
                    update_ops
                    and update_every > 0
                    and seq % update_every == update_every - 1
                )
                if mixed:
                    await _update(conn, update_ops[seq % len(update_ops)])
                else:
                    await _query(conn, queries[seq % len(queries)])

        started = time.perf_counter()
        try:
            await asyncio.gather(
                *[
                    _one_client(index, conn)
                    for index, conn in enumerate(connections)
                ]
            )
        finally:
            report.elapsed_s = time.perf_counter() - started
            await asyncio.gather(
                *[conn.close() for conn in connections],
                return_exceptions=True,
            )
        return report

    return asyncio.run(_drive())
