"""Unit and property tests for serialization (round-trip with the parser)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Document, Element, EncryptedBlockNode, Text
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize, serialized_size


class TestBasicSerialization:
    def test_empty_element(self):
        assert serialize(Element("a")) == "<a/>"

    def test_leaf_inline(self):
        leaf = Element("a")
        leaf.append(Text("v"))
        assert serialize(leaf) == "<a>v</a>"

    def test_attributes(self):
        el = Element("a")
        el.set_attribute("x", "1")
        assert serialize(el) == '<a x="1"/>'

    def test_escaping_text(self):
        leaf = Element("a")
        leaf.append(Text("<&>"))
        assert serialize(leaf) == "<a>&lt;&amp;&gt;</a>"

    def test_escaping_attribute_quotes(self):
        el = Element("a")
        el.set_attribute("x", 'say "hi" & go')
        assert '"say &quot;hi&quot; &amp; go"' in serialize(el)

    def test_encrypted_block(self):
        el = Element("a")
        el.append(EncryptedBlockNode(5, b"\xab\xcd"))
        assert (
            serialize(el)
            == '<a><EncryptedData block-id="5">abcd</EncryptedData></a>'
        )

    def test_document_serializes_root(self):
        doc = Document(Element("a"))
        assert serialize(doc) == "<a/>"

    def test_serialized_size_is_utf8_bytes(self):
        leaf = Element("a")
        leaf.append(Text("héllo"))
        assert serialized_size(leaf) == len(serialize(leaf).encode("utf-8"))

    def test_indent_mode_parses_back(self):
        builder = TreeBuilder("r")
        with builder.element("a"):
            builder.leaf("b", "x")
        doc = builder.document()
        pretty = serialize(doc, indent=True)
        assert "\n" in pretty
        reparsed = parse_document(pretty)
        assert serialize(reparsed) == serialize(doc)


# ---------------------------------------------------------------------------
# Property-based round-trip
# ---------------------------------------------------------------------------

_tags = st.from_regex(r"[A-Za-z][A-Za-z0-9_.#-]{0,8}", fullmatch=True)
_values = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=0x2FF, blacklist_characters="\x7f"
    ),
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)


@st.composite
def _elements(draw, depth: int = 0):
    element = Element(draw(_tags))
    for name in draw(st.lists(_tags, max_size=2, unique=True)):
        element.set_attribute(name, draw(_values))
    if depth < 3:
        children = draw(st.integers(min_value=0, max_value=3))
        for _ in range(children):
            if draw(st.booleans()) and not element.children:
                element.append(Text(draw(_values)))
            else:
                element.append(draw(_elements(depth=depth + 1)))
    return element


class TestRoundTripProperties:
    @given(_elements())
    @settings(max_examples=60, deadline=None)
    def test_parse_serialize_roundtrip(self, element):
        """parse(serialize(t)) == t up to whitespace normalization."""
        once = serialize(element)
        reparsed = parse_document(once)
        assert serialize(reparsed) == once

    @given(_elements())
    @settings(max_examples=30, deadline=None)
    def test_serialization_is_deterministic(self, element):
        assert serialize(element) == serialize(element)

    @given(_elements())
    @settings(max_examples=30, deadline=None)
    def test_clone_serializes_identically(self, element):
        assert serialize(element.clone()) == serialize(element)
