"""Async socket serving: the multi-tenant front door (PR 8).

Stands the secure query pipeline up behind real TCP sockets on an
``asyncio`` event loop without changing a byte of its security
behaviour: requests and responses cross the wire as the same sealed
payloads the in-process channel carries, every verification step runs
in the unmodified owner-side code, and the netsim fault layer plugs in
at the socket boundary so the chaos and rollback suites replay their
seeded schedules over live connections.  See ``docs/SERVING.md``.
"""

from repro.serving.client import (
    AsyncServingClient,
    RemoteSecureXMLSystem,
    RemoteServer,
    ServingConnection,
    remote_system,
)
from repro.serving.errors import (
    BackpressureRejected,
    ProtocolError,
    RemoteServerError,
    RequestTimeoutError,
    ServerDraining,
    ServingError,
    UnknownTenantError,
    decode_error,
    encode_error,
)
from repro.serving.framing import (
    ConnectionClosedError,
    FrameError,
    decode_frame,
    encode_frame,
)
from repro.serving.gateway import ClusterGateway
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.server import ServingServer, TenantSession
from repro.serving.transport import AsyncFaultTransport

__all__ = [
    "AsyncFaultTransport",
    "AsyncServingClient",
    "BackpressureRejected",
    "ClusterGateway",
    "ConnectionClosedError",
    "FrameError",
    "LoadReport",
    "ProtocolError",
    "RemoteSecureXMLSystem",
    "RemoteServer",
    "RemoteServerError",
    "RequestTimeoutError",
    "ServerDraining",
    "ServingConnection",
    "ServingError",
    "ServingServer",
    "TenantSession",
    "UnknownTenantError",
    "decode_error",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "remote_system",
    "run_load",
]
