"""The remote side of the front door: async client, sync facade, proxy.

Three layers, innermost first:

:class:`AsyncServingClient`
    Pure asyncio: one TCP connection, a HELLO handshake, and a reader
    task that demultiplexes response frames back to their requests by
    request id — which is what lets one connection carry many in-flight
    requests at once.

:class:`ServingConnection`
    A synchronous facade owning a private event loop on a daemon
    thread, so the *blocking* secure pipeline can call through it like
    any other function.  This is also where the
    :class:`~repro.serving.transport.AsyncFaultTransport` is applied:
    request payloads are faulted **before** they are framed (a corrupted
    request genuinely crosses the wire mangled; a dropped one never
    leaves the process), responses and stream chunks are faulted lazily
    on arrival, on the calling thread, in consumption order — exactly
    the transfer sequence the in-process channel sees, so a seeded
    :class:`~repro.netsim.faults.FaultPolicy` replays the same schedule
    over live sockets.

:class:`RemoteServer` / :class:`RemoteSecureXMLSystem` / :func:`remote_system`
    The drop-in: ``RemoteServer`` implements the monolithic
    :class:`~repro.core.server.Server` wire surface over a connection,
    and ``remote_system(local, address, tenant)`` builds a
    :class:`~repro.core.system.SecureXMLSystem` whose server is that
    proxy and whose channel is a :class:`~repro.netsim.channel
    .NullChannel` (all fault injection and byte accounting happen once,
    in the transport).  Every verification step — envelope, freshness,
    decryption, re-evaluation — runs in the unmodified system code, so
    remote answers are byte-identical to in-process ones and failures
    surface as the same typed errors.

Update parity: in-process updates are local mutations with no channel
transfer, so remote updates bypass the fault transport too.  They cross
as freshness-sealed commands (:data:`OP_UPDATE`) bound to the tenant's
``(epoch, Merkle root)`` anchor *and* a random per-command nonce (so
the server's replay dedup can key on the seal's MAC tag without ever
rejecting a distinct identical command); losing a seal race to a
concurrent writer surfaces as a typed freshness error and the client
re-seals against the moved anchor, a bounded number of times.  Flush
and stats travel the same sealed-command path — no tenant operation is
reachable unauthenticated.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import secrets
import threading
from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import Iterator

from repro.core.client import Client
from repro.core.integrity import (
    FreshnessError,
    TamperedResponseError,
    seal_fresh,
    unseal,
)
from repro.core.parallel import ParallelConfig, WorkerPool
from repro.core.system import SecureXMLSystem
from repro.crypto.keyring import ClientKeyring
from repro.netsim.channel import Channel, NullChannel

from repro.serving.errors import (
    ProtocolError,
    RequestTimeoutError,
    ServingError,
    decode_error,
)
from repro.serving.framing import (
    OP_CHUNK,
    OP_END,
    OP_ERROR,
    OP_FLUSH,
    OP_HELLO,
    OP_HELLO_OK,
    OP_NAIVE,
    OP_OK,
    OP_QUERY,
    OP_QUERY_STREAM,
    OP_STATS,
    OP_UPDATE,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.serving.transport import AsyncFaultTransport

#: Opcodes whose payloads pass through the fault transport.  Updates,
#: flushes and stats are control traffic with no in-process transfer
#: twin, so faulting them would desynchronize seeded schedules.
FAULTED_OPS = frozenset({OP_QUERY, OP_QUERY_STREAM, OP_NAIVE})

#: How many times a sealed command re-seals after losing an anchor race.
_COMMAND_RESEAL_ATTEMPTS = 5

#: Sentinel opcode the reader enqueues when the connection dies.
_CLOSED = -1


class AsyncServingClient:
    """One framed connection with request-id demultiplexing (asyncio)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.hello = hello
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Queue] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls, host: str, port: int, tenant: str
    ) -> "AsyncServingClient":
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(
            {"tenant": tenant, "protocol": PROTOCOL_VERSION}, sort_keys=True
        ).encode("utf-8")
        writer.write(encode_frame(0, OP_HELLO, payload))
        await writer.drain()
        _, op, data = await read_frame(reader)
        if op == OP_ERROR:
            writer.close()
            raise decode_error(data)
        if op != OP_HELLO_OK:
            writer.close()
            raise ProtocolError(f"expected HELLO_OK, got opcode {op}")
        return cls(reader, writer, json.loads(data.decode("utf-8")))

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def _read_loop(self) -> None:
        try:
            while True:
                rid, op, payload = await read_frame(self._reader)
                queue = self._pending.get(rid)
                if queue is not None:
                    queue.put_nowait((op, payload))
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for queue in self._pending.values():
                queue.put_nowait((_CLOSED, b""))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _send(self, rid: int, op: int, payload: bytes) -> None:
        frame = encode_frame(rid, op, payload)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()

    async def call(self, op: int, payload: bytes) -> bytes:
        """One monolithic request; returns the OK payload or re-raises."""
        rid = next(self._ids)
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[rid] = queue
        try:
            await self._send(rid, op, payload)
            resp_op, data = await queue.get()
            if resp_op == _CLOSED:
                raise ConnectionClosedError("connection lost mid-request")
            if resp_op == OP_ERROR:
                raise decode_error(data)
            if resp_op != OP_OK:
                raise ProtocolError(
                    f"expected OK for request {rid}, got opcode {resp_op}"
                )
            return data
        finally:
            self._pending.pop(rid, None)

    async def open_stream(self, op: int, payload: bytes) -> int:
        """Send a streaming request; frames are pulled with next_frame."""
        rid = next(self._ids)
        self._pending[rid] = asyncio.Queue()
        await self._send(rid, op, payload)
        return rid

    async def next_frame(self, rid: int) -> tuple[int, bytes]:
        queue = self._pending.get(rid)
        if queue is None:
            return (_CLOSED, b"")
        return await queue.get()

    async def release(self, rid: int) -> None:
        """Forget a stream whose terminal frame was already consumed."""
        self._pending.pop(rid, None)

    async def drain_stream(self, rid: int) -> None:
        """Consume an abandoned stream's remaining frames, then forget it.

        Mirrors the in-process semantics of abandoning the server's
        chunk generator: whatever the server still sends for this
        request id is discarded *without* fault-transport draws, so the
        seeded schedule stays aligned with the in-process run.
        """
        queue = self._pending.get(rid)
        if queue is None:
            return
        try:
            while True:
                op, _ = await queue.get()
                if op in (OP_END, OP_ERROR, _CLOSED):
                    return
        finally:
            self._pending.pop(rid, None)


class ServingConnection:
    """Blocking facade over :class:`AsyncServingClient`.

    Owns a private event loop on a daemon thread; every public method is
    safe to call from any (single) client thread.  The fault transport
    is applied here — on the calling thread, in the order payloads are
    produced/consumed — keeping a stateful seeded channel single-threaded.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        channel: Channel | None = None,
        timeout: float = 60.0,
        keyring: "ClientKeyring | None" = None,
        hosted: "object | None" = None,
    ) -> None:
        self.transport = AsyncFaultTransport(channel)
        self._timeout = timeout
        # Owner-side state for sealed control commands (update, flush,
        # stats): the session keys and the live (epoch, root) anchor.
        # Optional — a connection without them can still run the sealed
        # query paths, whose blobs the caller seals itself.
        self._keyring = keyring
        self._hosted = hosted
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"serving-client-{tenant}",
            daemon=True,
        )
        self._thread.start()
        self._closed = False
        self._close_lock = threading.Lock()
        try:
            self._client = self._run(
                AsyncServingClient.open(host, port, tenant)
            )
        except BaseException:
            self._shutdown_loop()
            raise
        self.hello = self._client.hello

    def _run(self, coro):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(self._timeout)
        except _FutureTimeoutError:
            # Cancel the coroutine on the client loop so its finally
            # blocks run (dropping the _pending entry) — otherwise the
            # abandoned call sits on queue.get forever and a late frame
            # for its request id could be mis-delivered later.
            future.cancel()
            raise RequestTimeoutError(
                f"no response within {self._timeout}s"
            ) from None

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------
    def call(self, op: int, payload: bytes) -> bytes:
        """One request/response; fault-transported iff ``op`` is data-plane."""
        faulted = op in FAULTED_OPS
        if faulted:
            payload = self.transport.outbound("query", payload)
        data = self._run(self._client.call(op, payload))
        if faulted:
            data = self.transport.inbound("answer", data)
        return data

    def stream(
        self, request_blob: bytes, chunk_fragments: int
    ) -> Iterator[bytes]:
        """Streamed query: yields sealed chunks as they arrive.

        The request blob is faulted *before* the ``chunk_fragments``
        prefix is attached (the prefix is transport metadata the
        in-process path doesn't have, and per-transfer RNG draws depend
        on payload size).  Chunks are faulted lazily as the consumer
        pulls them; once the consumer abandons the generator (or a
        chunk transfer drops), the remaining frames are drained without
        further transport draws — the in-process equivalent abandons the
        server's generator and performs no further transfers.
        """
        blob = self.transport.outbound("query", request_blob)
        payload = chunk_fragments.to_bytes(4, "big") + blob
        rid = self._run(self._client.open_stream(OP_QUERY_STREAM, payload))
        terminated = False
        try:
            while True:
                op, data = self._run(self._client.next_frame(rid))
                if op == _CLOSED:
                    terminated = True
                    raise ConnectionClosedError("connection lost mid-stream")
                if op == OP_ERROR:
                    terminated = True
                    raise decode_error(data)
                if op == OP_END:
                    terminated = True
                    break
                if op != OP_CHUNK:
                    terminated = True
                    raise ProtocolError(
                        f"unexpected opcode {op} in stream {rid}"
                    )
                yield self.transport.inbound("answer", data)
        finally:
            if terminated:
                self._run(self._client.release(rid))
            else:
                self._run(self._client.drain_stream(rid))

    def sealed_call(self, op: int, command: dict) -> bytes:
        """Issue a freshness-sealed control command; returns the
        verified response payload.

        The command JSON gains a random nonce (so two identical logical
        commands seal to distinct blobs — the server's replay dedup
        keys on the seal's MAC tag) and is sealed at the live anchor;
        losing the anchor race to a concurrent writer re-seals against
        the moved epoch, a bounded number of times.  The response must
        verify under the tenant's response key.
        """
        if self._keyring is None or self._hosted is None:
            raise ServingError(
                "connection opened without keyring/hosted state; sealed "
                "control commands need both (see remote_system)"
            )
        request_key, response_key = self._keyring.session_keys()
        payload = json.dumps(
            {**command, "nonce": secrets.token_hex(16)}, sort_keys=True
        ).encode("utf-8")
        last: FreshnessError | None = None
        for _ in range(_COMMAND_RESEAL_ATTEMPTS):
            epoch, root = self._hosted.anchor()
            blob = seal_fresh(request_key, payload, epoch, root)
            try:
                sealed = self.call(op, blob)
            except FreshnessError as exc:
                last = exc
                continue
            return unseal(
                response_key, sealed, error=TamperedResponseError
            )
        assert last is not None
        raise last

    def stats(self) -> dict:
        sealed = self.sealed_call(OP_STATS, {"op": "stats"})
        return json.loads(sealed.decode("utf-8"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._run(self._client.close())
        finally:
            self._shutdown_loop()

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self._timeout)
        self._loop.close()

    def __enter__(self) -> "ServingConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteServer:
    """The monolithic ``Server`` wire surface, proxied over a connection.

    Implements exactly the four methods the secure pipeline calls on
    ``system.server`` plus the attributes the system constructor touches,
    so a :class:`~repro.core.system.SecureXMLSystem` cannot tell it from
    a local server.
    """

    def __init__(self, connection: ServingConnection) -> None:
        self._connection = connection
        self.backend = connection.hello.get("backend", "object")
        self._obs = None  # assigned by SecureXMLSystem.__init__

    def answer_wire(self, request_blob: bytes) -> bytes:
        return self._connection.call(OP_QUERY, request_blob)

    def answer_wire_stream(
        self, request_blob: bytes, chunk_fragments: int = 8
    ) -> Iterator[bytes]:
        return self._connection.stream(request_blob, chunk_fragments)

    def ship_all_wire(self, request_blob: bytes) -> bytes:
        return self._connection.call(OP_NAIVE, request_blob)

    def flush_caches(self) -> None:
        self._connection.sealed_call(OP_FLUSH, {"op": "flush"})


class RemoteSecureXMLSystem(SecureXMLSystem):
    """A system whose server half lives behind the socket.

    Queries need no overriding at all — the inherited pipeline calls the
    :class:`RemoteServer` proxy and verifies everything itself.  Updates
    are overridden to travel as sealed commands, and ``close`` also
    closes the connection (idempotently — a serving drain can race it).
    """

    _connection: ServingConnection | None = None

    # ------------------------------------------------------------------
    # Updates over the wire
    # ------------------------------------------------------------------
    def insert_element(self, parent_xpath: str, tag: str, value: str) -> None:
        self._remote_update(
            {
                "op": "insert_element",
                "parent_xpath": parent_xpath,
                "tag": tag,
                "value": value,
            }
        )

    def delete_element(self, xpath: str) -> None:
        self._remote_update({"op": "delete_element", "xpath": xpath})

    def update_value(self, xpath: str, new_value: str) -> None:
        self._remote_update(
            {"op": "update_value", "xpath": xpath, "new_value": new_value}
        )

    def _remote_update(self, op: dict) -> None:
        connection = self._connection
        assert connection is not None, "remote system has no connection"
        # sealed_call binds a fresh nonce, seals at the live anchor and
        # re-seals after losing an anchor race to a concurrent writer.
        ack = connection.sealed_call(OP_UPDATE, op)
        json.loads(ack.decode("utf-8"))  # malformed ack → typed error
        self._refresh_client()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        super().close()
        connection = self._connection
        if connection is not None:
            connection.close()


def remote_system(
    local: SecureXMLSystem,
    address: tuple[str, int],
    tenant: str,
    channel: Channel | None = None,
    parallel: "ParallelConfig | bool | int | None" = False,
    observability: "object | None" = None,
    timeout: float = 60.0,
) -> RemoteSecureXMLSystem:
    """Build the owner's remote handle onto a served tenant.

    ``local`` is the owner's system for the same tenant — the remote
    handle shares its hosted state and keyring (the owner *is* the same
    party on both ends; what moves to the far side of the socket is the
    untrusted server half).  ``channel`` is the netsim channel applied
    at the socket boundary: default accounting-only, ``NullChannel()``
    for free transfers, a ``FaultyChannel`` for chaos over live sockets.

    ``parallel`` defaults to ``False`` (the exact serial pipeline) —
    note the parallel engine *streams* responses, which changes the
    transfer sequence a seeded fault schedule sees, so fault-parity
    comparisons must pin the same ``parallel`` setting on both systems.
    """
    host, port = address
    connection = ServingConnection(
        host, port, tenant, channel=channel, timeout=timeout,
        keyring=local.keyring, hosted=local.hosted,
    )
    config = ParallelConfig.coerce(parallel)
    pool = WorkerPool(config) if config.enabled else None
    remote = RemoteSecureXMLSystem(
        client=Client(local.keyring, local.hosted, enable_cache=local.fast_path),
        server=RemoteServer(connection),
        hosted=local.hosted,
        scheme=local.scheme,
        channel=NullChannel(),
        hosting_trace=local.hosting_trace,
        keyring=local.keyring,
        fast_path=local.fast_path,
        retry_policy=local.retry_policy,
        parallel=config,
        pool=pool,
        observability=observability,
        cluster=False,  # never coordinator-side: the far end shards, not us
        backend=local.backend,
        # Never client-side either: decoy/padding fetches happen where
        # the storage is — the served tenant system — and REPRO_LEAKAGE
        # must not make this proxy try to attach a tier to RemoteServer.
        leakage=False,
    )
    remote._connection = connection
    return remote
