"""Client-side query translation (§6.1, Figure 7).

The client turns a plaintext XPath query into the encrypted query ``Qs``
sent to the server: tags that appear inside encryption blocks are replaced
by their Vernam tokens ("with the same keys used for the construction of
[the] DSI index table"), and every value predicate on an encrypted field is
rewritten into one or more ciphertext key ranges using the OPESS plan
(Figure 7a).  The structure of the query — the twig — is preserved.

A tag can occur both inside and outside blocks (e.g. ``disease`` under the
``sub`` scheme where only some subtrees are encrypted); translated nodes
therefore carry a *set* of lookup keys.  The plaintext tag is included only
when plaintext occurrences exist — a purely-encrypted tag never crosses the
wire in the clear.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.opess import FieldPlan, KeyRange, translate_predicate
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.vernam import DeterministicTagCipher
from repro.perf import counters
from repro.xpath.compiler import PatternNode, PatternTree, UnsupportedQuery


@dataclass
class TranslatedNode:
    """One pattern node of the encrypted query ``Qs``."""

    #: DSI-table lookup keys; empty tuple = wildcard (match any entry)
    keys: tuple[str, ...]
    axis: str
    children: list["TranslatedNode"] = field(default_factory=list)
    #: ciphertext key ranges for the value constraint (encrypted side)
    value_ranges: Optional[list[KeyRange]] = None
    #: B-tree to consult for the ranges (the encrypted field name)
    value_field_token: Optional[str] = None
    #: (op, literal) for plaintext occurrences of the constrained field
    plaintext_predicate: Optional[tuple[str, str]] = None
    is_output: bool = False
    is_ship_node: bool = False
    #: the source step carried a positional predicate: the matchers must
    #: not prune this node's own candidate list bottom-up (the client
    #: needs the complete per-parent list to resolve ``[n]``/``last()``)
    position_sensitive: bool = False

    @property
    def is_wildcard(self) -> bool:
        return not self.keys

    @property
    def has_value_constraint(self) -> bool:
        return self.value_ranges is not None or self.plaintext_predicate is not None

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (for channel accounting)."""
        size = sum(len(key) for key in self.keys) + len(self.axis) + 8
        if self.value_ranges is not None:
            size += 16 * len(self.value_ranges)
        if self.value_field_token:
            size += len(self.value_field_token)
        if self.plaintext_predicate:
            size += len(self.plaintext_predicate[0]) + len(
                self.plaintext_predicate[1]
            )
        return size + sum(child.wire_size() for child in self.children)


@dataclass
class TranslatedQuery:
    """The encrypted query ``Qs``: a translated pattern tree."""

    root: TranslatedNode
    output: TranslatedNode
    ship_node: TranslatedNode
    #: additional ship nodes for axis-engine plans: the server ships the
    #: union of every ship node's surviving matches (its nested-fragment
    #: drop deduplicates overlaps)
    extra_ship_nodes: list[TranslatedNode] = field(default_factory=list)
    #: which lowering produced this plan ("twig" | "axis" | "residual");
    #: client-side metadata only — it never crosses the wire
    plan_kind: str = "twig"
    #: why the legacy twig lowering was bypassed, for explain/tracing
    plan_reason: Optional[str] = None

    @property
    def ship_nodes(self) -> list[TranslatedNode]:
        return [self.ship_node, *self.extra_ship_nodes]

    def wire_size(self) -> int:
        return self.root.wire_size()


class PlanCache:
    """LRU cache of translated query plans, keyed by (xpath, epoch).

    Translating a query re-derives Vernam tokens and OPESS key ranges —
    pure functions of the client's static knowledge — so a repeated
    query string under an unchanged scheme epoch can reuse the plan
    verbatim.  Plans are immutable after translation; sharing one object
    across executions is safe.  Keying on the epoch makes invalidation
    free: an update bumps the epoch and every older entry simply stops
    being reachable (the LRU eviction reclaims it).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self._capacity = capacity
        self._plans: OrderedDict[tuple[str, int], TranslatedQuery] = (
            OrderedDict()
        )

    def get(self, xpath: str, epoch: int) -> Optional[TranslatedQuery]:
        plan = self._plans.get((xpath, epoch))
        if plan is None:
            counters.add("plan_cache_misses")
            return None
        self._plans.move_to_end((xpath, epoch))
        counters.add("plan_cache_hits")
        return plan

    def put(self, xpath: str, epoch: int, plan: TranslatedQuery) -> None:
        self._plans[(xpath, epoch)] = plan
        self._plans.move_to_end((xpath, epoch))
        while len(self._plans) > self._capacity:
            self._plans.popitem(last=False)

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


class QueryTranslator:
    """Holds the client knowledge needed to translate queries."""

    def __init__(
        self,
        tag_cipher: DeterministicTagCipher,
        ope: OrderPreservingEncryption,
        encrypted_tags: set[str],
        plaintext_keys: set[str],
        field_plans: dict[str, FieldPlan],
        field_tokens: dict[str, str],
    ) -> None:
        self._tag_cipher = tag_cipher
        self._ope = ope
        self._encrypted_tags = encrypted_tags
        self._plaintext_keys = plaintext_keys
        self._field_plans = field_plans
        self._field_tokens = field_tokens

    def translate(self, pattern: PatternTree) -> TranslatedQuery:
        """Translate a compiled pattern into the encrypted query."""
        if len(pattern.roots) != 1:
            raise UnsupportedQuery("pattern must have a single root")
        mapping: dict[int, TranslatedNode] = {}
        root = self._translate_node(pattern.roots[0], mapping)
        output = mapping[id(pattern.output)]
        if pattern.ship_roots:
            # Axis-engine plan: ship the union of the computed ship set.
            ships = [mapping[id(node)] for node in pattern.ship_roots]
        else:
            ships = [mapping[id(_ship_node(pattern))]]
        for ship in ships:
            ship.is_ship_node = True
        return TranslatedQuery(
            root=root,
            output=output,
            ship_node=ships[0],
            extra_ship_nodes=ships[1:],
        )

    def _translate_node(
        self, node: PatternNode, mapping: dict[int, "TranslatedNode"]
    ) -> TranslatedNode:
        translated = TranslatedNode(
            keys=self._translate_test(node.test),
            axis=node.axis,
            is_output=node.is_output,
            position_sensitive=node.position_sensitive,
        )
        if node.value_constraint is not None:
            self._translate_constraint(node, translated)
        mapping[id(node)] = translated
        for child in node.children:
            translated.children.append(self._translate_node(child, mapping))
        return translated

    def _translate_test(self, test: str) -> tuple[str, ...]:
        if test in ("*", "@*"):
            return ()
        keys: list[str] = []
        if test in self._plaintext_keys:
            keys.append(test)
        if test in self._encrypted_tags:
            keys.append(self._tag_cipher.encrypt_tag(test))
        if not keys:
            # Unknown tag: send it in the clear; the lookup will miss.  A
            # tag absent from the data reveals nothing sensitive.
            keys.append(test)
        return tuple(keys)

    def _translate_constraint(
        self, node: PatternNode, translated: TranslatedNode
    ) -> None:
        assert node.value_constraint is not None
        op, literal = node.value_constraint
        if node.is_wildcard:
            raise UnsupportedQuery(
                "value constraints on wildcard nodes are client-only"
            )
        field_name = node.test
        plan = self._field_plans.get(field_name)
        if plan is not None:
            translated.value_ranges = translate_predicate(
                plan, op, literal, self._ope
            )
            translated.value_field_token = self._field_tokens[field_name]
        if field_name in self._plaintext_keys:
            # Plaintext occurrences exist; their values are public on the
            # server already, so a clear predicate gives nothing away that
            # the hosted data doesn't.
            translated.plaintext_predicate = (op, literal)
        if plan is None and field_name not in self._plaintext_keys:
            # Constraint on a field with no data: nothing can match.
            translated.value_ranges = []
            translated.value_field_token = self._tag_cipher.encrypt_tag(
                field_name
            )


def _ship_node(pattern: PatternTree) -> PatternNode:
    """Pick the subtree root the server should ship fragments for.

    The deepest *spine* node whose subtree still contains every constrained
    or branching pattern node and the output node.  Shipping that node's
    matches gives the client enough context to re-evaluate the query
    exactly (value predicates are only block-granular on the server), while
    the pure tag path above it is verified exactly by the structural join.
    """
    spine: list[PatternNode] = []
    node = pattern.spine_root
    while True:
        spine.append(node)
        onward = [
            child
            for child in node.children
            if _contains_output(child, pattern.output)
        ]
        if not onward:
            break
        node = onward[0]

    for index, spine_node in enumerate(spine):
        next_on_spine = spine[index + 1] if index + 1 < len(spine) else None
        branches = [
            child
            for child in spine_node.children
            if child is not next_on_spine
        ]
        if spine_node.value_constraint is not None or branches:
            return spine_node
    return spine[-1]


def _contains_output(node: PatternNode, output: PatternNode) -> bool:
    return any(candidate is output for candidate in node.walk())
