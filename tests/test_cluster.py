"""The sharded cluster: placement, byte-identity, failover, update routing.

The contract under test is the coordinator's core promise: at any
(shards, replicas) the scatter–gather answer — fragments, counts, bytes —
is **byte-identical** to the single-server path, updates keep it that
way while only bumping the shards they can reach, and a failing replica
either fails over to an exact answer or surfaces the typed
:class:`ClusterDegradedError`; a wrong answer is never an option.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDegradedError,
    ShardEpochs,
    build_placement,
)
from repro.cluster.placement import blocks_of_shard
from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.netsim.faults import FaultPolicy
from repro.workloads.queries import QueryWorkload
from repro.xpath.compiler import UnsupportedQuery

#: the acceptance grid: monolithic-equivalent baseline, plain sharding,
#: sharding with replication
SWEEP = (
    ClusterConfig(shards=1, replicas=1),
    ClusterConfig(shards=2, replicas=1),
    ClusterConfig(shards=4, replicas=2),
)

#: span name → trace attribute, as pinned by tests/test_obs.py
STAGES = (
    ("translate", "translate_client_s"),
    ("server", "server_s"),
    ("transfer", "transfer_s"),
    ("decrypt", "decrypt_client_s"),
    ("postprocess", "postprocess_client_s"),
    ("backoff", "backoff_s"),
)


def workload_queries(document, constraints, per_class: int = 3) -> list[str]:
    """Server-evaluable queries drawn from the shared generator."""
    probe = SecureXMLSystem.host(document, constraints, scheme="opt")
    queries: list[str] = []
    for batch in QueryWorkload(
        document, seed=23, per_class=per_class
    ).by_class().values():
        for query in batch:
            try:
                probe.client.translate(query)
            except UnsupportedQuery:
                continue
            if query not in queries:
                queries.append(query)
    assert queries
    return queries


# ----------------------------------------------------------------------
# Placement: deterministic, seed-stable, a true partition
# ----------------------------------------------------------------------
class TestPlacement:
    @pytest.fixture
    def hosted(self, healthcare_doc, healthcare_scs):
        return SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        ).hosted

    def test_same_seed_same_placement(self, hosted):
        config = ClusterConfig(shards=4, seed=7)
        first = build_placement(hosted, config)
        second = build_placement(hosted, config)
        assert first.signature() == second.signature()

    def test_seed_changes_assignment(self, hosted):
        base = build_placement(hosted, ClusterConfig(shards=4, seed=0))
        shuffled = build_placement(hosted, ClusterConfig(shards=4, seed=1))
        assert base.signature() != shuffled.signature()

    def test_every_entry_in_exactly_one_group(self, hosted):
        placement = build_placement(hosted, ClusterConfig(shards=4))
        total = sum(group.entry_count for group in placement.groups)
        assert total == len(hosted.structural_index.entries)

    def test_blocks_partition_across_shards(self, hosted):
        config = ClusterConfig(shards=4)
        placement = build_placement(hosted, config)
        owned = [
            blocks_of_shard(hosted, placement, shard)
            for shard in range(config.shards)
        ]
        union: set[int] = set()
        for block_ids in owned:
            assert not (union & block_ids), "a block owned by two shards"
            union |= block_ids
        assert union == set(hosted.structural_index.block_table)

    def test_groups_of_shard_cover_all_groups(self, hosted):
        config = ClusterConfig(shards=3)
        placement = build_placement(hosted, config)
        seen = [
            group.group_id
            for shard in range(config.shards)
            for group in placement.groups_of_shard(shard)
        ]
        assert sorted(seen) == list(range(placement.group_count()))

    def test_placement_stable_across_inserts(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4),
        )
        placement = system.coordinator.placement
        before = placement.signature()
        system.insert_element(
            "//patient[pname='Matt']", "phone", "555-1234"
        )
        assert placement.signature() == before
        # Every post-insert entry — including the gap-drawn one — still
        # resolves to a live group.
        for entry in system.hosted.structural_index.entries:
            group = placement.group_of_low(entry.interval.low)
            assert 0 <= group < placement.group_count()


# ----------------------------------------------------------------------
# Byte-identity across the (shards, replicas) sweep, three workloads
# ----------------------------------------------------------------------
class TestByteIdentity:
    def assert_identical(self, document, constraints, queries):
        monolithic = SecureXMLSystem.host(
            document, constraints, scheme="opt", cluster=False
        )
        reference = [
            (monolithic.query(q).canonical(),
             monolithic.last_trace.blocks_returned)
            for q in queries
        ]
        for config in SWEEP:
            system = SecureXMLSystem.host(
                document, constraints, scheme="opt", cluster=config
            )
            for query, (answer, blocks) in zip(queries, reference):
                got = system.query(query)
                assert got.canonical() == answer, (config, query)
                assert system.last_trace.blocks_returned == blocks
                assert system.last_trace.cluster_shards == config.shards
            # Warm repeat: caches serve, bytes must not change.
            for query, (answer, _) in zip(queries, reference):
                assert system.query(query).canonical() == answer

    def test_healthcare(self, healthcare_doc, healthcare_scs):
        queries = ["//patient/SSN", "//pname", "//patient/treat/disease"]
        self.assert_identical(healthcare_doc, healthcare_scs, queries)

    def test_xmark(self, xmark_doc, xmark_scs):
        self.assert_identical(
            xmark_doc, xmark_scs, workload_queries(xmark_doc, xmark_scs)
        )

    def test_nasa(self, nasa_doc, nasa_scs):
        self.assert_identical(
            nasa_doc, nasa_scs, workload_queries(nasa_doc, nasa_scs)
        )

    def test_naive_path_matches(self, healthcare_doc, healthcare_scs):
        monolithic = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=False
        )
        clustered = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        query = "//patient/SSN"
        assert (
            clustered.naive_query(query).canonical()
            == monolithic.naive_query(query).canonical()
        )

    def test_spans_reconcile_with_trace(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        for query in ("//patient/SSN", "//pname"):
            system.query(query)
            trace = system.last_trace
            root = trace.span
            assert root is not None and root.duration_s is not None
            for span_name, attr in STAGES:
                assert root.total(span_name) == pytest.approx(
                    getattr(trace, attr), abs=0.001
                ), span_name
            assert root.total("gather") >= 0.0
            scatter = root.find("scatter")
            assert scatter is not None
            assert scatter.annotations["shards"] == 4


# ----------------------------------------------------------------------
# Failover: exact answer or typed error, never something in between
# ----------------------------------------------------------------------
class TestFailover:
    QUERIES = ("//patient/SSN", "//pname", "//patient/treat/disease")

    def host(self, document, constraints, config, faults):
        return SecureXMLSystem.host(
            document, constraints, scheme="opt",
            cluster=config, cluster_faults=faults,
        )

    def test_dead_primary_fails_over_exactly(
        self, healthcare_doc, healthcare_scs
    ):
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=False
        )

        def faults(shard_id, replica_id):
            if replica_id == 0:
                return FaultPolicy.symmetric(seed=shard_id, drop=1.0)
            return None

        system = self.host(
            healthcare_doc, healthcare_scs,
            ClusterConfig(shards=2, replicas=2), faults,
        )
        for query in self.QUERIES:
            assert (
                system.query(query).canonical()
                == reference.query(query).canonical()
            )
        assert system.last_trace.cluster_failovers > 0

    @pytest.mark.parametrize("rate", [0.2, 0.35])
    def test_seeded_fault_sweep_exact_or_typed(
        self, healthcare_doc, healthcare_scs, rate
    ):
        """Lossy replicas on *every* shard: answers stay exact or typed."""
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=False
        )

        def faults(shard_id, replica_id, _rate=rate):
            return FaultPolicy.symmetric(
                seed=31 * shard_id + replica_id, drop=_rate, corrupt=_rate
            )

        system = self.host(
            healthcare_doc, healthcare_scs,
            ClusterConfig(shards=4, replicas=2), faults,
        )
        answered = 0
        for query in self.QUERIES * 3:
            try:
                answer = system.query(query)
            except QueryFailedError:
                continue
            answered += 1
            assert (
                answer.canonical() == reference.query(query).canonical()
            )
        assert answered > 0, "every exchange failed at a survivable rate"

    def test_all_replicas_dead_raises_typed_error(
        self, healthcare_doc, healthcare_scs
    ):
        def faults(shard_id, replica_id):
            return FaultPolicy.symmetric(
                seed=shard_id + replica_id, drop=1.0
            )

        system = self.host(
            healthcare_doc, healthcare_scs,
            ClusterConfig(shards=2, replicas=2), faults,
        )
        with pytest.raises(ClusterDegradedError) as excinfo:
            system.query("//patient/SSN")
        assert isinstance(excinfo.value, QueryFailedError)

    def test_surviving_replica_per_shard_suffices(
        self, healthcare_doc, healthcare_scs
    ):
        """≥1 clean replica per shard → exact answers at a harsh rate."""
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=False
        )

        def faults(shard_id, replica_id):
            if replica_id == 1:
                return None  # the survivor
            return FaultPolicy.symmetric(seed=shard_id, drop=0.8)

        system = self.host(
            healthcare_doc, healthcare_scs,
            ClusterConfig(shards=4, replicas=2), faults,
        )
        for query in self.QUERIES:
            assert (
                system.query(query).canonical()
                == reference.query(query).canonical()
            )


# ----------------------------------------------------------------------
# Update routing: partial epoch bumps, fresh answers afterwards
# ----------------------------------------------------------------------
class TestUpdateRouting:
    def pending_flushes(self, system) -> list[int]:
        """Per-shard count of replicas with a flush still pending."""
        return [
            sum(
                1
                for replica in replica_set.replicas
                if replica.server.shard_epoch != replica.server._cache_epoch
            )
            for replica_set in system.coordinator.replica_sets
        ]

    def warm(self, system, queries) -> None:
        for query in queries:
            system.query(query)

    def test_narrow_update_bumps_a_proper_subset(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4),
        )
        queries = ("//patient/SSN", "//pname")
        self.warm(system, queries)
        assert self.pending_flushes(system) == [0, 0, 0, 0]
        system.update_value("//patient[pname='Matt']/pname", "Matthew")
        pending = self.pending_flushes(system)
        assert any(pending), "no shard was invalidated"
        assert not all(pending), (
            "a narrow leaf update invalidated every shard"
        )

    def test_updates_stay_byte_identical(
        self, healthcare_doc, healthcare_scs
    ):
        monolithic = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", cluster=False
        )
        clustered = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        queries = ("//patient/SSN", "//pname", "//phone")
        for system in (monolithic, clustered):
            self.warm(system, queries)
            system.insert_element(
                "//patient[pname='Matt']", "phone", "555-1234"
            )
            system.update_value("//patient[pname='Matt']/pname", "Matthew")
        for query in queries + ("//patient[pname='Matthew']/pname",):
            assert (
                clustered.query(query).canonical()
                == monolithic.query(query).canonical()
            ), query
        for system in (monolithic, clustered):
            system.delete_element("//patient[pname='Matthew']/phone")
        for query in queries:
            assert (
                clustered.query(query).canonical()
                == monolithic.query(query).canonical()
            ), query

    def test_epoch_serial_and_stamps(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt",
            cluster=ClusterConfig(shards=4),
        )
        epochs = system.coordinator.epochs
        assert epochs.serial == 0
        system.update_value("//patient[pname='Matt']/pname", "Matthew")
        assert epochs.serial == 1
        stamped = [s for s in range(4) if epochs.stamps[s] == 1]
        assert stamped, "update stamped no shard"
        assert epochs.freshest_shard() == stamped[0]

    def test_shard_epochs_unit(self):
        epochs = ShardEpochs(3)
        epochs.bump([2])
        assert epochs.freshest_shard() == 2
        epochs.bump([0, 1])
        assert epochs.serial == 2
        assert epochs.freshest_shard() == 0


# ----------------------------------------------------------------------
# System knobs: coerce table and the env fallback
# ----------------------------------------------------------------------
class TestConfigKnobs:
    @pytest.mark.parametrize(
        ("value", "expected_shards"),
        [
            (False, None),
            (True, 2),
            (0, None),
            (1, None),
            (3, 3),
            (ClusterConfig(shards=1), 1),
            (ClusterConfig(shards=5, replicas=2), 5),
        ],
    )
    def test_coerce_table(self, value, expected_shards):
        config = ClusterConfig.coerce(value)
        if expected_shards is None:
            assert config is None
        else:
            assert config is not None and config.shards == expected_shards

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_REPLICAS", "2")
        config = ClusterConfig.coerce(None)
        assert config == ClusterConfig(shards=4, replicas=2)
        monkeypatch.setenv("REPRO_SHARDS", "1")
        assert ClusterConfig.coerce(None) is None

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, replicas=0)
        with pytest.raises(TypeError):
            ClusterConfig.coerce("four")

    def test_legacy_path_has_no_coordinator(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, cluster=False
        )
        assert system.coordinator is None
        trace_query = system.query("//patient/SSN")
        assert trace_query is not None
        assert system.last_trace.cluster_shards == 0
