"""Performance instrumentation for the hot paths.

The paper's §7 evaluation breaks query cost into stages; this package adds
the *mechanistic* layer underneath those stage timings: counters for the
operations that dominate each stage (block decryptions, AES key
expansions) and for the caches that elide them (query-plan cache,
server fragment cache, client decrypted-block cache, per-tag interval
arrays).  The global :data:`counters` registry is cheap enough to leave
enabled unconditionally; benchmarks and tests read deltas around the
region they measure.

Usage::

    from repro.perf import counters

    before = counters.snapshot()
    system.execute_many(queries)
    print(counters.delta_since(before))
"""

from repro.perf.counters import PerfCounters, counters

__all__ = ["PerfCounters", "counters"]
