"""Workloads: the paper's running example plus the two evaluation datasets.

* :mod:`repro.workloads.healthcare` — the Figure 2 hospital database and
  the Example 3.1 security constraints, reproduced exactly.
* :mod:`repro.workloads.xmark` — a seeded XMark-like auction-site generator
  (the paper's synthetic dataset) with the Figure 8(a) constraint graph.
* :mod:`repro.workloads.nasa` — a seeded NASA-like astronomy dataset
  generator (the paper's real dataset) with the Figure 8(b) constraint
  graph.
* :mod:`repro.workloads.queries` — the Qs / Qm / Ql query classes of §7.1.
"""
