"""Keyed PRF / PRG and deterministic randomness helpers.

Several pieces of the system need *keyed, reproducible* randomness:

* the DSI index draws the gap weights ``w1, w2`` per node (§5.1, "generated
  at random before assigning an interval", known only to the client);
* OPESS draws the splitting displacements ``w_i`` and the scale factors
  ``s_i`` (§5.2.1);
* decoy values are "randomly generated data values" (§4.1).

All of them use :class:`DeterministicRandom`, a counter-mode PRG over
HMAC-SHA256, so a client keyring reproduces the exact same hosted database
and metadata from the same master key — which is what makes query
translation on the client line up with the index on the server.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256


class PRF:
    """A keyed pseudo-random function ``bytes -> 32 bytes``."""

    def __init__(self, key: bytes) -> None:
        self._key = bytes(key)

    def __call__(self, message: bytes) -> bytes:
        return hmac_sha256(self._key, message)

    def integer(self, message: bytes, bits: int = 64) -> int:
        """PRF output truncated to an unsigned ``bits``-bit integer."""
        if not 0 < bits <= 256:
            raise ValueError("bits must be in (0, 256]")
        digest = self(message)
        return int.from_bytes(digest, "big") >> (256 - bits)


class DeterministicRandom:
    """Counter-mode PRG exposing a ``random``-like interface.

    The stream is a function of ``(key, stream_label)`` only.  Distinct
    labels give independent streams from the same key, which is how the
    keyring hands out per-purpose randomness.  The stream cipher is
    SipHash-2-4 in counter mode (the key is folded with the label through
    HMAC-SHA256 first), trading the hash's conservative margin for the
    ~50× speed the hosting pipeline needs from its weight/decoy streams.
    """

    def __init__(self, key: bytes, stream_label: str = "") -> None:
        from repro.crypto.siphash import SipPRF

        folded = hmac_sha256(key, b"drbg:" + stream_label.encode("utf-8"))
        self._prf = SipPRF(folded[:16])
        self._counter = 0
        self._buffer = b""

    def _refill(self) -> None:
        block = self._prf.block(self._counter.to_bytes(8, "big"))
        self._counter += 1
        self._buffer += block

    def bytes(self, count: int) -> bytes:
        """Next ``count`` bytes of the stream."""
        if count < 0:
            raise ValueError("count must be non-negative")
        while len(self._buffer) < count:
            self._refill()
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        return out

    def uint(self, bits: int = 64) -> int:
        """Next unsigned integer with the given bit width."""
        byte_count = (bits + 7) // 8
        value = int.from_bytes(self.bytes(byte_count), "big")
        return value >> (byte_count * 8 - bits)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Next float uniform in ``[low, high)`` (53-bit resolution)."""
        fraction = self.uint(53) / (1 << 53)
        return low + fraction * (high - low)

    def randint(self, low: int, high: int) -> int:
        """Next integer uniform in the inclusive range ``[low, high]``.

        Uses rejection sampling so the distribution is exactly uniform.
        """
        if low > high:
            raise ValueError("low must be <= high")
        span = high - low + 1
        bits = max(1, span.bit_length())
        while True:
            candidate = self.uint(bits)
            if candidate < span:
                return low + candidate

    def choice(self, items: list):
        """Pick one item uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty list")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for index in range(len(items) - 1, 0, -1):
            swap = self.randint(0, index)
            items[index], items[swap] = items[swap], items[index]

    def token(self, length: int = 8, alphabet: str = "abcdefghijklmnopqrstuvwxyz") -> str:
        """A random string over ``alphabet`` (used for decoy values)."""
        return "".join(
            alphabet[self.randint(0, len(alphabet) - 1)] for _ in range(length)
        )
