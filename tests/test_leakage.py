"""Access-pattern leakage tier: traces, countermeasures, accounting.

Four invariant families:

* **Policy plumbing** — every spelling of ``leakage=`` (env var, CLI
  string, dataclass, shared context) lands on the same policy, and bad
  specs fail loudly.
* **Block accounting** (the bugfix) — ``blocks_shipped`` equals the
  number of encrypted-block markers actually present in the shipped
  fragments, on the fast path, the naive path, and across a cluster.
* **Trace determinism** — the same seed produces byte-identical fetch
  traces across backends, cluster shapes, engine schedules and runs.
* **Byte-identity & hygiene** — the full countermeasure set changes no
  answer byte on any path and pollutes no cache counter.
"""

import pytest

from repro.cluster.placement import ClusterConfig
from repro.core.leakage import (
    LeakageContext,
    LeakagePolicy,
    ObservedTrace,
    leakage_stream,
)
from repro.core.system import SecureXMLSystem
from repro.perf import counters
from repro.security.leakage import TraceClusteringAttack, run_leakage_game
from repro.serving import ServingServer, remote_system
from repro.xmldb.parser import ENCRYPTED_DATA_TAG

QUERIES = (
    "//patient",
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//insurance/policy#",
    "//SSN",
)

FULL = LeakagePolicy.full(seed=3)

#: Axis-engine plans: multi-node ship sets, reverse/order joins,
#: positional completeness, a residual plan.  The leakage gates must
#: hold for these exactly as for the downward fragment — the new axes
#: reuse the same sealed-fragment wire path, so pad/decoy/shuffle apply
#: unchanged.
AXIS_QUERIES = (
    "//age/ancestor::patient",
    "//treat/following-sibling::insurance",
    "//disease/preceding::pname",
    "//pname/..",
    "/hospital/patient[1]/pname",
    "//patient/descendant-or-self::patient",
    "//age/namespace::*",
)


def host(doc, scs, **kwargs):
    return SecureXMLSystem.host(doc, scs, scheme="opt", **kwargs)


# ----------------------------------------------------------------------
# Policy parsing and coercion
# ----------------------------------------------------------------------
class TestPolicy:
    def test_full_enables_everything(self):
        policy = LeakagePolicy.full()
        assert policy.masks_fetches and policy.shuffle and policy.enabled

    def test_default_is_record_only(self):
        policy = LeakagePolicy()
        assert not policy.enabled and not policy.masks_fetches

    @pytest.mark.parametrize("spec", ["", "off", "record"])
    def test_parse_record_only(self, spec):
        assert LeakagePolicy.parse(spec) == LeakagePolicy()

    def test_parse_full(self):
        assert LeakagePolicy.parse("full") == LeakagePolicy.full()

    def test_parse_knobs(self):
        policy = LeakagePolicy.parse("pad=4, decoys=9, shuffle=1, seed=17")
        assert policy == LeakagePolicy(
            pad_to=4, decoys=9, shuffle=True, seed=17
        )

    @pytest.mark.parametrize(
        "spec", ["pad", "pad=x", "bogus=1", "pad=8 decoys=2"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            LeakagePolicy.parse(spec)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            LeakagePolicy(pad_to=-1)
        with pytest.raises(ValueError):
            LeakagePolicy(decoys=-1)

    def test_coerce_none_without_env_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEAKAGE", raising=False)
        assert LeakageContext.coerce(None) is None

    def test_coerce_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEAKAGE", "pad=8,decoys=2")
        context = LeakageContext.coerce(None)
        assert context.policy == LeakagePolicy(pad_to=8, decoys=2)

    def test_coerce_bools_and_passthrough(self):
        assert LeakageContext.coerce(False) is None
        assert LeakageContext.coerce(True).policy == LeakagePolicy.full()
        context = LeakageContext(FULL)
        assert LeakageContext.coerce(context) is context
        assert LeakageContext.coerce(FULL).policy is FULL
        assert LeakageContext.coerce("full").policy == LeakagePolicy.full()

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            LeakageContext.coerce(3.14)

    def test_stream_is_seed_and_label_keyed(self):
        first = [leakage_stream(5, "server").randint(0, 99)
                 for _ in range(8)]
        again = [leakage_stream(5, "server").randint(0, 99)
                 for _ in range(8)]
        other = [leakage_stream(6, "server").randint(0, 99)
                 for _ in range(8)]
        assert first == again
        assert first != other


# ----------------------------------------------------------------------
# blocks_shipped accounting (the bugfix)
# ----------------------------------------------------------------------
def marker_count(response):
    """Ground truth: encrypted-block markers in the shipped XML."""
    return sum(
        fragment.xml.count(f"<{ENCRYPTED_DATA_TAG} ")
        for fragment in response.fragments
    )


class TestBlockAccounting:
    def test_blocks_shipped_matches_shipped_markers(
        self, healthcare_doc, healthcare_scs
    ):
        system = host(healthcare_doc, healthcare_scs)
        for query in QUERIES:
            translated = system.client.translate(query)
            response = system.server.answer(translated)
            assert response.blocks_shipped == marker_count(response), query

    def test_nested_blocks_counted(self, healthcare_doc, healthcare_scs):
        # //patient ships plaintext patient roots whose subtrees hold the
        # encrypted blocks; the pre-fix counter only saw roots that *were*
        # blocks and reported 0 here.
        system = host(healthcare_doc, healthcare_scs)
        response = system.server.answer(system.client.translate("//patient"))
        assert response.blocks_shipped == marker_count(response) > 0

    def test_naive_path_counts_whole_store(
        self, healthcare_doc, healthcare_scs
    ):
        system = host(healthcare_doc, healthcare_scs)
        response = system.server.ship_all()
        assert response.blocks_shipped == marker_count(response)
        # Top-level placeholders alone undercount whenever blocks nest.
        assert response.blocks_shipped >= len(system.hosted.blocks) or (
            response.blocks_shipped == marker_count(response)
        )

    def test_cluster_totals_match_monolithic(
        self, healthcare_doc, healthcare_scs
    ):
        mono = host(healthcare_doc, healthcare_scs)
        clustered = host(
            healthcare_doc,
            healthcare_scs,
            cluster=ClusterConfig(shards=4, replicas=2),
        )
        for query in QUERIES:
            mono_answer = mono.query(query)
            cluster_answer = clustered.query(query)
            assert mono_answer.canonical() == cluster_answer.canonical()
            assert (
                mono.last_trace.blocks_returned
                == clustered.last_trace.blocks_returned
            ), query


# ----------------------------------------------------------------------
# Trace determinism
# ----------------------------------------------------------------------
def recorded(doc, scs, **kwargs):
    """Host with the full policy, run QUERIES cold, return trace bytes."""
    policy = kwargs.pop("policy", FULL)
    system = host(doc, scs, leakage=policy, **kwargs)
    for query in QUERIES:
        system.flush_caches()
        system.query(query)
    return system.leakage.recorder.encode()


class TestTraceDeterminism:
    def test_object_vs_columnar_identical(
        self, healthcare_doc, healthcare_scs
    ):
        first = recorded(healthcare_doc, healthcare_scs, backend="object")
        second = recorded(healthcare_doc, healthcare_scs, backend="columnar")
        assert first == second
        assert first  # traces were actually recorded

    @pytest.mark.parametrize(
        "cluster",
        [ClusterConfig(shards=1, replicas=1),
         ClusterConfig(shards=4, replicas=2)],
        ids=["1x1", "4x2"],
    )
    def test_cluster_run_to_run_identical(
        self, cluster, healthcare_doc, healthcare_scs
    ):
        first = recorded(healthcare_doc, healthcare_scs, cluster=cluster)
        second = recorded(healthcare_doc, healthcare_scs, cluster=cluster)
        assert first == second

    def test_serial_vs_parallel_identical(
        self, healthcare_doc, healthcare_scs
    ):
        serial = recorded(healthcare_doc, healthcare_scs, parallel=False)
        parallel = recorded(healthcare_doc, healthcare_scs, parallel=4)
        assert serial == parallel

    def test_different_seed_differs(self, healthcare_doc, healthcare_scs):
        first = recorded(healthcare_doc, healthcare_scs,
                         policy=LeakagePolicy.full(seed=1))
        second = recorded(healthcare_doc, healthcare_scs,
                          policy=LeakagePolicy.full(seed=2))
        assert first != second

    def test_record_only_traces_are_real_fetches(
        self, healthcare_doc, healthcare_scs
    ):
        system = host(healthcare_doc, healthcare_scs,
                      leakage=LeakagePolicy())
        system.query("//patient")
        traces = system.leakage.recorder.traces("server")
        assert len(traces) == 1
        assert len(traces[0].blocks) == system.last_trace.blocks_returned

    def test_repeats_do_not_repeat_decoys(
        self, healthcare_doc, healthcare_scs
    ):
        # Per-observer streams advance across queries: an observer must
        # not be able to match repeated queries by identical decoy sets.
        system = host(healthcare_doc, healthcare_scs, leakage=FULL)
        for _ in range(2):
            system.flush_caches()
            system.query("//SSN")
        first, second = system.leakage.recorder.traces("server")
        assert first.blocks != second.blocks


# ----------------------------------------------------------------------
# Byte-identity under the full countermeasure set
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"parallel": 4},
            {"cluster": ClusterConfig(shards=4, replicas=2)},
        ],
        ids=["serial", "workers4", "cluster4x2"],
    )
    def test_answers_identical_in_process(
        self, kwargs, healthcare_doc, healthcare_scs
    ):
        plain = host(healthcare_doc, healthcare_scs, **kwargs)
        protected = host(
            healthcare_doc, healthcare_scs, leakage=FULL, **kwargs
        )
        for query in QUERIES:
            assert (
                plain.query(query).canonical()
                == protected.query(query).canonical()
            ), query

    def test_answers_identical_over_live_sockets(
        self, healthcare_doc, healthcare_scs
    ):
        reference = host(healthcare_doc, healthcare_scs)
        local = host(healthcare_doc, healthcare_scs, leakage=FULL)
        server = ServingServer(max_inflight=8)
        server.register_tenant("t0", local)
        address = server.start()
        try:
            remote = remote_system(local, address, "t0")
            try:
                for query in QUERIES:
                    assert (
                        remote.query(query).canonical()
                        == reference.query(query).canonical()
                    ), query
            finally:
                remote.close()
        finally:
            server.stop()

    def test_serving_stats_surface_policy(
        self, healthcare_doc, healthcare_scs
    ):
        local = host(healthcare_doc, healthcare_scs, leakage=FULL)
        server = ServingServer(max_inflight=8)
        server.register_tenant("t0", local)
        address = server.start()
        try:
            remote = remote_system(local, address, "t0")
            try:
                remote.query(QUERIES[0])
                stats = remote._connection.stats()
                leakage = stats["leakage"]
                assert leakage["pad_to"] == FULL.pad_to
                assert leakage["decoys"] == FULL.decoys
                assert leakage["shuffle"] is True
                assert leakage["traces"] >= 1
            finally:
                remote.close()
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Cache hygiene: cover traffic must not pollute cache accounting
# ----------------------------------------------------------------------
class TestCacheHygiene:
    def warm_deltas(self, doc, scs, **kwargs):
        system = host(doc, scs, **kwargs)
        for query in QUERIES:
            system.query(query)  # cold pass fills every cache
        before = counters.snapshot()
        for query in QUERIES:
            system.query(query)  # warm pass measured
        return counters.delta_since(before)

    def test_leakage_is_not_a_cache_layer(self):
        for layer in counters.cache_layers():
            assert "leakage" not in layer

    def test_warm_hit_rates_unchanged_by_policy(
        self, healthcare_doc, healthcare_scs
    ):
        plain = self.warm_deltas(healthcare_doc, healthcare_scs)
        protected = self.warm_deltas(
            healthcare_doc, healthcare_scs, leakage=FULL
        )
        cache_keys = [
            key for key in plain
            if any(layer in key for layer in counters.cache_layers())
        ]
        assert cache_keys  # the warm pass exercised real caches
        for key in cache_keys:
            assert plain[key] == protected.get(key, 0), key

    def test_cover_traffic_lands_in_dedicated_counters(
        self, healthcare_doc, healthcare_scs
    ):
        system = host(healthcare_doc, healthcare_scs, leakage=FULL)
        before = counters.snapshot()
        system.query("//SSN")
        delta = counters.delta_since(before)
        assert delta.get("leakage_decoy_fetches", 0) == FULL.decoys
        assert delta.get("leakage_extra_bytes", 0) > 0
        assert delta.get("leakage_traces_recorded", 0) == 1


# ----------------------------------------------------------------------
# Axis-heavy queries: same gates, new plans
# ----------------------------------------------------------------------
def recorded_axis(doc, scs, **kwargs):
    """Host with the full policy, run AXIS_QUERIES cold, return bytes."""
    system = host(doc, scs, leakage=FULL, **kwargs)
    for query in AXIS_QUERIES:
        system.flush_caches()
        system.query(query)
    return system.leakage.recorder.encode()


class TestAxisQueryLeakage:
    def test_block_accounting_holds_for_multi_ship_plans(
        self, healthcare_doc, healthcare_scs
    ):
        # Axis plans ship the union of several pattern nodes' survivors;
        # the marker count must still reconcile exactly.
        system = host(healthcare_doc, healthcare_scs)
        for query in AXIS_QUERIES:
            translated = system.client.translate(query)
            response = system.server.answer(translated)
            assert response.blocks_shipped == marker_count(response), query

    def test_object_vs_columnar_traces_identical(
        self, healthcare_doc, healthcare_scs
    ):
        first = recorded_axis(healthcare_doc, healthcare_scs,
                              backend="object")
        second = recorded_axis(healthcare_doc, healthcare_scs,
                               backend="columnar")
        assert first == second
        assert first

    def test_cluster_run_to_run_identical(
        self, healthcare_doc, healthcare_scs
    ):
        cluster = ClusterConfig(shards=4, replicas=2)
        first = recorded_axis(healthcare_doc, healthcare_scs,
                              cluster=cluster)
        second = recorded_axis(healthcare_doc, healthcare_scs,
                               cluster=cluster)
        assert first == second

    def test_answers_identical_under_countermeasures(
        self, healthcare_doc, healthcare_scs
    ):
        plain = host(healthcare_doc, healthcare_scs)
        protected = host(healthcare_doc, healthcare_scs, leakage=FULL)
        for query in AXIS_QUERIES:
            assert (
                plain.query(query).canonical()
                == protected.query(query).canonical()
            ), query

    def test_countermeasures_reduce_advantage_on_axis_workload(
        self, healthcare_doc, healthcare_scs
    ):
        unprotected = host(
            healthcare_doc, healthcare_scs, leakage=LeakagePolicy()
        )
        protected = host(
            healthcare_doc, healthcare_scs, leakage=LeakagePolicy.full()
        )
        queries = list(AXIS_QUERIES)
        baseline = run_leakage_game(unprotected, queries, repeats=2, seed=0)
        hardened = run_leakage_game(protected, queries, repeats=2, seed=0)
        assert baseline.max_advantage > 0.0
        assert hardened.max_advantage <= baseline.max_advantage
        assert hardened.bandwidth_overhead > 0.0


# ----------------------------------------------------------------------
# The attacker and the game
# ----------------------------------------------------------------------
class TestAttack:
    def references(self):
        return [
            ObservedTrace("server", (1, 2, 3)),
            ObservedTrace("server", (4,)),
            ObservedTrace("server", (5, 6)),
        ]

    def test_classify_by_length(self):
        attack = TraceClusteringAttack(self.references())
        assert attack.classify(ObservedTrace("server", (9,)), "length") == 1
        assert (
            attack.classify(ObservedTrace("server", (7, 8, 9)), "length")
            == 0
        )

    def test_classify_by_jaccard_and_coaccess(self):
        attack = TraceClusteringAttack(self.references())
        trace = ObservedTrace("server", (2, 3, 9))
        assert attack.classify(trace, "jaccard") == 0
        assert attack.classify(trace, "coaccess") == 0

    def test_unknown_method_rejected(self):
        attack = TraceClusteringAttack(self.references())
        with pytest.raises(ValueError):
            attack.classify(ObservedTrace("server", (1,)), "psychic")

    def test_game_requires_leakage_tier(
        self, healthcare_doc, healthcare_scs
    ):
        system = host(healthcare_doc, healthcare_scs)
        with pytest.raises(ValueError):
            run_leakage_game(system, list(QUERIES))

    def test_countermeasures_reduce_advantage(
        self, healthcare_doc, healthcare_scs
    ):
        unprotected = host(
            healthcare_doc, healthcare_scs, leakage=LeakagePolicy()
        )
        protected = host(
            healthcare_doc, healthcare_scs, leakage=LeakagePolicy.full()
        )
        queries = list(QUERIES)
        baseline = run_leakage_game(unprotected, queries, repeats=2, seed=0)
        hardened = run_leakage_game(protected, queries, repeats=2, seed=0)
        assert baseline.max_advantage > 0.0
        assert hardened.max_advantage <= baseline.max_advantage
        assert hardened.bandwidth_overhead > 0.0
        assert baseline.bandwidth_overhead == 0.0
