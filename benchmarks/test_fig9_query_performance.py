"""E5 — Figure 9: query performance per scheme and query class (NASA).

Figure 9 plots, for Qs/Qm/Ql on the 25 MB NASA database, three bars per
scheme: query processing time on the server, decryption time on the
client, and query post-processing time on the client.  The paper's
observations:

* each stage's cost decreases in the order top → sub → app → opt;
* the improvement from better schemes is mainly on the client side;
* app stays within ≈1.1–1.3× of opt.

This benchmark reproduces the three panels as tables and asserts the
ordering/shape claims (with slack appropriate to a simulator substrate).
"""

import pytest

from repro.bench.harness import format_table, run_query_class

from conftest import SCHEMES, write_result


def _run(nasa_systems, nasa_queries, query_class):
    results = {}
    for kind in SCHEMES:
        # cold: Figure 9 compares independent per-query executions; warm
        # caches would let the coarse schemes amortize one whole-database
        # decrypt across the class and invert the ordering.
        results[kind] = run_query_class(
            nasa_systems[kind], query_class, nasa_queries[query_class],
            cold=True,
        )
    return results


@pytest.mark.parametrize("query_class", ["Qs", "Qm", "Ql"])
def test_fig9_panel(benchmark, query_class, nasa_systems, nasa_queries):
    results = benchmark.pedantic(
        _run,
        args=(nasa_systems, nasa_queries, query_class),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            kind,
            results[kind].server_s,
            results[kind].decrypt_s,
            results[kind].postprocess_s,
            results[kind].total_s,
        ]
        for kind in SCHEMES
    ]
    table = format_table(
        ["scheme", "t_server", "t_decrypt", "t_post", "t_total"],
        rows,
        f"Figure 9 ({query_class}) — NASA database, per-stage seconds",
    )
    write_result(f"fig9_{query_class.lower()}_query_performance", table)

    # Ordering claim: coarse blocks cost more end-to-end.  We assert the
    # two endpoints strictly and the middle monotonically with slack
    # (timing noise at benchmark scale).
    totals = {kind: results[kind].total_s for kind in SCHEMES}
    assert totals["opt"] < totals["top"]
    assert totals["app"] < totals["top"]
    assert totals["sub"] <= totals["top"] * 1.1
    # Client-side work (decrypt + post) shrinks from top to opt — "the
    # improvement ... is mainly on the client side".
    client_top = results["top"].decrypt_s + results["top"].postprocess_s
    client_opt = results["opt"].decrypt_s + results["opt"].postprocess_s
    assert client_opt < client_top
    # app is a reasonable alternative for opt (paper: 1.1–1.3×).
    assert totals["app"] <= totals["opt"] * 2.0
