"""Versioned on-disk format for columnar DSI planes (mmap-loadable).

A column store is two files managed by the storage layer's
stage-then-commit protocol (:mod:`repro.core.storage`):

``columns.json``
    The column manifest: format version, byte order, entry count, the
    tag-key dictionary with its slice offsets, and for every column its
    ``array`` typecode, byte offset and element count inside the blob.

``columns.bin``
    All plane arrays concatenated, each 8-byte aligned so a
    ``memoryview`` cast over an ``mmap`` of the file yields the planes
    with zero copies — a server boots from a hosted save in O(1) index
    heap, paging plane bytes in on demand.

Byte order is recorded at pack time; a load on a different-endian host
falls back to an in-heap byteswapped copy instead of corrupt views.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
from array import array
from typing import Any

from repro.core.columnar import ColumnarPlanes

#: Format version stamped into ``columns.json``; bumped on any layout
#: change so old servers fail loud instead of misreading planes.
COLSTORE_VERSION = 1

#: The two files a column store consists of (also listed in the storage
#: layer's ``_DATA_FILES`` so they ride the crash-safe commit protocol).
MANIFEST_FILE = "columns.json"
PLANES_FILE = "columns.bin"

_ALIGN = 8

#: Column name → (planes attribute, array typecode). ``None`` typecode
#: marks a raw byte column (stored/loaded without an array cast).
_COLUMNS: "tuple[tuple[str, str | None], ...]" = (
    ("lows", "d"),
    ("highs", "d"),
    ("key_ids", "q"),
    ("block_ids", "q"),
    ("parents", "q"),
    ("hosted_ids", "q"),
    ("member_offsets", "q"),
    ("member_ids", "q"),
    ("value_flags", "b"),
    ("value_offsets", "q"),
    ("value_blob", None),
    ("tag_entry_ids", "q"),
    ("tag_lows", "d"),
    ("block_table_ids", "q"),
    ("block_table_lows", "d"),
    ("block_table_highs", "d"),
)


class ColstoreError(ValueError):
    """A column store that cannot be read (bad version, shape, bytes)."""


def _column_bytes(plane: Any) -> bytes:
    if isinstance(plane, (bytes, bytearray)):
        return bytes(plane)
    if isinstance(plane, memoryview):
        return plane.tobytes()
    return plane.tobytes()  # array


def pack_columns(planes: ColumnarPlanes) -> "tuple[dict, bytes]":
    """Serialize planes → (manifest dict, binary blob).

    The storage layer JSON-dumps the manifest into ``columns.json`` and
    writes the blob to ``columns.bin``, both through its staged-commit
    path so a crash never publishes half a column store.
    """
    parts: list[bytes] = []
    columns: dict[str, dict] = {}
    offset = 0
    for name, typecode in _COLUMNS:
        raw = _column_bytes(getattr(planes, name))
        pad = (-offset) % _ALIGN
        if pad:
            parts.append(b"\x00" * pad)
            offset += pad
        itemsize = array(typecode).itemsize if typecode else 1
        columns[name] = {
            "typecode": typecode,
            "offset": offset,
            "count": len(raw) // itemsize,
        }
        parts.append(raw)
        offset += len(raw)
    manifest = {
        "version": COLSTORE_VERSION,
        "byteorder": sys.byteorder,
        "entry_count": planes.entry_count,
        "keys": list(planes.keys),
        "tag_slices": {
            key: [start, stop]
            for key, (start, stop) in planes.tag_slices.items()
        },
        "columns": columns,
    }
    return manifest, b"".join(parts)


def unpack_columns(
    manifest: dict, buffer: Any, source: Any = None
) -> ColumnarPlanes:
    """Rebuild planes from a manifest + buffer (mmap or bytes).

    When the recorded byte order matches this host, every numeric column
    is a zero-copy ``memoryview`` cast into ``buffer``; otherwise each
    is byteswapped into an in-heap ``array``.
    """
    version = manifest.get("version")
    if version != COLSTORE_VERSION:
        raise ColstoreError(
            f"unsupported column store version {version!r} "
            f"(this build reads version {COLSTORE_VERSION})"
        )
    columns = manifest.get("columns")
    if not isinstance(columns, dict):
        raise ColstoreError("column manifest has no 'columns' table")
    native = manifest.get("byteorder") == sys.byteorder
    view = memoryview(buffer)

    planes_kw: dict[str, Any] = {}
    for name, typecode in _COLUMNS:
        spec = columns.get(name)
        if spec is None:
            raise ColstoreError(f"column manifest missing column {name!r}")
        start = spec["offset"]
        count = spec["count"]
        if typecode is None:
            stop = start + count
            if stop > len(view):
                raise ColstoreError(
                    f"column {name!r} extends past end of {PLANES_FILE}"
                )
            planes_kw[name] = view[start:stop]
            continue
        itemsize = array(typecode).itemsize
        stop = start + count * itemsize
        if stop > len(view):
            raise ColstoreError(
                f"column {name!r} extends past end of {PLANES_FILE}"
            )
        if native:
            planes_kw[name] = view[start:stop].cast(typecode)
        else:
            swapped = array(typecode)
            swapped.frombytes(bytes(view[start:stop]))
            swapped.byteswap()
            planes_kw[name] = swapped

    try:
        tag_slices = {
            key: (int(start), int(stop))
            for key, (start, stop) in manifest["tag_slices"].items()
        }
        keys = tuple(manifest["keys"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ColstoreError(f"column manifest tag table unreadable: {exc}")

    planes = ColumnarPlanes(
        tag_slices=tag_slices, keys=keys, source=source, **planes_kw
    )
    if planes.entry_count != manifest.get("entry_count"):
        raise ColstoreError(
            f"column store entry count mismatch: manifest says "
            f"{manifest.get('entry_count')}, planes hold "
            f"{planes.entry_count}"
        )
    return planes


def load_columns(directory: str, use_mmap: bool = True) -> ColumnarPlanes:
    """Load a column store from ``directory`` (mmap-backed by default).

    The returned planes keep the mapping alive via ``planes.source``;
    with ``use_mmap=False`` the blob is read fully into heap (used by
    tests and by hosts where mapping is undesirable).
    """
    manifest_path = os.path.join(directory, MANIFEST_FILE)
    planes_path = os.path.join(directory, PLANES_FILE)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ColstoreError(f"{MANIFEST_FILE}: invalid JSON: {exc}")
    if use_mmap:
        with open(planes_path, "rb") as handle:
            if os.fstat(handle.fileno()).st_size == 0:
                return unpack_columns(manifest, b"")
            mapped = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        return unpack_columns(manifest, mapped, source=mapped)
    with open(planes_path, "rb") as handle:
        blob = handle.read()
    return unpack_columns(manifest, blob)
