#!/usr/bin/env python3
"""Persistent hosting: the DAS deployment story on disk.

A hosting session in the database-as-a-service model is not one process:
the owner encrypts once, the server keeps the ciphertext and metadata, and
query sessions come and go.  This example walks that lifecycle:

1. the owner hosts an XMark-like database and *saves* it — the server
   directory holds only ciphertext and privacy-preserving metadata;
2. a fresh process (simulated here) *loads* the hosting with the master
   key and queries it;
3. the owner applies updates to the live hosting and saves again;
4. an attacker who grabs the server files but not the key gets nothing.

Run:  python examples/persistent_hosting.py
"""

import json
import os
import tempfile

from repro import SecureXMLSystem
from repro.core.storage import load_system, save_system
from repro.workloads.xmark import build_xmark_database, xmark_constraints

MASTER = b"persistent-hosting-demo-key-32b!"


def main() -> None:
    document = build_xmark_database(person_count=40, seed=23)

    with tempfile.TemporaryDirectory() as workspace:
        hosting_dir = os.path.join(workspace, "hosting")

        print("1. Host and save")
        system = SecureXMLSystem.host(
            document, xmark_constraints(), scheme="opt", master_key=MASTER
        )
        save_system(system, hosting_dir)
        for name in sorted(os.listdir(hosting_dir)):
            size = os.path.getsize(os.path.join(hosting_dir, name))
            print(f"   {name:<20} {size:>8} bytes")

        print("\n2. Fresh session loads the hosting and queries it")
        session = load_system(hosting_dir, MASTER)
        answer = session.query("//person[profile/income>100000]/name")
        print(f"   high earners: {len(answer)} found")
        print(
            "   min income (server-side, no decryption): "
            f"{session.aggregate('//income', 'min', mode='server')}"
        )

        print("\n3. Update the live hosting and save again")
        first_person = session.query("//person/name").values()[0]
        session.insert_element(
            f"//person[name='{first_person}']", "status", "gold"
        )
        save_system(session, hosting_dir)
        reloaded = load_system(hosting_dir, MASTER)
        gold_query = "//person[status='gold']/name"
        print(
            "   gold members after reload: "
            f"{reloaded.query(gold_query).values()}"
        )

        print("\n4. Server files alone reveal nothing")
        with open(os.path.join(hosting_dir, "server_meta.json")) as handle:
            meta = handle.read()
        names = session.hosted.field_plans.get("name")
        leaked = [
            value
            for value in (names.ordered_values if names else [])
            if value in meta
        ]
        print(f"   protected names appearing in server metadata: "
              f"{leaked or 'none'}")
        intruder = load_system(hosting_dir, b"not-the-right-key-at-all-32b!!!!")
        print(
            "   intruder with wrong key sees: "
            f"{intruder.query('//creditcard').canonical() or 'nothing'}"
        )

    print("\nOK: host → save → load → update → save → reload, all exact;"
          " server files alone are useless.")


if __name__ == "__main__":
    main()
