"""Fault injection and byte accounting at the socket boundary.

In-process, every sealed payload crosses the system's
:class:`~repro.netsim.channel.Channel` exactly once per direction, and
chaos testing swaps in a :class:`~repro.netsim.faults.FaultyChannel`
whose seeded schedule decides per transfer whether to drop, delay,
corrupt, truncate, duplicate or roll back.  The serving layer keeps that
contract by moving the *same* channel object to the client end of the
socket:

* outbound (``client->server``) — the request payload passes through
  ``channel.transfer`` **before** it is framed and sent, so a corrupted
  or truncated request genuinely crosses the wire mangled and a dropped
  one never leaves the process (exactly like the in-process raise);
* inbound (``server->client``) — each response payload (monolithic
  ``OP_OK`` or each streamed ``OP_CHUNK``) passes through on arrival,
  in arrival order.

``OP_ERROR`` and control frames bypass the transport: in-process, a
server-raised typed error propagates as an exception and produces *no*
server→client transfer, so faulting error frames would desynchronize
the seeded schedule.  Likewise only the sealed payload is faulted,
never the frame header or the stream's ``chunk_fragments`` prefix —
those are transport metadata the in-process path doesn't have, and the
per-transfer RNG draws depend on payload size.

With the default :class:`~repro.netsim.channel.Channel` the transport
is pure accounting (every byte billed once, no faults); with a
:class:`~repro.netsim.channel.NullChannel` it is free; with a
:class:`~repro.netsim.faults.FaultyChannel` the entire chaos and
rollback suite runs over live sockets with schedules identical to the
in-process runs, seed for seed.
"""

from __future__ import annotations

from repro.netsim.channel import Channel

from repro.serving.errors import BackpressureRejected, ServerDraining

__all__ = [
    "AsyncFaultTransport",
    "BackpressureRejected",
    "ServerDraining",
]


class AsyncFaultTransport:
    """Applies a netsim channel to the payloads crossing one socket.

    Despite the name this class has no awaitables of its own — the
    channel calls are synchronous and cheap (the modelled delay is
    *recorded*, never slept) — but it is only ever driven from the async
    client, one call at a time on the event loop, which is what keeps a
    ``FaultyChannel``'s stateful schedule (its RNG and rollback
    snapshot store) race-free without any locking.
    """

    def __init__(self, channel: Channel | None = None) -> None:
        self.channel = channel if channel is not None else Channel()

    def outbound(self, label: str, payload: bytes) -> bytes:
        """Fault/account a request payload about to be framed and sent.

        Raises :class:`~repro.netsim.faults.TransferDropped` when the
        schedule drops it — before any bytes reach the socket.
        """
        faulted, _ = self.channel.transfer("client->server", label, payload)
        return faulted

    def inbound(self, label: str, payload: bytes) -> bytes:
        """Fault/account a response payload that just arrived."""
        faulted, _ = self.channel.transfer("server->client", label, payload)
        return faulted
