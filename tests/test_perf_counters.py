"""The perf-counter registry: validation, merging, and backend parity.

The backend-parity test is the regression guard for the process-backend
accounting fix: worker-process increments used to die with the child
registry, so thread and process runs of the same workload reported
different work counts.  Deltas are now shipped back and merged at pool
join (see ``repro/core/parallel.py``), making the two backends agree.
"""

import pytest

from repro.core.parallel import ParallelConfig
from repro.core.system import SecureXMLSystem
from repro.perf import counters
from repro.perf.counters import PerfCounters

#: Queries over pairwise-disjoint encrypted blocks, so cache traffic is
#: deterministic regardless of worker scheduling.
DISJOINT_QUERIES = ["//patient/SSN", "//pname", "//insurance/@coverage"]


class TestHitRateValidation:
    def test_unknown_layer_raises_value_error(self):
        registry = PerfCounters()
        with pytest.raises(ValueError, match="unknown cache layer"):
            registry.hit_rate("nosuch")

    def test_error_names_the_known_layers(self):
        registry = PerfCounters()
        with pytest.raises(ValueError, match="plan"):
            registry.hit_rate("nosuch")

    def test_every_advertised_layer_is_queryable(self):
        registry = PerfCounters()
        layers = registry.cache_layers()
        assert "plan" in layers and "block" in layers
        for layer in layers:
            assert registry.hit_rate(layer) == 0.0

    def test_columnar_layer_is_registered(self):
        """The plane-snapshot cache is a first-class cache layer."""
        registry = PerfCounters()
        assert "columnar" in registry.cache_layers()
        registry.add("columnar_cache_hits", 1)
        registry.add("columnar_cache_misses", 1)
        assert registry.hit_rate("columnar") == pytest.approx(0.5)

    def test_columnar_work_counters_exist(self):
        registry = PerfCounters()
        snapshot = registry.snapshot()
        assert "columnar_plane_builds" in snapshot
        assert "columnar_join_sweeps" in snapshot

    def test_hit_rate_math(self):
        registry = PerfCounters()
        registry.add("plan_cache_hits", 3)
        registry.add("plan_cache_misses", 1)
        assert registry.hit_rate("plan") == pytest.approx(0.75)


class TestMerge:
    def test_merge_adds_deltas(self):
        registry = PerfCounters()
        registry.add("blocks_decrypted", 2)
        registry.merge({"blocks_decrypted": 3, "query_retries": 1})
        snapshot = registry.snapshot()
        assert snapshot["blocks_decrypted"] == 5
        assert snapshot["query_retries"] == 1

    def test_merge_skips_zero_entries(self):
        registry = PerfCounters()
        registry.merge({"blocks_decrypted": 0})
        assert registry.snapshot()["blocks_decrypted"] == 0

    def test_merge_rejects_unknown_counter(self):
        registry = PerfCounters()
        with pytest.raises(AttributeError):
            registry.merge({"nosuch_counter": 1})


class TestBackendParity:
    """Thread and process pools must report equal work counts."""

    #: Counters that measure *work done*, which scheduling must not change.
    #: ``key_expansions`` is deliberately absent: the process backend
    #: re-derives the AES key schedule once per worker process (per-process
    #: memoization), so it legitimately differs between backends.
    PARITY_COUNTERS = (
        "blocks_decrypted",
        "blocks_encrypted",
        "queries_failed",
        "query_retries",
    )

    def _run_batch(self, doc, scs, parallel) -> dict[str, int]:
        system = SecureXMLSystem.host(doc, scs, parallel=parallel)
        try:
            before = counters.snapshot()
            answers = system.execute_many(DISJOINT_QUERIES)
            delta = counters.delta_since(before)
        finally:
            system.close()
        self.answers = [answer.canonical() for answer in answers]
        return delta

    def test_thread_and_process_counts_agree(
        self, healthcare_doc, healthcare_scs
    ):
        thread_delta = self._run_batch(
            healthcare_doc,
            healthcare_scs,
            ParallelConfig(workers=2, backend="thread"),
        )
        thread_answers = self.answers
        process_delta = self._run_batch(
            healthcare_doc,
            healthcare_scs,
            ParallelConfig(workers=2, backend="process"),
        )
        assert self.answers == thread_answers
        assert thread_delta.get("blocks_decrypted", 0) > 0
        for name in self.PARITY_COUNTERS:
            assert thread_delta.get(name, 0) == process_delta.get(name, 0), (
                name
            )

    def test_process_worker_increments_survive_the_join(
        self, healthcare_doc, healthcare_scs
    ):
        """The regression itself: worker decrypts must reach the parent."""
        serial_delta = self._run_batch(
            healthcare_doc, healthcare_scs, False
        )
        process_delta = self._run_batch(
            healthcare_doc,
            healthcare_scs,
            ParallelConfig(workers=2, backend="process"),
        )
        assert (
            process_delta.get("blocks_decrypted", 0)
            == serial_delta.get("blocks_decrypted", 0)
            > 0
        )
