"""Chaos and rollback sweeps over live sockets (satellite of PR 8).

The serving layer's contract with the netsim fault machinery is
*schedule parity*: moving the seeded :class:`~repro.netsim.faults
.FaultyChannel` from the in-process call path to the socket boundary
(the :class:`~repro.serving.transport.AsyncFaultTransport` inside the
remote client) must not change a single RNG draw.  These sweeps run the
exact fault scenarios of ``test_chaos_end_to_end`` and the rollback
scenario of ``test_freshness`` twice per seed — once in process, once
over a real TCP connection — and assert:

* per-query outcomes are identical, seed for seed: the same queries
  answer (byte-identically) and the same queries fail with the typed
  :class:`~repro.core.system.QueryFailedError`;
* the two policies' :meth:`~repro.netsim.faults.FaultPolicy
  .schedule_signature` transcripts are equal — every transfer faulted
  the same way, in the same order, at the same payload size.

Both runs pin ``parallel=False``: the parallel engine streams responses
(one transfer per chunk instead of one per response), which is a
*different* transfer sequence, not a parity bug — parity is only
defined against the matching engine configuration.
"""

import os

import pytest

from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.netsim import FaultPolicy, FaultyChannel
from repro.netsim.faults import FaultRates
from repro.serving import ServingServer, remote_system

QUERIES = (
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
    "//SSN",
)
PROBE = "//patient[pname='Betty']/SSN"

SEEDS = [
    int(token)
    for token in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2").split(",")
]

SWEEP_RATES = (
    {"corrupt": 0.25},
    {"drop": 0.25},
    {"truncate": 0.25},
    {"drop": 0.2, "corrupt": 0.2, "truncate": 0.1, "duplicate": 0.2,
     "delay": 0.2},
)


def _inprocess_system(doc, scs, policy):
    return SecureXMLSystem.host(
        doc, scs, scheme="opt",
        channel=FaultyChannel(policy=policy),
        parallel=False,
    )


def _socket_system(doc, scs, policy):
    """A served tenant plus a remote system faulting at the socket."""
    local = SecureXMLSystem.host(doc, scs, scheme="opt", parallel=False)
    server = ServingServer(max_inflight=8)
    server.register_tenant("t0", local)
    remote = remote_system(
        local, server.start(), "t0",
        channel=FaultyChannel(policy=policy),
        parallel=False,
    )
    return server, remote


def _query_outcomes(system, queries):
    """Canonical answer per query, or the marker for a typed failure."""
    outcomes = []
    for query in queries:
        try:
            outcomes.append(system.query(query).canonical())
        except QueryFailedError:
            outcomes.append("typed-error")
    return outcomes


class TestChaosSweepOverSockets:
    @pytest.mark.parametrize("rates", SWEEP_RATES,
                             ids=lambda r: "+".join(sorted(r)))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_outcomes_and_schedule_as_inprocess(
        self, seed, rates, healthcare_doc, healthcare_scs
    ):
        inproc_policy = FaultPolicy.symmetric(seed=seed, **rates)
        inproc = _inprocess_system(
            healthcare_doc, healthcare_scs, inproc_policy
        )
        expected = _query_outcomes(inproc, QUERIES)

        socket_policy = FaultPolicy.symmetric(seed=seed, **rates)
        server, remote = _socket_system(
            healthcare_doc, healthcare_scs, socket_policy
        )
        try:
            observed = _query_outcomes(remote, QUERIES)
        finally:
            remote.close()
            server.stop()

        assert observed == expected, (seed, rates)
        assert (
            socket_policy.schedule_signature()
            == inproc_policy.schedule_signature()
        ), (seed, rates)


class TestRollbackSweepOverSockets:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_outcomes_and_schedule_as_inprocess(
        self, seed, healthcare_doc, healthcare_scs
    ):
        """The freshness suite's stale-answer replay scenario: record
        pre-update snapshots, commit an update, then query through a
        replay window.  Socket updates travel as sealed commands (no
        transfer draws, like the local mutation) so the rollback
        attacker's snapshot store stays aligned with in-process."""
        def scenario(system):
            outcomes = _query_outcomes(system, QUERIES)
            system.update_value(PROBE, "987654")
            for _ in range(4):
                outcomes.extend(_query_outcomes(system, QUERIES))
            return outcomes

        inproc_policy = FaultPolicy(
            seed=seed, server_to_client=FaultRates(rollback=0.35)
        )
        expected = scenario(
            _inprocess_system(healthcare_doc, healthcare_scs, inproc_policy)
        )

        socket_policy = FaultPolicy(
            seed=seed, server_to_client=FaultRates(rollback=0.35)
        )
        server, remote = _socket_system(
            healthcare_doc, healthcare_scs, socket_policy
        )
        try:
            observed = scenario(remote)
        finally:
            remote.close()
            server.stop()

        assert observed == expected, seed
        assert (
            socket_policy.schedule_signature()
            == inproc_policy.schedule_signature()
        ), seed
        # The scenario is an *attack* by construction: the schedule must
        # actually have substituted at least one stale snapshot.
        assert any(
            entry[2] == "rollback"
            for entry in socket_policy.schedule_signature()
        ), seed

    def test_faultless_transport_is_transparent(
        self, healthcare_doc, healthcare_scs
    ):
        """A FaultyChannel with zero rates at the socket boundary must
        change nothing — and record zero faults."""
        policy = FaultPolicy()
        server, remote = _socket_system(
            healthcare_doc, healthcare_scs, policy
        )
        reference = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", parallel=False
        )
        try:
            for query in QUERIES:
                assert (
                    remote.query(query).canonical()
                    == reference.query(query).canonical()
                )
                assert remote.last_trace.retries == 0
        finally:
            remote.close()
            server.stop()
