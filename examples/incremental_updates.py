#!/usr/bin/env python3
"""Incremental updates on a live hosted database (extension; paper §8).

The paper leaves updates as future work; the DSI index's random gaps make
them natural.  This example hosts the Figure 2 hospital database and then
runs a working day of changes against the *live encrypted hosting* — no
re-hosting — verifying after every step that queries remain exact:

* admit a new treatment (encrypted leaf: new block, field index rebuilt),
* correct a patient's age (plaintext in-place),
* rotate an SSN (encrypted block re-encrypted),
* cancel an insurance policy (block deleted),
* discharge a patient (plaintext subtree + nested blocks deleted).

Run:  python examples/incremental_updates.py
"""

from repro import SecureXMLSystem
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)


def show(system: SecureXMLSystem, query: str) -> None:
    answer = system.query(query)
    print(f"  {query}\n    -> {answer.canonical()}")


def main() -> None:
    document = build_healthcare_database()
    system = SecureXMLSystem.host(
        document, healthcare_constraints(), scheme="opt"
    )
    print(f"hosted: {system.hosted.block_count()} blocks, "
          f"{system.hosting_trace.hosted_bytes} bytes\n")

    print("1. Admit a new treatment for Matt (encrypted insert)")
    system.insert_element("//patient[pname='Matt']/treat", "disease", "flu")
    show(system, "//patient[pname='Matt']//disease")
    show(system, "//treat[disease='flu']/doctor")
    print(f"   blocks now: {system.hosted.block_count()} "
          "(one new single-leaf block)\n")

    print("2. Correct Matt's age (plaintext update)")
    system.update_value("//patient[pname='Matt']/age", "41")
    show(system, "//patient[age>40]/pname")
    print()

    print("3. Rotate Betty's SSN (encrypted value update)")
    system.update_value("//patient[pname='Betty']/SSN", "999999")
    show(system, "//patient[SSN='999999']/pname")
    show(system, "//patient[SSN>500000]/pname")
    print()

    print("4. Cancel Matt's insurance (block delete)")
    system.delete_element("//patient[pname='Matt']/insurance")
    show(system, "//insurance/policy#")
    print()

    print("5. Discharge Betty (plaintext subtree delete, nested blocks too)")
    system.delete_element("//patient[pname='Betty']")
    show(system, "//pname")
    show(system, "//SSN")
    print(f"   blocks now: {system.hosted.block_count()}\n")

    print("6. Aggregates still work, including server-side MIN/MAX")
    print(f"  count(//disease) = {system.aggregate('//disease', 'count')}")
    print(
        "  min(//disease), server-side without decryption = "
        f"{system.aggregate('//disease', 'min', mode='server')!r}"
    )

    print("\nOK: six updates applied to the live encrypted hosting; every"
          " query stayed exact.")


if __name__ == "__main__":
    main()
