"""E9 — Theorem 6.1: attacker belief never increases across a query stream.

Runs a mixed workload of SC-captured queries against the hosted healthcare
database while tracking the attacker's belief probabilities for each
protected proposition; asserts the monotone non-increase the theorem
proves and reports the belief trajectories.
"""

from fractions import Fraction

from repro.bench.harness import format_table
from repro.core.system import SecureXMLSystem
from repro.security.belief import BeliefTracker
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.xmldb.stats import tag_histogram

from conftest import write_result


def _run():
    document = build_healthcare_database()
    constraints = healthcare_constraints()
    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    tracker = BeliefTracker()

    candidate_tags = len(tag_histogram(document))
    queries = [
        ("//insurance", "node", None),
        ("//patient[pname='Betty'][SSN='763895']", "assoc", "SSN"),
        ("//patient[pname='Betty'][SSN='763895']", "assoc", "SSN"),
        ("//treat[disease='leukemia']/doctor", "assoc", "disease"),
        ("//treat[disease='diarrhea']/doctor", "assoc", "disease"),
        ("//insurance//policy#", "node", None),
    ] * 10  # a 60-query observation stream

    for query, query_kind, field in queries:
        system.query(query)  # the attacker observes Qs and the response
        if query_kind == "node":
            tracker.observe_node_query(f"B({query})", candidate_tags)
        else:
            plan = system.hosted.field_plans[field]
            plaintext_values = len(plan.ordered_values)
            ciphertext_values = sum(
                len(chunks) for chunks in plan.chunk_plan.values()
            )
            tracker.observe_association_query(
                f"B({query})", plaintext_values, ciphertext_values
            )
    return tracker, len(queries)


def test_thm61_belief_never_increases(benchmark):
    tracker, observed = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for record in tracker.all_records():
        rows.append(
            [
                record.proposition,
                str(record.history[0]),
                str(record.current),
                len(record.history),
                "yes" if record.never_increased() else "NO",
            ]
        )
    table = format_table(
        ["proposition", "initial belief", "final belief", "observations",
         "monotone?"],
        rows,
        f"Theorem 6.1 — belief trajectories over {observed} observed queries",
    )
    write_result("thm61_belief", table)

    assert tracker.secure()
    for record in tracker.all_records():
        assert record.current <= record.history[0]
        assert record.current <= Fraction(1, 2)
