"""Deterministic, seed-stable placement of interval groups onto shards.

The DSI index already partitions the hosted database into *interval
groups* — contiguous spans of the interval-sorted entry list (§5.1).  The
cluster layer reuses them as its sharding key: a :class:`PlacementMap`
splits the entry order into ``shards × groups_per_shard`` groups and
assigns each group to one owning shard through a seeded permutation, so
the whole placement is a pure function of (geometry, shards, replicas,
seed).  Ownership of *any* interval — including one drawn after hosting
by an insert — is resolved by bisecting its low bound against the group
cutpoints, which is what keeps placement stable across updates.

What a shard *owns* is the ciphertext: the block payloads and hosted
subtrees rooted in its groups.  The index metadata (DSI table, block
table, value index) is replicated to every shard — the structural join
needs the full laminar forest for correctness (a candidate's ancestor
can live in any group) and the paper already counts the index as
server-visible.  The security consequence is deliberate and tested: a
single compromised shard sees the same *index* the monolithic server
saw, but strictly fewer ciphertext payloads, so the frequency attack
against its view can only get weaker (``tests/test_cluster_security.py``).
"""

from __future__ import annotations

import os
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.encryptor import HostedDatabase

#: Environment knobs read by :meth:`ClusterConfig.from_env`.
SHARDS_ENV = "REPRO_SHARDS"
REPLICAS_ENV = "REPRO_REPLICAS"


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the cluster: shard count, replication factor, placement seed.

    ``shards=1`` with this config still runs the full coordinator path
    (one shard, R replicas) — useful as the cluster-mode baseline in
    benchmarks.  The *legacy* single-server path is selected one level
    up, by :meth:`coerce` returning ``None``.
    """

    shards: int = 1
    replicas: int = 1
    seed: int = 0
    #: target interval groups per shard; finer grouping spreads hot
    #: document regions across shards at the cost of a longer placement map
    groups_per_shard: int = 4

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.groups_per_shard < 1:
            raise ValueError(
                f"groups_per_shard must be >= 1, got {self.groups_per_shard}"
            )

    @classmethod
    def from_env(cls) -> "ClusterConfig | None":
        """Read ``REPRO_SHARDS`` / ``REPRO_REPLICAS`` (unset / <=1 shards → None)."""
        raw = os.environ.get(SHARDS_ENV, "").strip()
        if not raw:
            return None
        try:
            shards = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{SHARDS_ENV} must be an integer, got {raw!r}"
            ) from exc
        if shards <= 1:
            return None
        raw_replicas = os.environ.get(REPLICAS_ENV, "").strip()
        replicas = int(raw_replicas) if raw_replicas else 1
        return cls(shards=shards, replicas=max(1, replicas))

    @classmethod
    def coerce(cls, cluster: Any) -> "ClusterConfig | None":
        """Normalize the ``cluster=`` argument accepted by the system.

        ``None`` defers to the environment, ``False`` / an int ``<= 1``
        force the exact legacy single-server path (returned as ``None``),
        an int ``>= 2`` names the shard count, and a
        :class:`ClusterConfig` passes through — *including* one with
        ``shards=1``, which runs the coordinator over a single shard.
        """
        if cluster is None:
            return cls.from_env()
        if isinstance(cluster, ClusterConfig):
            return cluster
        if cluster is False:
            return None
        if cluster is True:
            return cls(shards=2)
        if isinstance(cluster, int):
            return None if cluster <= 1 else cls(shards=cluster)
        raise TypeError(
            "cluster must be None, a bool, an int shard count or a "
            f"ClusterConfig, not {type(cluster).__name__}"
        )


@dataclass(frozen=True)
class GroupPlacement:
    """One interval group's placement row (for the admin rendering)."""

    group_id: int
    #: low bound opening the group (``-inf`` for group 0)
    low: float
    #: low bound opening the *next* group (``+inf`` for the last)
    high: float
    shard: int
    entry_count: int
    block_ids: tuple[int, ...]


class PlacementMap:
    """group ↔ shard assignment plus the interval → group resolver."""

    def __init__(
        self,
        config: ClusterConfig,
        cutpoints: list[float],
        group_shards: tuple[int, ...],
        groups: tuple[GroupPlacement, ...],
    ) -> None:
        self.config = config
        self._cutpoints = cutpoints
        self._group_shards = group_shards
        self.groups = groups

    # ------------------------------------------------------------------
    # Resolution (pure geometry → ownership)
    # ------------------------------------------------------------------
    def group_of_low(self, low: float) -> int:
        """Interval group owning an interval that opens at ``low``."""
        return max(0, bisect_right(self._cutpoints, low) - 1)

    def shard_of_low(self, low: float) -> int:
        return self._group_shards[self.group_of_low(low)]

    def shards_overlapping(self, low: float, high: float) -> set[int]:
        """Owners of every group intersecting ``[low, high]``.

        Group ``g`` covers ``[cut[g], cut[g+1])``; the range intersects
        groups ``group_of(low) .. group_of(high)`` inclusive (the
        cutpoints are sorted), so this is a contiguous slice.

        This is also the update router's reachability primitive:
        descendant reach is the entry's own span (laminarity).  Axis
        reach (sibling, following/preceding, ancestor) is deliberately
        *not* expressed here — selection-dependent state is gated on the
        global epoch, never on per-shard ownership, so the router only
        needs containment reach (see ``Coordinator.invalidate_entry``).
        """
        first = self.group_of_low(low)
        last = self.group_of_low(high)
        return {self._group_shards[g] for g in range(first, last + 1)}

    def group_count(self) -> int:
        return len(self._group_shards)

    def groups_of_shard(self, shard: int) -> list[GroupPlacement]:
        return [group for group in self.groups if group.shard == shard]

    def signature(self) -> tuple:
        """Hashable form of the whole placement (determinism assertions)."""
        return (
            self.config.shards,
            self.config.replicas,
            self.config.seed,
            tuple(self._cutpoints),
            self._group_shards,
        )


def build_placement(
    hosted: "HostedDatabase",
    config: ClusterConfig,
    backend: "str | None" = None,
) -> PlacementMap:
    """Place a hosted database's interval groups onto ``config.shards``.

    Groups are contiguous spans of the interval-sorted entry list (see
    :meth:`~repro.core.dsi.StructuralIndex.group_cutpoints`); the
    group → shard assignment walks a seeded permutation of the shards
    round-robin, so every shard owns ``~groups_per_shard`` groups and the
    assignment is reproducible from the seed alone.

    On the columnar backend the cutpoints and per-group counts are read
    straight off the plane arrays — same order, same values — so a
    lazily loaded (mmap) index places without hydrating its object rows.
    """
    from repro.core.columnar import resolve_backend

    index = hosted.structural_index
    requested = config.shards * config.groups_per_shard
    columnar = resolve_backend(backend) == "columnar"
    if columnar:
        planes = index.columnar()
        cutpoints = planes.group_cutpoints(requested)
    else:
        cutpoints = index.group_cutpoints(requested)
    permutation = list(range(config.shards))
    random.Random(config.seed).shuffle(permutation)
    group_shards = tuple(
        permutation[g % config.shards] for g in range(len(cutpoints))
    )

    placement = PlacementMap(config, cutpoints, group_shards, ())
    # Count entries/blocks per group for the admin rendering.
    entry_counts = [0] * len(cutpoints)
    if columnar:
        entry_lows = planes.lows
        block_items = planes.block_table_dict().items()
    else:
        entry_lows = [entry.interval.low for entry in index.entries]
        block_items = index.block_table.items()
    for low in entry_lows:
        entry_counts[placement.group_of_low(low)] += 1
    group_blocks: list[list[int]] = [[] for _ in cutpoints]
    for block_id, interval in block_items:
        group_blocks[placement.group_of_low(interval.low)].append(block_id)
    bounds = cutpoints[1:] + [float("inf")]
    placement.groups = tuple(
        GroupPlacement(
            group_id=g,
            low=cutpoints[g],
            high=bounds[g],
            shard=group_shards[g],
            entry_count=entry_counts[g],
            block_ids=tuple(sorted(group_blocks[g])),
        )
        for g in range(len(cutpoints))
    )
    return placement


def blocks_of_shard(
    hosted: "HostedDatabase", placement: PlacementMap, shard: int
) -> frozenset[int]:
    """Block ids whose representative interval falls in ``shard``'s groups."""
    return frozenset(
        block_id
        for block_id, interval in hosted.structural_index.block_table.items()
        if placement.shard_of_low(interval.low) == shard
    )
