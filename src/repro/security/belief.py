"""Attacker belief tracking (Definition 3.5 / Theorem 6.1).

Secure query answering demands that the server's belief probability
``Bel(B(A))`` — that encryption block B satisfies a query A captured by
some SC — never increases as it observes more client queries and its own
responses.  The tracker models the Theorem 6.1 argument:

* for node-type SCs the tag tokens are Vernam-encrypted, so an observed
  query reveals nothing about which tag it targets: the belief stays at
  the prior (1 / #candidate tags);
* for association SCs the first observed value-range query moves the
  belief from the prior ``1/k`` (k plaintext values) down to
  ``1/C(n−1, k−1)`` (n ciphertext values) and keeps it there — a
  *decrease*, after which further queries leave it fixed.

The tracker is observational: the benchmark feeds it a real query stream
from a hosted system and asserts the monotone non-increase that the
theorem proves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.security.counting import value_index_candidates


@dataclass
class BeliefRecord:
    """Belief trajectory for one proposition B(A)."""

    proposition: str
    history: list[Fraction] = field(default_factory=list)

    @property
    def current(self) -> Fraction:
        return self.history[-1]

    def never_increased(self) -> bool:
        return all(
            later <= earlier
            for earlier, later in zip(self.history, self.history[1:])
        )


class BeliefTracker:
    """Tracks Bel(B(A)) across an observed query/answer stream."""

    def __init__(self) -> None:
        self._records: dict[str, BeliefRecord] = {}

    def observe_node_query(
        self, proposition: str, candidate_tags: int
    ) -> Fraction:
        """A query against a node-type SC target.

        The Vernam token is independent of the tag, so the posterior stays
        at the uniform prior over the candidate tag space.
        """
        if candidate_tags < 1:
            raise ValueError("candidate_tags must be positive")
        belief = Fraction(1, candidate_tags)
        self._append(proposition, belief)
        return belief

    def observe_association_query(
        self,
        proposition: str,
        plaintext_values: int,
        ciphertext_values: int,
    ) -> Fraction:
        """A value-range query against an association SC endpoint.

        Theorem 6.1: the belief moves from 1/k to 1/C(n−1, k−1) on the
        first observation (a non-increase since C(n−1,k−1) ≥ k for n > k)
        and stays there for subsequent similar queries.
        """
        record = self._records.get(proposition)
        if record is None:
            prior = Fraction(1, plaintext_values)
            self._append(proposition, prior)
        candidates = value_index_candidates(
            ciphertext_values, plaintext_values
        )
        belief = Fraction(1, candidates)
        self._append(proposition, belief)
        return belief

    def _append(self, proposition: str, belief: Fraction) -> None:
        record = self._records.setdefault(
            proposition, BeliefRecord(proposition)
        )
        record.history.append(belief)

    def record(self, proposition: str) -> BeliefRecord:
        return self._records[proposition]

    def all_records(self) -> list[BeliefRecord]:
        return list(self._records.values())

    def secure(self) -> bool:
        """Definition 3.5: no tracked belief ever increased."""
        return all(record.never_increased() for record in self._records.values())
