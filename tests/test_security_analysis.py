"""Tests for the security-audit report."""

import pytest

from repro.core.system import SecureXMLSystem
from repro.security.analysis import audit_system
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)


@pytest.fixture
def report_pair():
    document = build_healthcare_database()
    system = SecureXMLSystem.host(
        document, healthcare_constraints(), scheme="opt"
    )
    return audit_system(system, document), system


class TestAuditReport:
    def test_every_encrypted_field_audited(self, report_pair):
        report, system = report_pair
        audited = {audit.field_name for audit in report.fields}
        assert audited == set(system.hosted.field_plans)

    def test_secure_hosting_passes(self, report_pair):
        report, _ = report_pair
        assert not report.any_value_cracked
        assert "PASS" in report.render()

    def test_margins_positive(self, report_pair):
        report, _ = report_pair
        for audit in report.fields:
            assert audit.database_candidates >= 2
            assert audit.partition_candidates >= 1
            assert audit.ciphertext_values >= audit.plaintext_values
        assert report.structural_candidates >= 1

    def test_weakest_field_identified(self, report_pair):
        report, _ = report_pair
        weakest = report.weakest_field
        assert weakest is not None
        assert weakest.database_candidates == min(
            audit.database_candidates for audit in report.fields
        )

    def test_out_of_model_exposure_reported(self, report_pair):
        """The healthcare hosting has a unique-count encrypted tag."""
        report, _ = report_pair
        assert report.tags_cracked_with_priors  # §8 item 2 is real
        assert "OUT-OF-MODEL" in report.render()

    def test_render_contains_key_sections(self, report_pair):
        report, _ = report_pair
        text = report.render()
        assert "SECURITY AUDIT" in text
        assert "Thm4.1" in text and "Thm5.2" in text
        assert "Theorem 5.1" in text

    def test_strawman_hosting_fails_audit(self):
        """The insecure mode is caught: deterministic blocks crack."""
        from collections import Counter

        from repro.security.attacks import (
            FrequencyAttack,
            ciphertext_block_histogram,
        )
        from repro.xmldb.stats import value_frequencies

        document = build_healthcare_database()
        system = SecureXMLSystem.host(
            document, healthcare_constraints(), scheme="leaf", secure=False
        )
        # The audit's value-index check still passes (OPESS is intact);
        # the block-level frequency attack is what breaks the strawman.
        fields = value_frequencies(document)
        token = system.hosted.field_tokens["disease"]
        attack = FrequencyAttack(fields["disease"])
        result = attack.run(
            ciphertext_block_histogram(system.hosted, token), "disease"
        )
        assert result.cracked

    def test_audit_after_updates(self):
        document = build_healthcare_database()
        system = SecureXMLSystem.host(
            document, healthcare_constraints(), scheme="opt"
        )
        system.insert_element(
            "//patient[pname='Matt']/treat", "disease", "flu"
        )
        # Audit against the *updated* plaintext view.
        from repro.xmldb.node import Element, Text
        from repro.xpath.evaluator import evaluate

        oracle = build_healthcare_database()
        treat = evaluate(oracle, "//patient[pname='Matt']/treat")[0]
        leaf = Element("disease")
        leaf.append(Text("flu"))
        treat.append(leaf)
        oracle.renumber()
        report = audit_system(system, oracle)
        assert not report.any_value_cracked


class TestAuditCLI:
    def test_cli_audit_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["audit", "--workload", "healthcare"]) == 0
        assert "SECURITY AUDIT" in capsys.readouterr().out
