"""The untrusted server (§6.2).

The server holds the hosted (partially encrypted) database and the metadata
— DSI index table, encryption block table, B-tree value index — and answers
translated queries by structural joins and index lookups alone.  It never
holds a key and never sees plaintext beyond what the chosen encryption
scheme legitimately leaves in the clear.

For each query the server ships *fragments*: the hosted subtrees (or whole
encryption blocks) rooted at the matches of the query's ship node, each
tagged with its plaintext ancestor path so the client can rebuild a pruned
document and re-evaluate the original query exactly.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

from repro.core.columnar import match_pattern_columnar, resolve_backend
from repro.core.dsi import IndexEntry, StructuralIndex
from repro.core.encryptor import HostedDatabase
from repro.core.integrity import (
    RollbackDetectedError,
    TamperedRequestError,
    seal_fresh,
    unseal_fresh,
)
from repro.core.leakage import LeakageContext
from repro.core.opess import ValueIndex
from repro.core.parallel import WorkerPool, iter_chunks
from repro.core.structural_join import MatchResult, match_pattern
from repro.core.translate import TranslatedQuery
from repro.netsim.message import (
    MessageDecodeError,
    decode_query,
    encode_fragment_chunk,
    encode_response,
    encode_stream_header,
)
from repro.perf import counters
from repro.xmldb.node import (
    Attribute,
    Element,
    EncryptedBlockNode,
    Node,
    iter_encrypted_blocks,
)
from repro.xmldb.serializer import serialize


@dataclass(frozen=True)
class Fragment:
    """One shipped result unit: subtree XML plus its ancestor path."""

    #: ((tag, hosted-node-id), ...) from the document root down to the
    #: fragment root's parent; empty when the fragment root *is* the root.
    ancestor_path: tuple[tuple[str, int], ...]
    xml: str
    #: Hosted id of the fragment's root node.  ``None`` on the
    #: single-server path (the fragment list is already in document
    #: order); cluster shards tag their fragments with it so the
    #: coordinator can deduplicate the gathered partial responses and
    #: restore the global document order exactly (see
    #: :mod:`repro.cluster.coordinator`).
    root_id: "int | None" = None

    def size_bytes(self) -> int:
        overhead = sum(len(tag) + 8 for tag, _ in self.ancestor_path)
        return len(self.xml.encode("utf-8")) + overhead


@dataclass
class ServerResponse:
    """The answer to one translated query."""

    fragments: list[Fragment]
    naive: bool = False
    blocks_shipped: int = 0
    candidate_counts: dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return sum(fragment.size_bytes() for fragment in self.fragments)


class Server:
    """Query executor over the hosted database and metadata.

    The server keeps a *fragment cache*: the serialized XML and ancestor
    path of every subtree it has shipped, keyed by the hosted node's id.
    Serialization touches only data the server already stores in the
    clear (ciphertext payloads and plaintext structure), so caching it
    changes nothing about what an attacker sees — it only stops the
    server re-serializing the same subtree for every repeated query.
    The cache is invalidated by scheme-epoch comparison against the
    hosted database, the hook the update engine drives.
    """

    def __init__(
        self,
        hosted: HostedDatabase,
        enable_cache: bool = True,
        session_keys: "tuple[bytes, bytes] | None" = None,
        pool: "WorkerPool | None" = None,
        min_shard: int = 64,
        obs: "Observability | None" = None,
        backend: "str | None" = None,
    ) -> None:
        self._hosted = hosted
        self._obs = obs
        #: Join representation: "object" walks the entry forest,
        #: "columnar" sweeps the flat plane arrays (identical answers).
        self._backend = resolve_backend(backend)
        self._hosted_root = hosted.hosted_root
        self._structure: StructuralIndex = hosted.structural_index
        self._values: ValueIndex = hosted.value_index
        self._placeholders = hosted.placeholders
        self._enable_cache = enable_cache
        self._fragment_cache: dict[int, Fragment] = {}
        #: Sealed wire responses keyed by the (verified-by-construction)
        #: request blob: a repeated query re-sends byte-identical request
        #: bytes, so the warm path skips decode + evaluate + seal entirely
        #: and even returns the *same bytes object*, which lets the client
        #: verify it with one cached-hash dict lookup.
        self._wire_cache: dict[bytes, bytes] = {}
        #: Streamed twin of the wire cache: request blob → the exact
        #: sealed chunk sequence previously streamed for it.  Replaying
        #: the identical bytes objects keeps the client's chunk-level
        #: verification a cached-hash dict lookup per chunk.
        self._stream_cache: dict[bytes, tuple[bytes, ...]] = {}
        self._session_keys = session_keys
        #: Worker pool for sharded structural joins and fragment
        #: serialization; ``None`` preserves the serial evaluator.
        self._pool = pool
        self._min_shard = min_shard
        self._cache_epoch = hosted.epoch
        #: Global-epoch gate for the *sealed* caches only.  Sealed blobs
        #: embed the commit epoch and Merkle root, so any global epoch
        #: move invalidates them — even on a :class:`ShardServer` whose
        #: own ``shard_epoch`` (and therefore its fragment cache) was
        #: untouched by the update.  Tracking it separately keeps
        #: fragment caches warm on unaffected shards.
        self._wire_epoch = hosted.epoch
        #: hosted node id → node, for the columnar matcher's survivor
        #: materialization; rebuilt lazily after every epoch bump
        #: (updates add and remove hosted nodes).
        self._nodes_by_id: "dict[int, Node] | None" = None
        #: Serializes cache reads against epoch flushes.  The serving
        #: layer dispatches many connections onto a thread pool, so an
        #: epoch bump must not be able to interleave with a cache lookup
        #: (e.g. a wire-cache hit sealed at the pre-flush anchor being
        #: returned after the flush).  Reentrant because the wire entry
        #: points nest the epoch checks.  Query-vs-update *evaluation*
        #: is serialized one level up (the tenant session's
        #: reader–writer lock); this lock only has to make the
        #: check-epoch + cache-access sequences atomic.
        self._cache_lock = threading.RLock()
        #: Bounded request-staleness acceptance (commits).  0 — the
        #: default everywhere in-process — keeps the strict rule: a
        #: request must be sealed at the *current* anchor.  The serving
        #: layer raises it so a request sealed while a concurrent writer
        #: was committing is still accepted, verified against the
        #: authentic historical root for its epoch (see
        #: :meth:`HostedDatabase.root_at`).  Requests older than the
        #: window are rejected exactly as before — the window bounds how
        #: far back a replayed request can probe.
        self.freshness_window = 0
        #: Access-pattern leakage tier; ``None`` (the default) keeps the
        #: evaluated path untouched.  See :meth:`attach_leakage`.
        self.leakage: "LeakageContext | None" = None
        self._leakage_observer = "server"
        self._universe_cache: "tuple[int, tuple[int, ...]] | None" = None

    @property
    def backend(self) -> str:
        """The join representation this server evaluates over."""
        return self._backend

    def _check_epoch(self) -> None:
        """Flush the fragment cache when the hosted state has mutated."""
        with self._cache_lock:
            if self._hosted.epoch != self._cache_epoch:
                self.flush_caches()
                self._cache_epoch = self._hosted.epoch

    def _check_wire_epoch(self) -> None:
        """Drop only the sealed caches when the *global* epoch moved."""
        with self._cache_lock:
            if self._hosted.epoch != self._wire_epoch:
                self._wire_cache.clear()
                self._stream_cache.clear()
                self._wire_epoch = self._hosted.epoch

    def _seal_fresh(self, key: bytes, payload: bytes) -> bytes:
        """Seal under the current commit epoch and Merkle root.

        Client and server read the same hosted state, so an honest
        exchange always verifies; only a *replayed* (rolled-back) blob —
        whose header bytes authenticate an earlier epoch — fails the
        client's freshness check.  Read through
        :meth:`HostedDatabase.anchor` so the pair cannot tear across a
        concurrent commit and the anchor lands in the bounded history.
        """
        epoch, root = self._hosted.anchor()
        return seal_fresh(key, payload, epoch, root)

    def _open_fresh_request(self, key: bytes, request_blob: bytes) -> bytes:
        """Verify a request's envelope *and* freshness.

        A replayed stale request is rejected just like a tampered one —
        the attacker cannot probe an old epoch's plans through the
        server either.  When :attr:`freshness_window` is raised (the
        concurrent serving path), a request sealed within the last N
        commits is re-verified against the authentic historical root for
        its own epoch instead of being bounced — a client that sealed an
        instant before a concurrent writer committed should not have to
        re-seal and re-send.
        """
        epoch, root = self._hosted.anchor()
        try:
            return unseal_fresh(
                key, request_blob, epoch, root,
                error=TamperedRequestError,
            )
        except RollbackDetectedError as stale:
            if (
                self.freshness_window <= 0
                or stale.epoch_lag > self.freshness_window
            ):
                raise
            historical = self._hosted.root_at(stale.observed_epoch)
            if historical is None:
                raise
            payload = unseal_fresh(
                key, request_blob, stale.observed_epoch, historical,
                error=TamperedRequestError,
            )
            counters.add("requests_accepted_in_window")
            return payload

    def flush_caches(self) -> None:
        """Drop the fragment and sealed-response caches.

        On the columnar backend this also drops the index's plane
        snapshot (with its per-tag slice-offset memo) and the node map —
        a flush must leave *no* derived representation of pre-flush
        state behind.
        """
        with self._cache_lock:
            self._fragment_cache.clear()
            self._wire_cache.clear()
            self._stream_cache.clear()
            self._nodes_by_id = None
            if self._backend == "columnar":
                self._structure.drop_columnar()

    # ------------------------------------------------------------------
    # Normal path: §6.2 steps 1-3
    # ------------------------------------------------------------------
    def answer(self, query: TranslatedQuery) -> ServerResponse:
        """Evaluate a translated query and assemble the fragments."""
        self._check_epoch()
        result = self._match(query)
        roots = self._fragment_roots(result.ship_entries)
        self._observe_leakage(roots)
        fragments = self._make_fragments(roots)
        return ServerResponse(
            fragments=fragments,
            blocks_shipped=self._count_blocks(roots),
            candidate_counts=result.candidate_counts,
        )

    # ------------------------------------------------------------------
    # Access-pattern leakage tier
    # ------------------------------------------------------------------
    def attach_leakage(
        self, context: LeakageContext, observer: str = "server"
    ) -> None:
        """Join this server to a system-wide leakage context.

        ``observer`` names this server's vantage point in the recorded
        traces ("server" for the monolith, "shard<N>" for cluster
        shards — every replica of one shard shares the name, so the
        trace stream is per-shard regardless of which replica served).
        """
        self.leakage = context
        self._leakage_observer = observer

    def _leakage_universe(self) -> tuple[int, ...]:
        """Sorted block-id population decoy fetches may draw from.

        The monolith can be asked for any stored block; cluster shards
        override this with their placement slice.  Cached per epoch —
        updates add and remove blocks.
        """
        cached = self._universe_cache
        epoch = self._hosted.epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        universe = tuple(sorted(self._hosted.blocks))
        self._universe_cache = (epoch, universe)
        return universe

    def _observe_leakage(self, roots: list[Node]) -> None:
        """Record (and pad/decoy) one evaluated query's fetch trace.

        Called once per *evaluation* — warm wire/stream cache hits
        replay sealed bytes without touching storage, so they add no
        trace, exactly as a storage-level observer would see it.
        """
        context = self.leakage
        if context is None:
            return
        real = [
            block.block_id
            for root in roots
            for block in iter_encrypted_blocks(root)
        ]
        total = context.observe(
            self._leakage_observer,
            real,
            self._leakage_universe(),
            self._hosted.blocks.get,
        )
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.observe("leakage_fetch_blocks", float(total))

    def _span(self, name: str):
        """Span for one server stage, under the caller's ambient span.

        The system opens a ``server`` span around every call into this
        class (including each stream-generator pull), so these children
        break its time into join vs. serialization.  No-op without an
        enabled observability context.
        """
        if self._obs is None or not self._obs.enabled:
            return nullcontext()
        return self._obs.tracer.span(name)

    def _match(self, query: TranslatedQuery) -> MatchResult:
        """Structural join, sharded across the pool when one is set."""
        if self._backend == "columnar":
            with self._span("server.join"):
                return match_pattern_columnar(
                    query,
                    self._columnar_planes(),
                    self._values,
                    self._node_map().get,
                    pool=self._pool,
                    min_shard=self._min_shard,
                    obs=self._obs,
                )
        with self._span("server.join"):
            return match_pattern(
                query,
                self._structure,
                self._values,
                pool=self._pool,
                min_shard=self._min_shard,
            )

    def _columnar_planes(self):
        """The index's plane snapshot, timing cold builds."""
        planes = self._structure.columnar_cached()
        if planes is not None:
            return self._structure.columnar()  # counts the hit
        start = time.perf_counter()
        planes = self._structure.columnar()
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.observe(
                "plane_build_seconds", time.perf_counter() - start
            )
        return planes

    def _node_map(self) -> "dict[int, Node]":
        """hosted node id → node (elements, attributes, block stubs)."""
        with self._cache_lock:
            nodes = self._nodes_by_id
            if nodes is not None:
                return nodes
            nodes = {}
            stack: list[Node] = [self._hosted.hosted_root]
            while stack:
                node = stack.pop()
                nodes[node.node_id] = node
                if isinstance(node, Element):
                    for attribute in node.attributes:
                        nodes[attribute.node_id] = attribute
                    for child in node.children:
                        if isinstance(child, (Element, EncryptedBlockNode)):
                            stack.append(child)
            self._nodes_by_id = nodes
            return nodes

    def _make_fragments(self, roots: list[Node]) -> list[Fragment]:
        """Serialize the shipped subtrees, fanned across the pool.

        ``map_ordered`` keeps the fragment order identical to the serial
        path; the fragment cache tolerates concurrent writers (worst case
        two workers serialize the same node to the identical fragment).
        """
        with self._span("server.serialize"):
            if (
                self._pool is not None
                and self._pool.backend == "thread"
                and len(roots) >= 2
            ):
                return self._pool.map_ordered(self._make_fragment, roots)
            return [self._make_fragment(node) for node in roots]

    @staticmethod
    def _count_blocks(roots: list[Node]) -> int:
        """Encrypted blocks inside the shipped subtrees (ground truth).

        A fragment root is often a plaintext element with block
        placeholders nested somewhere below it; counting only roots that
        *are* placeholders undercounted those, so ``blocks_shipped``
        disagreed with what actually crossed the wire.  Walk each
        subtree instead — the same walk the client decrypts by.
        """
        return sum(
            1
            for root in roots
            for _ in iter_encrypted_blocks(root)
        )

    # ------------------------------------------------------------------
    # Fallback path: the naive ship-everything protocol (§7.3 baseline)
    # ------------------------------------------------------------------
    def ship_all(self) -> ServerResponse:
        """Send the entire hosted database (the naive method)."""
        fragment = Fragment(ancestor_path=(), xml=serialize(self._hosted_root))
        return ServerResponse(
            fragments=[fragment],
            naive=True,
            blocks_shipped=self._count_blocks([self._hosted_root]),
        )

    # ------------------------------------------------------------------
    # Wire interface (integrity-enveloped bytes; see docs/PROTOCOL.md,
    # "Failure model & integrity envelope")
    # ------------------------------------------------------------------
    def answer_wire(self, request_blob: bytes) -> bytes:
        """Answer a sealed wire request with a sealed wire response.

        Verifies the request envelope (raising
        :class:`~repro.core.integrity.TamperedRequestError` when the wire
        mangled it), decodes the translated query, evaluates it, and
        seals the encoded response.  A request that decodes to garbage
        despite an intact envelope is impossible by construction, but a
        :class:`MessageDecodeError` is mapped to the same typed error so
        the client's retry loop has a single failure surface.
        """
        request_key, response_key = self._require_session_keys()
        with self._cache_lock:
            self._check_epoch()
            self._check_wire_epoch()
            if self._enable_cache:
                cached = self._wire_cache.get(request_blob)
                if cached is not None:
                    return cached
        query_bytes = self._open_fresh_request(request_key, request_blob)
        try:
            translated = decode_query(query_bytes)
        except MessageDecodeError as exc:
            raise TamperedRequestError(str(exc)) from exc
        response = self.answer(translated)
        blob = self._seal_fresh(response_key, encode_response(response))
        if self._enable_cache:
            with self._cache_lock:
                self._wire_cache[request_blob] = blob
        return blob

    def answer_wire_stream(
        self, request_blob: bytes, chunk_fragments: int = 8
    ) -> Iterator[bytes]:
        """Answer a sealed request as a stream of sealed chunks.

        The generator runs the structural join up front (the header needs
        the counts), then serializes and seals the fragments *lazily*,
        ``chunk_fragments`` at a time — so a client pulling the stream
        can verify and decrypt chunk ``i`` while this generator is still
        serializing chunk ``i+1``.  Chunk sequencing (index + totals in
        the header) makes truncation and reordering detectable at the
        client; see ``docs/PROTOCOL.md``, "Streaming & parallel
        execution".

        Warm repeats replay the identical sealed chunk objects from the
        stream cache, mirroring :meth:`answer_wire`'s monolithic cache.
        """
        request_key, response_key = self._require_session_keys()
        with self._cache_lock:
            self._check_epoch()
            self._check_wire_epoch()
            cached = (
                self._stream_cache.get(request_blob)
                if self._enable_cache
                else None
            )
        if cached is not None:
            yield from cached
            return
        query_bytes = self._open_fresh_request(request_key, request_blob)
        try:
            translated = decode_query(query_bytes)
        except MessageDecodeError as exc:
            raise TamperedRequestError(str(exc)) from exc

        result = self._match(translated)
        roots = self._fragment_roots(result.ship_entries)
        self._observe_leakage(roots)
        runs = list(iter_chunks(roots, chunk_fragments))
        emitted: list[bytes] = []

        def emit(payload: bytes) -> bytes:
            blob = self._seal_fresh(response_key, payload)
            emitted.append(blob)
            counters.add("chunks_streamed")
            return blob

        yield emit(
            encode_stream_header(
                naive=False,
                blocks_shipped=self._count_blocks(roots),
                candidate_counts=result.candidate_counts,
                fragment_count=len(roots),
                chunk_count=1 + len(runs),
            )
        )
        for index, run in enumerate(runs, start=1):
            fragments = self._make_fragments(list(run))
            yield emit(encode_fragment_chunk(index, fragments))
        if self._enable_cache:
            with self._cache_lock:
                self._stream_cache[request_blob] = tuple(emitted)

    def ship_all_wire(self, request_blob: bytes) -> bytes:
        """Naive-path wire exchange: verify the request, ship everything.

        The naive request payload is just the opaque query string (the
        server never parses it); the envelope check still rejects a
        mangled request instead of wasting a full-database ship on it.

        Deliberately uncached: the naive path is the §7.3 cost baseline,
        so every call pays the full serialize + seal bill.
        """
        request_key, response_key = self._require_session_keys()
        self._check_epoch()
        self._check_wire_epoch()
        self._open_fresh_request(request_key, request_blob)
        return self._seal_fresh(
            response_key, encode_response(self.ship_all())
        )

    def _require_session_keys(self) -> tuple[bytes, bytes]:
        if self._session_keys is None:
            raise RuntimeError(
                "server has no session MAC keys; construct it with "
                "session_keys=keyring.session_keys() to use the wire API"
            )
        return self._session_keys

    # ------------------------------------------------------------------
    # Fragment assembly
    # ------------------------------------------------------------------
    def _fragment_roots(self, entries: list[IndexEntry]) -> list[Node]:
        """Hosted nodes to ship, deduplicated and non-nested."""
        nodes: dict[int, Node] = {}
        for entry in entries:
            node = self._node_for(entry)
            if node is not None:
                nodes[id(node)] = node
        # Drop nodes nested inside other shipped nodes.
        chosen = list(nodes.values())
        chosen_ids = {id(node) for node in chosen}
        kept = []
        for node in chosen:
            if any(id(anc) in chosen_ids for anc in node.ancestors()):
                continue
            kept.append(node)
        kept.sort(key=lambda node: node.node_id)
        return kept

    def _node_for(self, entry: IndexEntry) -> Node | None:
        if entry.block_id is not None:
            return self._placeholders.get(entry.block_id)
        node = entry.hosted_node
        if isinstance(node, Attribute):
            # Attributes ship with their owning element.
            return node.parent
        return node

    def _make_fragment(self, node: Node) -> Fragment:
        if self._enable_cache:
            with self._cache_lock:
                cached = self._fragment_cache.get(node.node_id)
            if cached is not None:
                counters.add("fragment_cache_hits")
                return cached
            counters.add("fragment_cache_misses")
        path = []
        for ancestor in reversed(list(node.ancestors())):
            assert isinstance(ancestor, Element)
            path.append((ancestor.tag, ancestor.node_id))
        fragment = Fragment(ancestor_path=tuple(path), xml=serialize(node))
        if self._enable_cache:
            with self._cache_lock:
                self._fragment_cache[node.node_id] = fragment
        return fragment

    # ------------------------------------------------------------------
    # Observable state (what an attacker on the server sees)
    # ------------------------------------------------------------------
    def hosted_size_bytes(self) -> int:
        return len(serialize(self._hosted_root).encode("utf-8"))

    @property
    def structural_index(self) -> StructuralIndex:
        return self._structure

    @property
    def value_index(self) -> ValueIndex:
        return self._values
