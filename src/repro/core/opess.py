"""OPESS: order-preserving encryption with splitting and scaling (§5.2).

The value index must let the server answer range predicates without seeing
values, against an adversary who knows the *exact* plaintext frequency of
every field.  Plain order-preserving encryption fails that adversary —
ciphertext frequencies mirror plaintext frequencies — so the paper layers
two defences on top of an OPE function ``enc``:

**Splitting** (flattening the distribution): find three consecutive chunk
sizes ``m−1, m, m+1`` such that every occurrence count ``nᵢ`` decomposes as
``nᵢ = k¹ᵢ(m−1) + k²ᵢ·m + k³ᵢ(m+1)``; map the i-th value's occurrences
chunk-by-chunk to distinct ciphertexts, so every ciphertext occurs ``m−1``,
``m`` or ``m+1`` times (Figure 6).  The j-th chunk of value ``v`` is
displaced to ``enc(v + (w₁+…+w_j)·δ)`` where the ``w``'s are secret weights
in ``(0, 1/(K+1))`` and ``δ`` is the value gap — which keeps ciphertexts of
different plaintexts from straddling (requirement (*)).

**Scaling** (defeating total-count reconciliation): splitting preserves
``Σnᵢ``, so an attacker could group adjacent ciphertexts until they match a
known count.  Each value therefore gets a random scale factor ``sᵢ`` and
every index entry of its chunks is replicated ``sᵢ`` times, destroying the
total-count invariant.

Implementation notes (deviations are called out in DESIGN.md):

* We take ``δ`` as the *minimum* gap between consecutive values.  The
  paper's prose says maximum, but its own non-straddling requirement (*)
  needs displacements smaller than the gap to the *next* value, which only
  the minimum gap guarantees in general (the paper's worked example uses
  two consecutive values, where the two coincide).
* Weights are drawn on a discrete grid inside ``(0, 1/(K+1))`` so that
  distinct displacements survive the OPE function's fixed-point
  quantization; when the natural gap is too small the whole field is
  stretched by an integer factor the client remembers.
* Categorical domains are mapped to integer ranks ("If the domain is not
  real or rational, then we map it to such a domain.  The client keeps the
  mapping.").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.btree import BTree
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.prf import DeterministicRandom


def find_chunk_triple(counts: list[int]) -> int:
    """Choose the paper's ``m``: the largest middle chunk size that works.

    ``m`` works when every count ≥ 2 is expressible with chunk sizes
    ``(m−1, m, m+1)``; a count ``n`` is expressible iff some chunk count
    ``t`` satisfies ``t(m−1) ≤ n ≤ t(m+1)``.  Counts of 1 are handled by
    the separate singleton rule and don't constrain ``m``.  ``(2,3,4)``
    (m = 3) always works, and the paper picks the maximum ``m`` "so
    intuitively the number of keys needed is reduced".
    """
    relevant = [n for n in counts if n >= 2]
    if not relevant:
        return 3
    upper = min(relevant) + 1
    for m in range(upper, 2, -1):
        if all(_expressible(n, m) for n in relevant):
            return m
    return 3  # unreachable in practice: m=3 expresses every n >= 2


def _expressible(n: int, m: int) -> bool:
    low_t = -(-n // (m + 1))  # ceil
    high_t = n // (m - 1)
    return low_t <= high_t


def decompose_count(n: int, m: int) -> list[int]:
    """Split ``n`` occurrences into chunks of size m−1, m or m+1.

    Returns the concrete chunk-size list (e.g. 34 with m = 7 →
    ``[6, 7, 7, 7, 7]``, the paper's 34 = 1·6 + 4·7 + 0·8 example).
    """
    if n < 2:
        raise ValueError("singleton counts use the dedicated rule")
    t = -(-n // (m + 1))
    while t * (m - 1) > n:  # pragma: no cover - guarded by find_chunk_triple
        t += 1
    remainder = n - t * m
    if remainder >= 0:
        chunks = [m + 1] * remainder + [m] * (t - remainder)
    else:
        chunks = [m - 1] * (-remainder) + [m] * (t + remainder)
    assert sum(chunks) == n and len(chunks) == t
    return sorted(chunks)


@dataclass
class FieldPlan:
    """The client's secret OPESS parameters for one leaf field."""

    field_name: str
    is_numeric: bool
    #: plaintext value → position on the (possibly stretched) number line
    mapping: dict[str, float]
    #: sorted plaintext values (by position)
    ordered_values: list[str]
    m: int
    #: K sorted secret splitting weights in (0, 1/(K+1))
    weights: list[float]
    #: minimum gap between consecutive positions
    delta: float
    #: integer stretch factor applied to numeric domains
    stretch: int
    #: value → chunk sizes
    chunk_plan: dict[str, list[int]]
    #: value → scale factor sᵢ ∈ [1, 10]
    scales: dict[str, int]

    @property
    def key_count(self) -> int:
        """K: the number of splitting weights (the paper's key count)."""
        return len(self.weights)

    def position(self, value: str) -> Optional[float]:
        """Line position of a known plaintext value (None when unknown)."""
        return self.mapping.get(value)

    def position_for_literal(self, literal: str) -> Optional[float]:
        """Line position for a query literal, known or not.

        Numeric literals always have a position (the stretched number);
        unknown categorical literals interpolate between neighbouring
        ranks so inequality predicates stay meaningful.
        """
        known = self.mapping.get(literal)
        if known is not None:
            return known
        if self.is_numeric:
            try:
                return float(literal) * self.stretch
            except ValueError:
                return None
        # Unknown categorical literal: position strictly between the ranks
        # of its lexicographic neighbours.
        rank = sum(1 for value in self.ordered_values if value < literal)
        return (rank - 0.5) * _CATEGORICAL_SPACING * self.stretch

    def value_at_position(self, position: float) -> Optional[str]:
        """Invert the mapping: which plaintext value owns this position?

        A chunk ciphertext decrypts to ``position(v) + displacement`` with
        ``displacement < δ``, and consecutive value positions are at least
        ``δ`` apart, so the owning value is the largest value whose
        position is ≤ the decrypted position (within a half-δ tolerance
        below, to absorb OPE quantization).  Returns None when the
        position falls below every value.
        """
        best: Optional[str] = None
        for value in self.ordered_values:
            if self.mapping[value] <= position + self.delta * 1e-6:
                best = value
            else:
                break
        return best

    def displacement(self, chunk_index: int) -> float:
        """Cumulative displacement (w₁+…+w_j)·δ of the j-th chunk (1-based)."""
        return sum(self.weights[:chunk_index]) * self.delta

    @property
    def max_displacement(self) -> float:
        return self.displacement(len(self.weights))


_CATEGORICAL_SPACING = 1.0


def build_field_plan(
    field_name: str,
    histogram: Counter,
    stream: DeterministicRandom,
    ope: OrderPreservingEncryption,
) -> FieldPlan:
    """Derive the OPESS plan for one field from its plaintext histogram."""
    if not histogram:
        raise ValueError("cannot plan an empty field")
    values = list(histogram)
    is_numeric = all(_is_number(value) for value in values)

    if is_numeric:
        base_positions = {value: float(value) for value in values}
    else:
        ranked = sorted(values)
        base_positions = {
            value: rank * _CATEGORICAL_SPACING
            for rank, value in enumerate(ranked)
        }

    ordered = sorted(values, key=lambda value: base_positions[value])
    gaps = [
        base_positions[b] - base_positions[a]
        for a, b in zip(ordered, ordered[1:])
    ]
    positive_gaps = [gap for gap in gaps if gap > 0]
    if len(positive_gaps) != len(gaps):
        raise ValueError(f"field {field_name!r} has duplicate positions")
    delta = min(positive_gaps) if positive_gaps else 1.0

    m = find_chunk_triple(list(histogram.values()))
    chunk_plan: dict[str, list[int]] = {}
    for value in ordered:
        count = histogram[value]
        if count == 1:
            # The paper's singleton rule: split a unique occurrence into m
            # ciphertext values (all indexing the same occurrence).
            chunk_plan[value] = [1] * m
        else:
            chunk_plan[value] = decompose_count(count, m)
    key_count = max(len(chunks) for chunks in chunk_plan.values())

    # Stretch the domain if the weight grid would collide under the OPE
    # quantization: we need grid_step * delta >= 10 quantization steps.
    grid_cells = 4 * key_count * (key_count + 1)
    min_step = 1.0 / grid_cells
    required = 10.0 / ope.scale
    stretch = 1
    if min_step * delta < required:
        stretch = int(required / (min_step * delta)) + 1
    if stretch > 1:
        base_positions = {
            value: position * stretch
            for value, position in base_positions.items()
        }
        delta *= stretch
    # Sanity: the stretched domain must still fit the OPE domain.
    for value in (ordered[0], ordered[-1]):
        ope.quantize(base_positions[value] + delta)

    weights = _draw_weights(key_count, stream)
    scales = {value: stream.randint(1, 10) for value in ordered}

    return FieldPlan(
        field_name=field_name,
        is_numeric=is_numeric,
        mapping=base_positions,
        ordered_values=ordered,
        m=m,
        weights=weights,
        delta=delta,
        stretch=stretch,
        chunk_plan=chunk_plan,
        scales=scales,
    )


def _draw_weights(key_count: int, stream: DeterministicRandom) -> list[float]:
    """K distinct weights on a grid inside (0, 1/(K+1)).

    Drawing on a grid guarantees pairwise separation of at least one grid
    step, which the caller has already sized against the OPE quantization.
    """
    cells = 4 * key_count * (key_count + 1)
    chosen: set[int] = set()
    while len(chosen) < key_count:
        chosen.add(stream.randint(1, cells))
    return [cell / (cells * (key_count + 1.0)) for cell in sorted(chosen)]


def _is_number(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class KeyRange:
    """An inclusive ciphertext key range for the B-tree (None = open)."""

    low: Optional[int]
    high: Optional[int]


def chunk_ciphertexts(plan: FieldPlan, value: str, ope: OrderPreservingEncryption) -> list[int]:
    """The OPE ciphertexts of every chunk of ``value`` (ordered)."""
    position = plan.position(value)
    if position is None:
        raise KeyError(f"value {value!r} not in field plan")
    return [
        ope.encrypt_float(position + plan.displacement(j))
        for j in range(1, len(plan.chunk_plan[value]) + 1)
    ]


def translate_predicate(
    plan: FieldPlan,
    op: str,
    literal: str,
    ope: OrderPreservingEncryption,
) -> list[KeyRange]:
    """Figure 7(a): translate a value predicate into B-tree key ranges.

    Every operator becomes zero, one or two inclusive ranges over
    ciphertext keys.  For a literal that is a known domain value, the
    bounds are the paper's: the value's first-chunk ciphertext
    ``enc(v + w₁δ)`` and its last possible chunk ``enc(v + (Σw)δ)`` —
    non-straddling (*) guarantees these cover exactly the value's chunks.

    For a literal *between* domain values the bounds are anchored on its
    known neighbours instead: a displaced chunk of value ``v`` can exceed
    the literal's own position (displacements reach almost δ), so naive
    position-based bounds would drop matching chunks; neighbour anchoring
    keeps the translation exact.
    """
    position = plan.position_for_literal(literal)
    if position is None:
        return []
    known = plan.position(literal) is not None

    def enc(displaced: float) -> int:
        return ope.encrypt_float(displaced)

    def first_chunk(value: str) -> float:
        return plan.mapping[value] + plan.weights[0] * plan.delta

    def last_chunk(value: str) -> float:
        return plan.mapping[value] + plan.max_displacement

    if known:
        low_bound = enc(first_chunk(literal))
        high_bound = enc(last_chunk(literal))
        if op == "=":
            return [KeyRange(low_bound, high_bound)]
        if op == "!=":
            return [
                KeyRange(None, low_bound - 1),
                KeyRange(high_bound + 1, None),
            ]
        if op == "<":
            return [KeyRange(None, low_bound - 1)]
        if op == "<=":
            return [KeyRange(None, high_bound)]
        if op == ">":
            return [KeyRange(high_bound + 1, None)]
        if op == ">=":
            return [KeyRange(low_bound, None)]
        raise ValueError(f"unsupported operator {op!r}")

    # Unknown literal: anchor on its neighbouring domain values.
    below = None
    above = None
    for value in plan.ordered_values:
        if plan.mapping[value] < position:
            below = value
        elif plan.mapping[value] > position and above is None:
            above = value
    if op == "=":
        return []
    if op == "!=":
        return [KeyRange(None, None)]
    if op in ("<", "<="):
        if below is None:
            return []
        return [KeyRange(None, enc(last_chunk(below)))]
    if op in (">", ">="):
        if above is None:
            return []
        return [KeyRange(enc(first_chunk(above)), None)]
    raise ValueError(f"unsupported operator {op!r}")


@dataclass
class ValueIndex:
    """The server-side value index: one B-tree per (encrypted) field token."""

    trees: dict[str, BTree] = field(default_factory=dict)

    def tree_for(self, field_token: str) -> Optional[BTree]:
        return self.trees.get(field_token)

    def lookup_blocks(
        self, field_token: str, ranges: list[KeyRange]
    ) -> set[int]:
        """Block ids whose entries fall in any of the key ranges."""
        tree = self.trees.get(field_token)
        if tree is None:
            return set()
        blocks: set[int] = set()
        for key_range in ranges:
            for _, block_id in tree.range_scan(key_range.low, key_range.high):
                blocks.add(block_id)
        return blocks

    def total_entries(self) -> int:
        return sum(len(tree) for tree in self.trees.values())

    def ciphertext_histogram(self, field_token: str) -> Counter:
        """What the frequency attacker sees: key → entry count."""
        tree = self.trees.get(field_token)
        histogram: Counter = Counter()
        if tree is None:
            return histogram
        for key, _ in tree.items():
            histogram[key] += 1
        return histogram


def build_value_index(
    occurrences: dict[str, list[tuple[str, int]]],
    plans: dict[str, FieldPlan],
    field_tokens: dict[str, str],
    ope: OrderPreservingEncryption,
    min_degree: int = 16,
) -> ValueIndex:
    """Build B-trees from per-field occurrence lists.

    ``occurrences[field]`` lists ``(value, block_id)`` for every encrypted
    occurrence, in document order.  Occurrences of a value are dealt to its
    chunks in order; every resulting ⟨ciphertext, block⟩ entry is inserted
    ``sᵢ`` times (the scaling step).
    """
    index = ValueIndex()
    for field_name, occurrence_list in occurrences.items():
        plan = plans[field_name]
        tree = BTree(min_degree=min_degree)
        by_value: dict[str, list[int]] = {}
        for value, block_id in occurrence_list:
            by_value.setdefault(value, []).append(block_id)
        for value, block_ids in by_value.items():
            ciphertexts = chunk_ciphertexts(plan, value, ope)
            chunks = plan.chunk_plan[value]
            scale = plan.scales[value]
            if len(block_ids) == 1 and len(chunks) > 1:
                # Singleton rule: every chunk indexes the one occurrence.
                assignments = [
                    (ciphertext, block_ids[0]) for ciphertext in ciphertexts
                ]
            else:
                assignments = []
                cursor = 0
                for ciphertext, chunk_size in zip(ciphertexts, chunks):
                    for block_id in block_ids[cursor : cursor + chunk_size]:
                        assignments.append((ciphertext, block_id))
                    cursor += chunk_size
                assert cursor == len(block_ids)
            for ciphertext, block_id in assignments:
                for _ in range(scale):
                    tree.insert(ciphertext, block_id)
        index.trees[field_tokens[field_name]] = tree
    return index
