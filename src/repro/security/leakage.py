"""Access-pattern attacker: query recovery from observed fetch traces.

The adversary modelled here is the third of the suite's observers —
after the ciphertext-distribution attacker (:mod:`repro.security
.attacks`, PR 5) and the rollback attacker (:mod:`repro.netsim.faults`,
PR 7): an honest-but-curious party watching the *storage layer* of one
server (or one cluster shard).  It never sees plaintext, keys, query
text or response bytes — only the ordered sequence of block ids each
query's evaluation fetched, exactly what :class:`~repro.core.leakage
.TraceRecorder` captures.

The game (:func:`run_leakage_game`) follows the known-query recovery
setup of *Information Flows in Encrypted Databases* (Vaswani et al.):

1. **Profile.**  The attacker observes one labelled trace per distinct
   query (it learned the correspondence out of band — a compromised
   client, a public workload).
2. **Attack.**  The workload re-issues every query ``repeats`` times in
   a seeded shuffled order, caches flushed between issues so every
   issue is a cold evaluation the observer actually sees.  The attacker
   must attribute each unlabelled trace to a profiled query.
3. **Score.**  Accuracy is the fraction attributed correctly; random
   guessing scores ``1/Q``; *advantage* is the excess over that
   baseline, clamped at zero — the number the CI gate bounds.

Three attribution strategies, mirroring the clustering features named
in ROADMAP open item 1 (nearest-reference is single-link clustering of
each trace with its closest profile):

* ``length`` — match on trace length alone (defeated by padding);
* ``jaccard`` — set intersection over union of the fetched block sets
  (defeated by decoys saturating the universe);
* ``coaccess`` — raw co-access overlap with the profile (defeated by
  the same cover traffic, but unnormalized, so it falls to frequent
  decoys differently than Jaccard).

Bandwidth cost comes from the dedicated ``leakage_*`` perf counters:
``extra_bytes / real_bytes`` over the attack phase — the exact price of
the cover traffic, reported next to the residual advantage in
``BENCH_leakage.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.leakage import ObservedTrace, leakage_stream
from repro.perf import counters

#: Attribution strategies :class:`TraceClusteringAttack` implements.
METHODS = ("length", "jaccard", "coaccess")


@dataclass(frozen=True)
class LeakageAttackReport:
    """Outcome of one attribution strategy against one observer.

    The shape follows :class:`repro.security.attacks.AttackReport`:
    what the attacker tried, over what domain, and how far beyond
    guessing it got.
    """

    method: str
    observer: str
    #: Distinct profiled queries (the guessing domain).
    query_count: int
    #: Unlabelled traces the attacker attributed.
    trace_count: int
    #: Correct attributions.
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.trace_count if self.trace_count else 0.0

    @property
    def baseline(self) -> float:
        """Expected accuracy of uniform random guessing."""
        return 1.0 / self.query_count if self.query_count else 0.0

    @property
    def advantage(self) -> float:
        """Excess accuracy over guessing, clamped at zero."""
        return max(0.0, self.accuracy - self.baseline)

    def describe(self) -> str:
        return (
            f"{self.method} attribution on {self.observer}: "
            f"{self.correct}/{self.trace_count} correct "
            f"(accuracy {self.accuracy:.3f}, guess {self.baseline:.3f}, "
            f"advantage {self.advantage:.3f})"
        )


@dataclass
class LeakageGameResult:
    """Everything one game run produced, for tests, bench and docs."""

    observer: str
    query_count: int
    repeats: int
    reports: list[LeakageAttackReport]
    #: Ciphertext bytes the attack-phase answers actually required.
    real_bytes: int
    #: Ciphertext bytes the countermeasures added on top.
    extra_bytes: int
    labels: list[int] = field(default_factory=list)

    @property
    def bandwidth_overhead(self) -> float:
        """Cover-traffic bytes per real byte (0.0 when unprotected)."""
        if self.real_bytes <= 0:
            return 0.0
        return self.extra_bytes / self.real_bytes

    def report(self, method: str) -> LeakageAttackReport:
        for candidate in self.reports:
            if candidate.method == method:
                return candidate
        raise KeyError(method)

    @property
    def max_advantage(self) -> float:
        """The strongest strategy's advantage — what the gate bounds."""
        return max(report.advantage for report in self.reports)

    def describe(self) -> str:
        lines = [
            f"leakage game on {self.observer}: {self.query_count} queries "
            f"x {self.repeats} repeats, bandwidth overhead "
            f"{self.bandwidth_overhead:.2f}x"
        ]
        lines.extend(report.describe() for report in self.reports)
        return "\n".join(lines)


class TraceClusteringAttack:
    """Attribute unlabelled traces to profiled queries.

    ``references[i]`` is the labelled trace the attacker observed for
    query ``i`` during the profile phase.  Ties break to the lowest
    reference index — deterministic, and exactly as good as guessing
    when every candidate ties (the fully padded case).
    """

    def __init__(self, references: "list[ObservedTrace]") -> None:
        if not references:
            raise ValueError("attack needs at least one profiled query")
        self._lengths = [len(trace.blocks) for trace in references]
        self._sets = [frozenset(trace.blocks) for trace in references]

    @property
    def query_count(self) -> int:
        return len(self._lengths)

    def classify(self, trace: ObservedTrace, method: str) -> int:
        """The profiled query index this trace most resembles."""
        if method == "length":
            length = len(trace.blocks)
            distances = [
                abs(length - reference) for reference in self._lengths
            ]
            return min(range(len(distances)), key=distances.__getitem__)
        observed = frozenset(trace.blocks)
        if method == "jaccard":
            scores = [
                self._jaccard(observed, reference)
                for reference in self._sets
            ]
        elif method == "coaccess":
            scores = [
                len(observed & reference) for reference in self._sets
            ]
        else:
            raise ValueError(
                f"unknown attribution method {method!r}; "
                f"known: {', '.join(METHODS)}"
            )
        best = max(scores)
        return scores.index(best)

    @staticmethod
    def _jaccard(left: frozenset, right: frozenset) -> float:
        if not left and not right:
            return 1.0
        union = len(left | right)
        return len(left & right) / union if union else 0.0

    def run(
        self,
        traces: "list[ObservedTrace]",
        labels: "list[int]",
        method: str,
        observer: str,
    ) -> LeakageAttackReport:
        """Score one strategy over a labelled attack-phase trace set."""
        if len(traces) != len(labels):
            raise ValueError("one label per trace required")
        correct = sum(
            1
            for trace, label in zip(traces, labels)
            if self.classify(trace, method) == label
        )
        return LeakageAttackReport(
            method=method,
            observer=observer,
            query_count=self.query_count,
            trace_count=len(traces),
            correct=correct,
        )


def run_leakage_game(
    system,
    queries: "list[str]",
    repeats: int = 4,
    seed: int = 0,
    observer: str = "server",
) -> LeakageGameResult:
    """Play the full profile → attack → score game against ``system``.

    ``system`` must have been hosted with the leakage tier on
    (``leakage=LeakagePolicy(...)`` at minimum records traces).  Caches
    are flushed before every issue so each one is a cold evaluation —
    warm hits replay sealed bytes without touching storage, which a
    storage-level observer never sees.  The issue order is drawn from a
    :func:`~repro.core.leakage.leakage_stream` over ``seed``, so the whole
    game replays identically across backends and runs.
    """
    context = system.leakage
    if context is None:
        raise ValueError(
            "system has no leakage context; host with leakage="
            "LeakagePolicy(...) to record traces"
        )
    recorder = context.recorder

    # Profile phase: one labelled trace per query.
    recorder.clear()
    for query in queries:
        system.flush_caches()
        system.query(query)
    references = recorder.traces(observer)
    if len(references) != len(queries):
        raise RuntimeError(
            f"profile phase recorded {len(references)} traces for "
            f"{len(queries)} queries on observer {observer!r}"
        )
    attack = TraceClusteringAttack(references)

    # Attack phase: seeded shuffled repeats, counters bracketing the
    # phase so the bandwidth overhead covers exactly these issues.
    labels = [
        index for index in range(len(queries)) for _ in range(repeats)
    ]
    leakage_stream(seed, "game-order").shuffle(labels)
    recorder.clear()
    before = counters.snapshot()
    for label in labels:
        system.flush_caches()
        system.query(queries[label])
    delta = counters.delta_since(before)
    traces = recorder.traces(observer)
    if len(traces) != len(labels):
        raise RuntimeError(
            f"attack phase recorded {len(traces)} traces for "
            f"{len(labels)} issues on observer {observer!r}"
        )

    reports = [
        attack.run(traces, labels, method, observer) for method in METHODS
    ]
    return LeakageGameResult(
        observer=observer,
        query_count=len(queries),
        repeats=repeats,
        reports=reports,
        real_bytes=delta.get("leakage_real_bytes", 0),
        extra_bytes=delta.get("leakage_extra_bytes", 0),
        labels=labels,
    )
