"""Tests for the tag-distribution attack (the §8 item-2 limitation)."""

from repro.core.system import SecureXMLSystem
from repro.security.attacks import TagDistributionAttack
from repro.xmldb.stats import tag_histogram


class TestTagDistributionAttack:
    def test_limitation_is_real(self, healthcare_doc, healthcare_scs):
        """With tag priors, unique-count encrypted tags are identified.

        The paper explicitly assumes "the server has no prior knowledge
        about ... the tag distribution"; this test shows why that
        assumption is load-bearing.
        """
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        attack = TagDistributionAttack(tag_histogram(healthcare_doc))
        cracked = attack.run(system.hosted)
        # Every crack must be correct (the attack never asserts wrongly)...
        cipher = system._keyring.tag_cipher
        for tag, token in cracked.items():
            assert cipher.encrypt_tag(tag) == token
        # ...and at least one fully-encrypted tag falls to the attack.
        assert cracked

    def test_without_priors_nothing_cracks(self, healthcare_doc, healthcare_scs):
        from collections import Counter

        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        attack = TagDistributionAttack(Counter())  # no prior knowledge
        assert attack.run(system.hosted) == {}

    def test_mixed_tags_not_attacked(self, healthcare_doc, healthcare_scs):
        """Tags with plaintext occurrences are already public; skip them."""
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        attack = TagDistributionAttack(tag_histogram(healthcare_doc))
        cracked = attack.run(system.hosted)
        for tag in cracked:
            assert tag in system.hosted.encrypted_tags
            assert tag not in system.hosted.plaintext_keys

    def test_uniform_tag_counts_resist(self):
        """Equal tag frequencies leave the attacker guessing.

        This is the shape a tag-padding countermeasure would aim for —
        the obvious mitigation to the paper's open problem.
        """
        from repro.core.constraints import parse_constraints
        from repro.xmldb.parser import parse_document

        doc = parse_document(
            "<r>"
            "<a><x>1</x></a><a><x>2</x></a>"
            "<b><y>3</y></b><b><y>4</y></b>"
            "</r>"
        )
        constraints = parse_constraints(["//a", "//b"])
        system = SecureXMLSystem.host(doc, constraints, scheme="opt")
        attack = TagDistributionAttack(tag_histogram(doc))
        # a/b/x/y all occur twice: no unique count, nothing cracks.
        assert attack.run(system.hosted) == {}
