"""Unit tests for the modelled network channel."""

import pytest

from repro.netsim import DIRECTIONS, Channel


class TestChannel:
    def test_modelled_time_formula(self):
        channel = Channel(
            bandwidth_bits_per_second=1_000_000, latency_seconds=0.01
        )
        seconds = channel.send("client->server", "q", 125_000)  # 1 Mbit
        assert seconds == pytest.approx(0.01 + 1.0)

    def test_default_is_paper_lan(self):
        channel = Channel()
        assert channel.bandwidth_bits_per_second == 100_000_000.0

    def test_transfer_log_accumulates(self):
        channel = Channel()
        channel.send("client->server", "q", 100)
        channel.send("server->client", "a", 400)
        assert channel.total_bytes() == 500
        assert channel.total_bytes("server->client") == 400
        assert len(channel.transfers) == 2

    def test_total_seconds_by_direction(self):
        channel = Channel(latency_seconds=1.0, bandwidth_bits_per_second=8.0)
        channel.send("client->server", "q", 1)  # 1 + 1 = 2s
        channel.send("server->client", "a", 2)  # 1 + 2 = 3s
        assert channel.total_seconds() == pytest.approx(5.0)
        assert channel.total_seconds("client->server") == pytest.approx(2.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Channel().send("client->server", "q", -1)

    def test_reset(self):
        channel = Channel()
        channel.send("client->server", "q", 10)
        channel.reset()
        assert channel.total_bytes() == 0

    def test_lan_transfer_negligible(self):
        """The §7.2 observation: at 100 Mbps the wire time is tiny."""
        channel = Channel()
        seconds = channel.send("server->client", "a", 50_000)  # 50 KB answer
        assert seconds < 0.005


class TestDirectionValidation:
    def test_documented_directions_accepted(self):
        channel = Channel()
        for direction in DIRECTIONS:
            channel.send(direction, "q", 1)
        assert len(channel.transfers) == len(DIRECTIONS)

    @pytest.mark.parametrize(
        "direction",
        ["sideways", "client<-server", "CLIENT->SERVER", "", "server->server"],
    )
    def test_unknown_direction_rejected(self, direction):
        with pytest.raises(ValueError, match="direction"):
            Channel().send(direction, "q", 1)

    def test_transfer_validates_direction_too(self):
        with pytest.raises(ValueError, match="direction"):
            Channel().transfer("upwards", "q", b"payload")

    def test_rejected_send_records_nothing(self):
        channel = Channel()
        with pytest.raises(ValueError):
            channel.send("sideways", "q", 10)
        assert channel.total_bytes() == 0

    def test_transfer_returns_payload_and_modelled_time(self):
        channel = Channel(latency_seconds=1.0, bandwidth_bits_per_second=8.0)
        payload, seconds = channel.transfer("client->server", "q", b"x")
        assert payload == b"x"
        assert seconds == pytest.approx(2.0)  # 1s latency + 1 byte at 1 B/s
