"""Benchmark harness utilities shared by ``benchmarks/`` and ``examples/``."""

from repro.bench.harness import (
    QueryClassResult,
    average_traces,
    format_table,
    run_query_class,
    saving_ratio,
)

__all__ = [
    "QueryClassResult",
    "average_traces",
    "format_table",
    "run_query_class",
    "saving_ratio",
]
