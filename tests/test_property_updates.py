"""Property-based update sequences: random ops, oracle-checked exactness.

Hypothesis drives random sequences of insert / update / delete operations
against a hosted system and a plaintext oracle in lockstep; after the
sequence, a battery of queries must agree exactly.  This is the strongest
guarantee the update extension offers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import canonical_node
from repro.core.system import SecureXMLSystem
from repro.core.updates import UpdateError
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.xmldb.node import Element, Text
from repro.xpath.evaluator import evaluate

_CHECK_QUERIES = (
    "//pname",
    "//SSN",
    "//disease",
    "//doctor",
    "//patient/age",
    "//patient[age>36]/pname",
    "//treat[disease='diarrhea']/doctor",
    "//insurance/policy#",
    "//note",
)

_OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(["insert_note", "insert_disease", "update_age",
                         "update_ssn", "delete_insurance"]),
        st.sampled_from(["Betty", "Matt"]),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=6,
)


def _apply(system, oracle, op, who, salt):
    """Apply one op to both sides; returns False if it was a no-op."""
    anchor = f"//patient[pname='{who}']"
    if not evaluate(oracle, anchor):
        return False
    if op == "insert_note":
        system.insert_element(anchor, "note", f"n{salt}")
        parent = evaluate(oracle, anchor)[0]
        leaf = Element("note")
        leaf.append(Text(f"n{salt}"))
        parent.append(leaf)
        oracle.renumber()
    elif op == "insert_disease":
        treats = evaluate(oracle, f"{anchor}/treat")
        if len(treats) != 1:
            return False  # target must be unique for the engine
        system.insert_element(f"{anchor}/treat", "disease", f"d{salt}")
        leaf = Element("disease")
        leaf.append(Text(f"d{salt}"))
        treats[0].append(leaf)
        oracle.renumber()
    elif op == "update_age":
        system.update_value(f"{anchor}/age", str(20 + salt))
        evaluate(oracle, f"{anchor}/age")[0].children[0].value = str(20 + salt)
    elif op == "update_ssn":
        system.update_value(f"{anchor}/SSN", f"{100000 + salt}")
        evaluate(oracle, f"{anchor}/SSN")[0].children[0].value = (
            f"{100000 + salt}"
        )
    elif op == "delete_insurance":
        if not evaluate(oracle, f"{anchor}/insurance"):
            return False
        system.delete_element(f"{anchor}/insurance")
        evaluate(oracle, f"{anchor}/insurance")[0].detach()
        oracle.renumber()
    return True


class TestRandomUpdateSequences:
    @given(_OPERATIONS, st.sampled_from(["opt", "app"]))
    @settings(max_examples=20, deadline=None)
    def test_sequence_preserves_exactness(self, operations, scheme):
        document = build_healthcare_database()
        oracle = build_healthcare_database()
        system = SecureXMLSystem.host(
            document, healthcare_constraints(), scheme=scheme
        )
        for op, who, salt in operations:
            try:
                applied = _apply(system, oracle, op, who, salt)
            except UpdateError:
                # Ambiguous target after earlier inserts: acceptable
                # refusal, state must still be consistent.
                applied = False
            if not applied:
                continue
        for query in _CHECK_QUERIES:
            expected = sorted(
                canonical_node(n) for n in evaluate(oracle, query)
            )
            assert system.query(query).canonical() == expected, query

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_repeated_ssn_rotation(self, salt):
        """Rotating the same encrypted value repeatedly stays consistent."""
        document = build_healthcare_database()
        system = SecureXMLSystem.host(
            document, healthcare_constraints(), scheme="opt"
        )
        for round_index in range(3):
            value = f"{200000 + salt + round_index}"
            system.update_value("//patient[pname='Betty']/SSN", value)
            answer = system.query(f"//patient[SSN='{value}']/pname")
            assert answer.values() == ["Betty"]
