"""Focused tests for ship-node selection (the fragment-granularity choice).

The ship node determines what the server returns: the deepest spine node
whose subtree still contains every constrained/branching pattern node and
the output.  Getting it wrong either breaks exactness (too deep) or ships
the world (too shallow), so its placement deserves direct coverage.
"""

import pytest

from repro.core.translate import _ship_node
from repro.xpath.compiler import compile_pattern
from repro.xpath.parser import parse_xpath


def ship_test(query: str) -> str:
    pattern = compile_pattern(parse_xpath(query))
    return _ship_node(pattern).test


class TestShipNodePlacement:
    def test_plain_chain_ships_output(self):
        assert ship_test("/a/b/c") == "c"
        assert ship_test("//SSN") == "SSN"

    def test_predicate_pins_the_spine_node(self):
        assert ship_test("//patient[pname='B']//SSN") == "patient"

    def test_self_constraint_pins_its_node(self):
        assert ship_test("//a/b[.='v']") == "b"

    def test_deep_predicate_branch(self):
        assert ship_test(
            "//patient[.//insurance//@coverage>=1]//SSN"
        ) == "patient"

    def test_predicate_below_output_is_fine(self):
        # The branch hangs off the output node itself: ship the output.
        assert ship_test("//a/b[c='v']") == "b"

    def test_earliest_constraint_wins(self):
        assert ship_test("//a[x=1]/b[y=2]/c") == "a"

    def test_mid_spine_constraint(self):
        assert ship_test("//a/b[y=2]/c") == "b"

    def test_existence_branch_counts(self):
        assert ship_test("//a[b]/c/d") == "a"

    def test_wildcards_on_spine(self):
        assert ship_test("/a/*/c") == "c"

    def test_attribute_output(self):
        assert ship_test("//a/@x") == "@x"
        assert ship_test("//a[@k='1']/@x") == "a"


class TestShipNodeExactnessConsequence:
    """Shipping at the chosen node keeps block-granular predicates exact."""

    @pytest.mark.parametrize("kind", ["sub", "top"])
    def test_coarse_blocks_with_predicates(
        self, kind, healthcare_doc, healthcare_scs
    ):
        from repro.core.client import canonical_node
        from repro.core.system import SecureXMLSystem
        from repro.xpath.evaluator import evaluate

        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme=kind
        )
        # Under sub/top the SSN block spans more than one SSN value, so a
        # block-granular predicate check alone would be wrong; the shipped
        # patient context restores exactness.
        query = "//patient[SSN='763895']/pname"
        expected = sorted(
            canonical_node(n) for n in evaluate(healthcare_doc, query)
        )
        assert system.query(query).canonical() == expected
