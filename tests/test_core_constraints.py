"""Unit tests for security constraints (§3.2)."""

import pytest

from repro.core.constraints import SecurityConstraint, parse_constraints
from repro.xpath.lexer import XPathSyntaxError


class TestParsing:
    def test_node_type(self):
        constraint = SecurityConstraint.parse("//insurance")
        assert not constraint.is_association
        assert str(constraint.context_path) == "//insurance"

    def test_association_type(self):
        constraint = SecurityConstraint.parse("//patient:(/pname, /SSN)")
        assert constraint.is_association
        assert str(constraint.q1) == "pname"  # normalized to relative
        assert str(constraint.q2) == "SSN"

    def test_descendant_endpoint(self):
        constraint = SecurityConstraint.parse("//patient:(/pname, //disease)")
        assert constraint.endpoint_field(2) == "disease"

    def test_attribute_endpoint(self):
        constraint = SecurityConstraint.parse(
            "//insurance:(/policy#, /@coverage)"
        )
        assert constraint.endpoint_field(2) == "@coverage"

    def test_malformed_rejected(self):
        with pytest.raises(XPathSyntaxError):
            SecurityConstraint.parse("//patient:(/pname")
        with pytest.raises(XPathSyntaxError):
            SecurityConstraint.parse("//patient:(/a, /b, /c)")

    def test_parse_constraints_skips_comments(self):
        constraints = parse_constraints(
            ["# comment", "", "//insurance", "//treat:(/disease, /doctor)"]
        )
        assert len(constraints) == 2

    def test_str_representation(self):
        constraint = SecurityConstraint.parse("//treat:(/disease, /doctor)")
        assert str(constraint) == "//treat:(disease, doctor)"


class TestBindings:
    def test_context_nodes(self, healthcare_doc, healthcare_scs):
        insurance_sc = healthcare_scs[0]
        nodes = insurance_sc.context_nodes(healthcare_doc)
        assert len(nodes) == 2
        assert all(node.tag == "insurance" for node in nodes)

    def test_endpoint_nodes(self, healthcare_doc, healthcare_scs):
        name_ssn = healthcare_scs[1]
        pnames = name_ssn.endpoint_nodes(healthcare_doc, 1)
        ssns = name_ssn.endpoint_nodes(healthcare_doc, 2)
        assert sorted(n.text_value() for n in pnames) == ["Betty", "Matt"]
        assert sorted(n.text_value() for n in ssns) == ["276543", "763895"]

    def test_endpoint_on_node_type_rejected(self, healthcare_doc, healthcare_scs):
        with pytest.raises(ValueError):
            healthcare_scs[0].endpoint_nodes(healthcare_doc, 1)

    def test_association_pairs(self, healthcare_doc, healthcare_scs):
        name_disease = healthcare_scs[2]
        pairs = set(name_disease.association_pairs(healthcare_doc))
        assert ("Betty", "diarrhea") in pairs
        assert ("Matt", "leukemia") in pairs
        assert ("Betty", "leukemia") not in pairs

    def test_disease_doctor_pairs_scoped_by_treat(
        self, healthcare_doc, healthcare_scs
    ):
        disease_doctor = healthcare_scs[3]
        pairs = set(disease_doctor.association_pairs(healthcare_doc))
        # Each treat element scopes its own pair.
        assert ("diarrhea", "Smith") in pairs
        assert ("diarrhea", "Walker") in pairs
        assert ("leukemia", "Brown") in pairs
        assert ("diarrhea", "Brown") not in pairs


class TestCapturedQueries:
    def test_node_type_captures_context(self, healthcare_doc, healthcare_scs):
        queries = healthcare_scs[0].captured_queries(healthcare_doc)
        assert queries == ["//insurance"]

    def test_association_captures_value_pairs(
        self, healthcare_doc, healthcare_scs
    ):
        queries = healthcare_scs[1].captured_queries(healthcare_doc)
        assert "//patient[pname='Betty'][SSN='763895']" in queries
        assert len(queries) == 2

    def test_captured_queries_hold(self, healthcare_doc, healthcare_scs):
        for constraint in healthcare_scs:
            for query in constraint.captured_queries(healthcare_doc):
                assert constraint.holds(healthcare_doc, query), query

    def test_non_occurring_association_not_captured(
        self, healthcare_doc, healthcare_scs
    ):
        queries = healthcare_scs[2].captured_queries(healthcare_doc)
        assert "//patient[pname='Betty'][disease='leukemia']" not in queries
