"""Mixed-visibility fields: the same tag encrypted in one context, public
in another.

A context-scoped constraint (e.g. protecting only one patient) encrypts
only the bound instances, so a tag can appear both as Vernam tokens and in
the clear.  Translation must then send both lookup keys, and value
predicates must consult both the B-tree (encrypted side) and the plaintext
entries.
"""

import pytest

from repro.core.client import canonical_node
from repro.core.constraints import SecurityConstraint
from repro.core.system import SecureXMLSystem
from repro.workloads.healthcare import build_healthcare_database
from repro.xpath.evaluator import evaluate


@pytest.fixture
def mixed_system():
    document = build_healthcare_database()
    # Protect only Betty's name↔disease association: Matt's diseases stay
    # public.
    constraints = [
        SecurityConstraint.parse(
            "//patient[pname='Betty']:(/pname, //disease)"
        )
    ]
    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    return system, document


class TestMixedTagVisibility:
    def test_tag_is_mixed(self, mixed_system):
        system, _ = mixed_system
        cover = system.scheme.covered_fields
        field = "disease" if "disease" in cover else "pname"
        assert field in system.hosted.encrypted_tags
        assert field in system.hosted.plaintext_keys

    def test_translation_sends_both_keys(self, mixed_system):
        system, _ = mixed_system
        cover = system.scheme.covered_fields
        field = "disease" if "disease" in cover else "pname"
        translated = system.client.translate(f"//{field}")
        assert len(translated.root.keys) == 2
        assert field in translated.root.keys  # the public side, in clear

    def test_structural_query_finds_both_sides(self, mixed_system):
        system, document = mixed_system
        for query in ("//disease", "//pname"):
            expected = sorted(
                canonical_node(n) for n in evaluate(document, query)
            )
            assert system.query(query).canonical() == expected, query

    def test_value_predicate_spans_both_sides(self, mixed_system):
        system, document = mixed_system
        cover = system.scheme.covered_fields
        field = "disease" if "disease" in cover else "pname"
        # 'diarrhea' occurs for Betty (encrypted) only; 'leukemia' for
        # Matt (plaintext) only — and pname mirrors this split.
        values = sorted(
            {n.text_value() for n in evaluate(document, f"//{field}")}
        )
        for value in values:
            query = f"//patient[.//{field}='{value}']/age"
            expected = sorted(
                canonical_node(n) for n in evaluate(document, query)
            )
            assert system.query(query).canonical() == expected, query

    def test_only_bound_instances_encrypted(self, mixed_system):
        system, document = mixed_system
        from repro.xmldb.serializer import serialize

        hosted_xml = serialize(system.hosted.hosted_root)
        cover = system.scheme.covered_fields
        if "disease" in cover:
            # Betty's diseases (diarrhea ×2) hidden; Matt's leukemia public.
            assert ">diarrhea<" not in hosted_xml
            assert ">leukemia<" in hosted_xml
        else:
            assert ">Betty<" not in hosted_xml
            assert ">Matt<" in hosted_xml

    def test_enforcement_checker_agrees(self, mixed_system):
        from repro.core.enforcement import check_enforcement

        system, document = mixed_system
        constraints = [
            SecurityConstraint.parse(
                "//patient[pname='Betty']:(/pname, //disease)"
            )
        ]
        assert check_enforcement(document, constraints, system.scheme) == []

    def test_aggregate_over_mixed_field(self, mixed_system):
        system, document = mixed_system
        cover = system.scheme.covered_fields
        field = "disease" if "disease" in cover else "pname"
        exact = system.aggregate(f"//{field}", "min", mode="exact")
        server = system.aggregate(f"//{field}", "min", mode="server")
        assert exact == server
