"""Optimal and approximate secure encryption schemes (§4.2).

Theorem 4.2 shows that finding the optimal secure encryption scheme is
NP-hard by reduction from VERTEX COVER, and the paper's remedy is the
classical approximation literature: "we can adapt any of them to devise an
algorithm ... whose cost is no worse than twice the optimal cost", naming
Clarkson's modification of the greedy algorithm [10] as the one used for
the ``app`` scheme in the experiments.

This module provides three weighted-vertex-cover solvers over the
constraint graph:

* :func:`exact_min_cover` — branch-and-bound, exact.  Exponential in the
  number of *fields in the SCs* (not the database), which is tiny in
  practice — exactly the regime the paper's ``opt`` scheme lives in.
* :func:`clarkson_greedy_cover` — Clarkson's modified greedy 2-approximation
  (the paper's ``app`` scheme).
* :func:`pricing_cover` — the primal-dual / pricing 2-approximation, kept as
  an ablation comparator for the optimality-gap benchmark.
"""

from __future__ import annotations

from repro.core.constraint_graph import ConstraintGraph


def cover_weight(graph: ConstraintGraph, cover: set[str]) -> int:
    """Total encryption cost of a cover."""
    return sum(graph.weights[vertex] for vertex in cover)


def _forced_vertices(graph: ConstraintGraph) -> set[str]:
    """Vertices forced into every cover by self-loop edges."""
    forced: set[str] = set()
    for edge in graph.edges:
        if len(edge) == 1:
            forced |= edge
    return forced


def exact_min_cover(graph: ConstraintGraph, limit: int = 24) -> set[str]:
    """Minimum-weight vertex cover by branch and bound.

    ``limit`` guards against accidentally feeding a huge graph to the exact
    solver; the paper's constraint graphs have a handful of vertices.
    """
    vertices = graph.vertices
    if len(vertices) > limit:
        raise ValueError(
            f"exact cover limited to {limit} vertices; "
            f"got {len(vertices)} — use an approximation"
        )
    forced = _forced_vertices(graph)
    open_edges = [
        tuple(sorted(edge))
        for edge in graph.edges
        if len(edge) == 2 and not (edge & forced)
    ]

    best_cover: set[str] = set(vertices)
    best_weight = cover_weight(graph, best_cover | forced)

    def branch(index: int, chosen: set[str], weight: int) -> None:
        nonlocal best_cover, best_weight
        if weight >= best_weight:
            return
        # Find the next uncovered edge.
        while index < len(open_edges):
            u, v = open_edges[index]
            if u in chosen or v in chosen:
                index += 1
                continue
            # Branch on covering this edge with u or with v.
            branch(index + 1, chosen | {u}, weight + graph.weights[u])
            branch(index + 1, chosen | {v}, weight + graph.weights[v])
            return
        if weight < best_weight:
            best_weight = weight
            best_cover = set(chosen)

    branch(0, set(forced), cover_weight(graph, forced))
    assert graph.is_vertex_cover(best_cover)
    return best_cover


def clarkson_greedy_cover(graph: ConstraintGraph) -> set[str]:
    """Clarkson's modified greedy weighted-vertex-cover 2-approximation.

    Repeatedly pick the vertex minimizing ``weight / degree`` over the
    remaining graph, then *charge* that ratio to each neighbour's weight
    before deleting the vertex.  The charging step is Clarkson's
    modification [Clarkson 1983]; it is what turns the unbounded plain
    greedy into a factor-2 algorithm.
    """
    forced = _forced_vertices(graph)
    cover: set[str] = set(forced)
    weights = {v: float(graph.weights[v]) for v in graph.vertices}
    edges = {
        tuple(sorted(edge))
        for edge in graph.edges
        if len(edge) == 2 and not (edge & forced)
    }

    def degree(vertex: str) -> int:
        return sum(1 for edge in edges if vertex in edge)

    while edges:
        candidates = {v for edge in edges for v in edge}
        chosen = min(candidates, key=lambda v: weights[v] / degree(v))
        ratio = weights[chosen] / degree(chosen)
        for edge in list(edges):
            if chosen in edge:
                other = edge[0] if edge[1] == chosen else edge[1]
                weights[other] -= ratio
                edges.remove(edge)
        cover.add(chosen)
    assert graph.is_vertex_cover(cover)
    return cover


def pricing_cover(graph: ConstraintGraph) -> set[str]:
    """Primal-dual (pricing) 2-approximation for weighted vertex cover.

    Each edge raises the "price" of its endpoints until one becomes tight
    (price == weight); tight vertices join the cover.  Included as a second
    approximation for the §4.2 ablation benchmark.
    """
    forced = _forced_vertices(graph)
    cover: set[str] = set(forced)
    paid = {v: 0.0 for v in graph.vertices}
    for edge in sorted(
        (tuple(sorted(e)) for e in graph.edges if len(e) == 2),
    ):
        u, v = edge
        if u in cover or v in cover:
            continue
        slack_u = graph.weights[u] - paid[u]
        slack_v = graph.weights[v] - paid[v]
        raise_by = min(slack_u, slack_v)
        paid[u] += raise_by
        paid[v] += raise_by
        if paid[u] >= graph.weights[u]:
            cover.add(u)
        if paid[v] >= graph.weights[v]:
            cover.add(v)
    assert graph.is_vertex_cover(cover)
    return cover
