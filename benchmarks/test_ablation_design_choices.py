"""Ablations — the cost of each defence and design knob.

The paper prices its security qualitatively ("The price of this protection
is that the size of the B-tree index is more than it would be ... The
increase in size is proportional to the scaling used", §5.2; "The security
achieved comes at the price of increase in data size", §8).  These
ablations quantify each knob on the hosted NASA-like database:

* **scaling** — index size with and without the sᵢ replication;
* **splitting** — distinct ciphertexts per field vs plaintext domain size;
* **decoys** — hosted-database byte overhead of decoy injection;
* **grouping** — DSI index entries with and without the §5.1.1 grouping
  rule (fewer entries *and* more candidate structures);
* **channel** — the bandwidth level at which transfer time stops being
  negligible (the §7.2 claim's boundary).
"""

from collections import Counter

from repro.bench.harness import format_table
from repro.core.system import SecureXMLSystem
from repro.netsim.channel import Channel
from repro.workloads.nasa import build_nasa_database, nasa_constraints

from conftest import write_result


def _host(secure=True, scheme="opt"):
    document = build_nasa_database(dataset_count=40, seed=5)
    return document, SecureXMLSystem.host(
        document, nasa_constraints(), scheme=scheme, secure=secure
    )


def test_ablation_scaling_and_splitting(benchmark):
    def run():
        _, system = _host()
        rows = []
        for field, plan in sorted(system.hosted.field_plans.items()):
            token = system.hosted.field_tokens[field]
            tree = system.hosted.value_index.tree_for(token)
            occurrences = sum(
                sum(chunks) for chunks in plan.chunk_plan.values()
            )
            unscaled_entries = occurrences
            scaled_entries = len(tree)
            rows.append(
                [
                    field,
                    len(plan.ordered_values),
                    sum(len(c) for c in plan.chunk_plan.values()),
                    unscaled_entries,
                    scaled_entries,
                    scaled_entries / max(unscaled_entries, 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["field", "plaintext values", "ciphertext values",
         "entries unscaled", "entries scaled", "blowup"],
        rows,
        "Ablation — splitting widens the domain, scaling multiplies entries",
    )
    write_result("ablation_scaling_splitting", table)

    for _, k, n, unscaled, scaled, blowup in rows:
        assert n >= k          # splitting never shrinks the domain
        assert scaled >= unscaled  # scaling only adds entries
        assert blowup <= 10.0  # bounded by the s_i <= 10 draw


def test_ablation_decoy_overhead(benchmark):
    def run():
        _, secure_system = _host(secure=True, scheme="leaf")
        _, strawman = _host(secure=False, scheme="leaf")
        return (
            secure_system.hosting_trace.hosted_bytes,
            strawman.hosting_trace.hosted_bytes,
            secure_system.hosting_trace.decoy_count,
        )

    secure_bytes, strawman_bytes, decoys = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = format_table(
        ["variant", "hosted bytes", "decoys"],
        [
            ["with decoys + random IVs", secure_bytes, decoys],
            ["strawman (none)", strawman_bytes, 0],
            ["overhead", secure_bytes - strawman_bytes, decoys],
        ],
        "Ablation — decoy injection cost (leaf scheme, NASA)",
    )
    write_result("ablation_decoy_overhead", table)
    assert secure_bytes > strawman_bytes
    assert decoys > 0
    # The price is modest: well under 2x.
    assert secure_bytes < 2 * strawman_bytes


def test_ablation_grouping(benchmark):
    """Grouping shrinks the DSI table and multiplies candidate structures."""

    def run():
        _, system = _host(scheme="top")
        entries = system.hosted.structural_index.all_entries()
        grouped_entries = len(entries)
        total_members = sum(len(e.member_ids) for e in entries)
        multi_member = sum(1 for e in entries if len(e.member_ids) > 1)
        return grouped_entries, total_members, multi_member

    grouped, members, multi = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["metric", "value"],
        [
            ["DSI entries with grouping", grouped],
            ["entries without grouping (=nodes)", members],
            ["grouped (multi-member) entries", multi],
            ["table shrink factor", members / grouped],
        ],
        "Ablation — §5.1.1 interval grouping (top scheme, NASA)",
    )
    write_result("ablation_grouping", table)
    assert grouped < members
    assert multi > 0


def test_ablation_channel_bandwidth(benchmark):
    """Where does transfer time stop being negligible (§7.2 boundary)?"""

    def run():
        document = build_nasa_database(dataset_count=40, seed=5)
        rows = []
        for label, bits_per_second in (
            ("100 Mbps (paper LAN)", 100e6),
            ("10 Mbps", 10e6),
            ("1 Mbps", 1e6),
            ("256 kbps", 256e3),
        ):
            system = SecureXMLSystem.host(
                document,
                nasa_constraints(),
                scheme="opt",
                channel=Channel(bandwidth_bits_per_second=bits_per_second),
            )
            system.query("//dataset/title")
            trace = system.last_trace
            processing = (
                trace.server_s + trace.decrypt_client_s
                + trace.postprocess_client_s
            )
            rows.append(
                [label, trace.transfer_s, processing,
                 trace.transfer_s / max(processing, 1e-9)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["bandwidth", "t_transfer (s)", "t_processing (s)",
         "transfer/processing"],
        rows,
        "Ablation — modelled channel bandwidth vs processing time",
    )
    write_result("ablation_channel_bandwidth", table)

    lan_ratio = rows[0][3]
    slow_ratio = rows[-1][3]
    assert lan_ratio < 0.5       # negligible-ish at LAN speed (§7.2)
    assert slow_ratio > lan_ratio  # and grows as the pipe narrows


def test_ablation_structural_join_algorithms(benchmark):
    """Stack-Tree-Desc [4] vs the nested-loop baseline on real DSI lists.

    The paper's server runs "any of the standard structural join
    algorithms"; this ablation shows why the linear-merge one matters as
    candidate lists grow.
    """
    import time

    from repro.core.stack_join import stack_tree_desc

    def run():
        document = build_nasa_database(dataset_count=120, seed=5)
        system = SecureXMLSystem.host(
            document, nasa_constraints(), scheme="opt"
        )
        index = system.hosted.structural_index
        ancestors = index.lookup("dataset")
        descendants = index.lookup("size")

        started = time.perf_counter()
        stack_pairs = stack_tree_desc(ancestors, descendants)
        stack_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loop_pairs = [
            (a, d)
            for d in descendants
            for a in ancestors
            if a.interval.contains(d.interval)
        ]
        loop_seconds = time.perf_counter() - started
        assert {(id(a), id(d)) for a, d in stack_pairs} == {
            (id(a), id(d)) for a, d in loop_pairs
        }
        return (
            len(ancestors), len(descendants), len(stack_pairs),
            stack_seconds, loop_seconds,
        )

    a_count, d_count, pairs, stack_s, loop_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        [
            ["|ancestors|", a_count],
            ["|descendants|", d_count],
            ["output pairs", pairs],
            ["Stack-Tree-Desc (s)", stack_s],
            ["nested loop (s)", loop_s],
            ["speedup", loop_s / max(stack_s, 1e-9)],
        ],
        "Ablation — structural join algorithms on DSI interval lists",
    )
    write_result("ablation_structural_join", table)
    assert pairs == d_count  # every size leaf has exactly one dataset
    assert stack_s < loop_s  # the merge wins at this scale


def test_ablation_frequency_profiles(benchmark):
    """The attacker's view: plaintext vs OPESS-index frequency spreads."""

    def run():
        document, system = _host()
        rows = []
        from repro.xmldb.stats import value_frequencies

        plaintext = value_frequencies(document)
        for field, plan in sorted(system.hosted.field_plans.items()):
            token = system.hosted.field_tokens[field]
            observed = system.hosted.value_index.ciphertext_histogram(token)
            plain_counts = sorted(plaintext[field].values())
            observed_counts = sorted(Counter(observed).values())
            rows.append(
                [
                    field,
                    f"{plain_counts[0]}..{plain_counts[-1]}",
                    f"{observed_counts[0]}..{observed_counts[-1]}",
                    plain_counts[-1] - plain_counts[0],
                    (plan.m + 1) * 10,  # scaled flatness bound
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["field", "plaintext freq range", "index freq range",
         "plaintext spread", "bound (m+1)·s_max"],
        rows,
        "Ablation — frequency spreads before/after OPESS",
    )
    write_result("ablation_frequency_profiles", table)
    # Observed frequencies are bounded by (m+1)·10 regardless of skew.
    for _, _, observed_range, _, bound in rows:
        high = int(observed_range.split("..")[-1])
        assert high <= bound
