"""Unit tests for the tree builder and document statistics."""

import pytest

from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Element
from repro.xmldb.stats import (
    depth,
    fanout_profile,
    field_frequency,
    leaf_field_name,
    same_distribution,
    tag_histogram,
    value_frequencies,
)
from repro.xmldb.parser import parse_document


class TestTreeBuilder:
    def test_nested_construction(self):
        builder = TreeBuilder("r")
        with builder.element("a"):
            builder.leaf("b", "1")
            with builder.element("c"):
                builder.leaf("d", "2")
        doc = builder.document()
        assert doc.root.tag == "r"
        assert doc.root.children[0].children[1].children[0].text_value() == "2"

    def test_leaf_coerces_values(self):
        builder = TreeBuilder("r")
        builder.leaf("n", 42)
        doc = builder.document()
        assert doc.root.children[0].text_value() == "42"

    def test_attributes_via_kwargs_and_method(self):
        builder = TreeBuilder("r")
        with builder.element("a", x="1") as element:
            builder.attribute("y", 2)
        assert element.attribute("x").value == "1"
        assert element.attribute("y").value == "2"

    def test_empty_element(self):
        builder = TreeBuilder("r")
        builder.empty("hollow", k="v")
        doc = builder.document()
        assert doc.root.children[0].children == []

    def test_current_tracks_stack(self):
        builder = TreeBuilder("r")
        assert builder.current.tag == "r"
        with builder.element("a"):
            assert builder.current.tag == "a"
        assert builder.current.tag == "r"

    def test_document_is_numbered(self):
        builder = TreeBuilder("r")
        builder.leaf("a", "x")
        doc = builder.document()
        assert doc.root.node_id == 0


class TestStats:
    @pytest.fixture
    def doc(self):
        return parse_document(
            """
            <r>
              <p><name>A</name><age>30</age></p>
              <p><name>B</name><age>30</age></p>
              <p><name>A</name><age a="1">41</age></p>
            </r>
            """
        )

    def test_value_frequencies(self, doc):
        frequencies = value_frequencies(doc)
        assert frequencies["name"] == {"A": 2, "B": 1}
        assert frequencies["age"] == {"30": 2, "41": 1}
        assert frequencies["@a"] == {"1": 1}

    def test_field_frequency_missing_field(self, doc):
        assert field_frequency(doc, "nope") == {}

    def test_leaf_field_name(self, doc):
        leaves = list(doc.leaves())
        names = {leaf_field_name(leaf) for leaf in leaves}
        assert names == {"name", "age", "@a"}

    def test_leaf_field_name_rejects_text(self, doc):
        with pytest.raises(TypeError):
            leaf_field_name(doc.root.children[0].children[0].children[0])

    def test_tag_histogram(self, doc):
        histogram = tag_histogram(doc)
        assert histogram["p"] == 3
        assert histogram["name"] == 3
        assert histogram["r"] == 1

    def test_depth(self, doc):
        assert depth(doc) == 3  # r -> p -> name -> text

    def test_fanout_profile(self, doc):
        profile = fanout_profile(doc)
        assert profile[3] == 1  # root has 3 children
        assert profile[2] == 3  # each p has 2 children

    def test_same_distribution_ignores_labels(self):
        from collections import Counter

        assert same_distribution(Counter(a=2, b=1), Counter(x=1, y=2))
        assert not same_distribution(Counter(a=2, b=1), Counter(x=2, y=2))
