"""repro — Efficient secure query evaluation over encrypted XML databases.

A from-scratch reproduction of Wang & Lakshmanan, VLDB 2006.  The package is
organised as a stack of substrates with the paper's contribution on top:

``repro.xmldb``
    An XML document model (tree of :class:`~repro.xmldb.node.Element`,
    :class:`~repro.xmldb.node.Text` and :class:`~repro.xmldb.node.Attribute`
    nodes) with a recursive-descent parser and serializer.

``repro.xpath``
    A lexer, parser and evaluator for the XPath 1.0 fragment used throughout
    the paper (child/descendant/attribute axes, wildcards, value predicates).

``repro.crypto``
    From-scratch cryptographic primitives: SHA-256, HMAC, AES-128 with
    CBC/CTR modes, the Vernam (one-time pad) cipher used for tag names, and
    a keyed order-preserving encryption function.

``repro.btree``
    An order-configurable B-tree used as the server-side value index.

``repro.core``
    The paper's contribution: security constraints, secure/optimal encryption
    schemes, encryption decoys, the DSI structural index, OPESS
    (order-preserving encryption with splitting and scaling), structural
    joins, and the client/server query pipeline.

``repro.security``
    The attack model (frequency- and size-based attacks), database
    indistinguishability, candidate-database counting and attacker-belief
    tracking used to validate the paper's security theorems.

``repro.workloads``
    The Figure 2 healthcare database, plus seeded XMark-like and NASA-like
    synthetic dataset generators with the query classes of the evaluation.

Quickstart::

    from repro import SecureXMLSystem, SecurityConstraint
    from repro.workloads.healthcare import build_healthcare_database

    doc = build_healthcare_database()
    constraints = [
        SecurityConstraint.parse("//insurance"),
        SecurityConstraint.parse("//patient:(/pname, /SSN)"),
    ]
    system = SecureXMLSystem.host(doc, constraints, scheme="opt")
    answer = system.query("//patient[.//insurance//@coverage>=10000]//SSN")
"""

__all__ = [
    "SecurityConstraint",
    "EncryptionScheme",
    "SecureXMLSystem",
]

__version__ = "1.0.0"


def __getattr__(name: str):
    """Lazy re-exports so importing a substrate doesn't pull in the stack."""
    if name == "SecurityConstraint":
        from repro.core.constraints import SecurityConstraint

        return SecurityConstraint
    if name == "EncryptionScheme":
        from repro.core.scheme import EncryptionScheme

        return EncryptionScheme
    if name == "SecureXMLSystem":
        from repro.core.system import SecureXMLSystem

        return SecureXMLSystem
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
